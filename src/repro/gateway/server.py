"""A bundled asyncio HTTP/1.1 server for the gateway — no uvicorn required.

The ASGI app in :mod:`repro.gateway.app` runs under any ASGI server; this
module is the zero-dependency transport the tests, benchmarks, and examples
use so the whole stack stays importable in a bare interpreter.  It speaks
enough HTTP/1.1 for the gateway's contract and nothing more:

* request parsing: request line, headers, ``Content-Length`` bodies
  (chunked *request* bodies are answered with 411 — no gateway route needs
  them);
* response framing: ``Content-Length`` for single-message bodies,
  ``Transfer-Encoding: chunked`` the moment the app sends a body message
  with ``more_body=True`` (the streamed ``/v1/profile`` route);
* keep-alive: connections persist across requests per HTTP/1.1 default,
  closing on ``Connection: close`` or a parse error.

:func:`serve_in_background` is the test/benchmark entry point: it runs the
server on a dedicated thread with its own event loop and returns a handle
with the bound address and a ``close()`` — callers need no asyncio of their
own to stand a real socket up.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Awaitable, Callable, MutableMapping

__all__ = ["GatewayServer", "ServerHandle", "serve_in_background"]

Message = MutableMapping[str, Any]
ASGIApp = Callable[
    [MutableMapping[str, Any], Callable[[], Awaitable[Message]], Callable[[Message], Awaitable[None]]],
    Awaitable[None],
]

_MAX_REQUEST_LINE = 8192
_MAX_HEADER_BYTES = 65536

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    411: "Length Required",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class _ParseError(Exception):
    """A malformed request; carries the status the connection dies with."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class GatewayServer:
    """Serve an ASGI app over ``asyncio.start_server``.

    Usage (inside a running loop)::

        server = GatewayServer(app)
        await server.start()          # binds; server.port is now real
        ...
        await server.aclose()

    ``port=0`` binds an ephemeral port — the tests' default, so parallel
    suites never collide.
    """

    def __init__(
        self,
        app: ASGIApp,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._app = app
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockets = self._server.sockets
        if sockets:
            self.port = int(sockets[0].getsockname()[1])

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def aclose(self) -> None:
        server = self._server
        if server is None:
            return
        self._server = None
        server.close()
        await server.wait_closed()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except _ParseError as exc:
                    await _write_error(writer, exc.status, str(exc))
                    break
                except (
                    asyncio.IncompleteReadError,
                    ConnectionError,
                    asyncio.LimitOverrunError,
                ):
                    break
                if request is None:  # clean EOF between requests
                    break
                keep_alive = await self._dispatch(request, writer)
                if not keep_alive:
                    break
        except asyncio.CancelledError:
            # Loop shutdown cancelled an idle keep-alive connection: close it
            # quietly.  (Returning instead of re-raising keeps the stdlib
            # streams connection_made callback from logging the cancellation
            # as an error — 3.11 inspects task.exception() unguarded.)
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass  # pragma: no cover - teardown race

    async def _dispatch(self, request: "_Request", writer: asyncio.StreamWriter) -> bool:
        """Run the app for one request; returns whether to keep the connection."""
        scope: MutableMapping[str, Any] = {
            "type": "http",
            "asgi": {"version": "3.0", "spec_version": "2.3"},
            "http_version": "1.1",
            "method": request.method,
            "scheme": "http",
            "path": request.path,
            "raw_path": request.raw_path,
            "query_string": request.query_string,
            "root_path": "",
            "headers": request.headers,
            "client": writer.get_extra_info("peername"),
            "server": writer.get_extra_info("sockname"),
        }
        body_sent = False

        async def receive() -> Message:
            nonlocal body_sent
            if not body_sent:
                body_sent = True
                return {
                    "type": "http.request",
                    "body": request.body,
                    "more_body": False,
                }
            return {"type": "http.disconnect"}

        sender = _ResponseWriter(writer, keep_alive=request.keep_alive)
        try:
            await self._app(scope, receive, sender.send)
            await sender.finalize()
        except Exception:
            # The app's own error mapping failed (or the transport broke):
            # answer 500 if the response has not started, else drop the
            # connection — a half-written body cannot be repaired.
            if not sender.started:
                await _write_error(writer, 500, "internal gateway error")
            return False
        return sender.keep_alive


class _Request:
    __slots__ = (
        "method",
        "path",
        "raw_path",
        "query_string",
        "headers",
        "body",
        "keep_alive",
    )

    def __init__(
        self,
        method: str,
        path: str,
        raw_path: bytes,
        query_string: bytes,
        headers: list[tuple[bytes, bytes]],
        body: bytes,
        keep_alive: bool,
    ) -> None:
        self.method = method
        self.path = path
        self.raw_path = raw_path
        self.query_string = query_string
        self.headers = headers
        self.body = body
        self.keep_alive = keep_alive


async def _read_request(reader: asyncio.StreamReader) -> _Request | None:
    """Parse one request off the stream; None on clean EOF before any byte."""
    try:
        request_line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise
    if len(request_line) > _MAX_REQUEST_LINE:
        raise _ParseError(400, "request line too long")
    parts = request_line.decode("latin-1").strip().split(" ")
    if len(parts) != 3:
        raise _ParseError(400, "malformed request line")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise _ParseError(400, f"unsupported protocol {version}")
    raw_path, _, raw_query = target.partition("?")

    headers: list[tuple[bytes, bytes]] = []
    header_bytes = 0
    content_length = 0
    keep_alive = version != "HTTP/1.0"
    chunked = False
    while True:
        line = await reader.readuntil(b"\r\n")
        header_bytes += len(line)
        if header_bytes > _MAX_HEADER_BYTES:
            raise _ParseError(400, "headers too large")
        stripped = line.strip()
        if not stripped:
            break
        name, sep, value = stripped.partition(b":")
        if not sep:
            raise _ParseError(400, "malformed header line")
        lowered = name.strip().lower()
        cleaned = value.strip()
        headers.append((lowered, cleaned))
        if lowered == b"content-length":
            try:
                content_length = int(cleaned)
            except ValueError:
                raise _ParseError(400, "invalid Content-Length") from None
            if content_length < 0:
                raise _ParseError(400, "invalid Content-Length")
        elif lowered == b"transfer-encoding":
            chunked = b"chunked" in cleaned.lower()
        elif lowered == b"connection":
            token = cleaned.lower()
            if token == b"close":
                keep_alive = False
            elif token == b"keep-alive":
                keep_alive = True
    if chunked:
        raise _ParseError(411, "chunked request bodies are not supported")
    body = await reader.readexactly(content_length) if content_length else b""
    return _Request(
        method=method.upper(),
        path=raw_path,
        raw_path=raw_path.encode("latin-1"),
        query_string=raw_query.encode("latin-1"),
        headers=headers,
        body=body,
        keep_alive=keep_alive,
    )


class _ResponseWriter:
    """Translate ASGI response messages into HTTP/1.1 framing.

    The framing decision is deferred until the body shape is known: a
    single body message (``more_body`` false) goes out with
    ``Content-Length`` in one write; the first ``more_body=True`` message
    switches to ``Transfer-Encoding: chunked`` and flushes each chunk as it
    arrives — that is what makes ``/v1/profile`` stream instead of
    buffering the whole cost function.
    """

    def __init__(self, writer: asyncio.StreamWriter, *, keep_alive: bool) -> None:
        self._writer = writer
        self.keep_alive = keep_alive
        self.started = False
        self._status = 200
        self._headers: list[tuple[bytes, bytes]] = []
        self._chunked = False
        self._head_written = False
        self._done = False

    async def send(self, message: Message) -> None:
        kind = message["type"]
        if kind == "http.response.start":
            if self.started:
                raise RuntimeError("response already started")
            self.started = True
            self._status = int(message["status"])
            self._headers = [
                (bytes(name), bytes(value))
                for name, value in message.get("headers", [])
            ]
            return
        if kind != "http.response.body":
            raise RuntimeError(f"unexpected ASGI message {kind!r}")
        if not self.started:
            raise RuntimeError("http.response.body before http.response.start")
        body = bytes(message.get("body", b""))
        more = bool(message.get("more_body", False))
        if not self._head_written:
            if more:
                self._chunked = True
                self._write_head(content_length=None)
                self._write_chunk(body)
            else:
                self._write_head(content_length=len(body))
                self._writer.write(body)
                self._done = True
            await self._writer.drain()
            return
        if self._chunked:
            self._write_chunk(body)
            if not more:
                self._writer.write(b"0\r\n\r\n")
                self._done = True
            await self._writer.drain()
        elif body:
            raise RuntimeError("body after a Content-Length response completed")

    async def finalize(self) -> None:
        """Close out the response after the app returns."""
        if not self.started:
            raise RuntimeError("the app completed without a response")
        if self._chunked and not self._done:
            self._writer.write(b"0\r\n\r\n")
            self._done = True
            await self._writer.drain()

    def _write_head(self, *, content_length: int | None) -> None:
        reason = _REASONS.get(self._status, "Unknown")
        lines = [f"HTTP/1.1 {self._status} {reason}\r\n".encode("latin-1")]
        for name, value in self._headers:
            lines.append(name + b": " + value + b"\r\n")
        if content_length is not None:
            lines.append(f"content-length: {content_length}\r\n".encode("latin-1"))
        else:
            lines.append(b"transfer-encoding: chunked\r\n")
        lines.append(
            b"connection: keep-alive\r\n" if self.keep_alive else b"connection: close\r\n"
        )
        lines.append(b"\r\n")
        self._writer.write(b"".join(lines))
        self._head_written = True

    def _write_chunk(self, body: bytes) -> None:
        if body:
            self._writer.write(
                f"{len(body):x}\r\n".encode("latin-1") + body + b"\r\n"
            )


async def _write_error(
    writer: asyncio.StreamWriter, status: int, message: str
) -> None:
    """A last-resort plain-text error response (parse failures, app crashes)."""
    body = message.encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"content-type: text/plain; charset=utf-8\r\n"
        f"content-length: {len(body)}\r\n"
        f"connection: close\r\n\r\n"
    ).encode("latin-1")
    try:
        writer.write(head + body)
        await writer.drain()
    except (ConnectionError, OSError):  # pragma: no cover - peer already gone
        pass


class ServerHandle:
    """A background gateway server: address + ``close()``, nothing else.

    Returned by :func:`serve_in_background`; the server runs on its own
    thread with a private event loop, so synchronous tests and benchmark
    drivers can hit a real socket without owning any asyncio plumbing.
    Also a context manager (``with serve_in_background(app) as handle:``).
    """

    def __init__(
        self,
        host: str,
        port: int,
        thread: threading.Thread,
        loop: asyncio.AbstractEventLoop,
        stop: asyncio.Event,
    ) -> None:
        self.host = host
        self.port = port
        self._thread = thread
        self._loop = loop
        self._stop = stop

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self, timeout: float = 10.0) -> None:
        """Stop the server and join its thread (idempotent)."""
        if not self._thread.is_alive():
            return
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()


def serve_in_background(
    app: ASGIApp, host: str = "127.0.0.1", port: int = 0
) -> ServerHandle:
    """Start a gateway server on a dedicated thread; returns its handle.

    Blocks only until the socket is bound (the handle's ``port`` is the real
    one even with ``port=0``).  Startup failures (port in use, bad host)
    re-raise here, on the caller's thread.
    """
    ready = threading.Event()
    state: dict[str, Any] = {}

    def _run() -> None:
        async def _main() -> None:
            server = GatewayServer(app, host=host, port=port)
            stop = asyncio.Event()
            try:
                await server.start()
            except BaseException as exc:  # surface bind errors to the caller
                state["error"] = exc
                ready.set()
                return
            state["port"] = server.port
            state["loop"] = asyncio.get_running_loop()
            state["stop"] = stop
            ready.set()
            try:
                await stop.wait()
            finally:
                await server.aclose()

        asyncio.run(_main())

    thread = threading.Thread(target=_run, name="repro-gateway", daemon=True)
    thread.start()
    ready.wait()
    error = state.get("error")
    if error is not None:
        thread.join()
        raise error
    return ServerHandle(
        host=host,
        port=int(state["port"]),
        thread=thread,
        loop=state["loop"],
        stop=state["stop"],
    )
