"""Wire codecs: JSON parsing/validation between HTTP bodies and host calls.

All request decoding lives here so the app's route handlers stay pure
control flow, every validation failure raises the same typed
:class:`~repro.gateway.errors.BadRequestError` (→ 400 with a
machine-readable body), and the checks are unit-testable without a socket.

Floats cross the wire through :mod:`json`, which formats them with
``repr`` — a lossless round-trip — so a cost decoded from a gateway
response compares *bit-identical* to the engine's own answer.  The
benchmark's oracle check leans on exactly this.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.gateway.errors import BadRequestError

__all__ = [
    "json_bytes",
    "parse_json_body",
    "parse_query_payload",
    "parse_batch_payload",
    "parse_profile_payload",
    "parse_swap_payload",
    "parse_updates_payload",
    "parse_timeout_ms",
]


def json_bytes(payload: Mapping[str, Any]) -> bytes:
    """Encode one response body (compact separators, UTF-8)."""
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def parse_json_body(body: bytes) -> dict[str, Any]:
    """Decode a request body into a JSON object (``{}`` for an empty body)."""
    if not body:
        return {}
    try:
        decoded = json.loads(body)
    except (ValueError, UnicodeDecodeError) as exc:
        raise BadRequestError(f"request body is not valid JSON: {exc}") from exc
    if not isinstance(decoded, dict):
        raise BadRequestError(
            f"request body must be a JSON object, got {type(decoded).__name__}"
        )
    return decoded


def _require_int(payload: Mapping[str, Any], field: str) -> int:
    """An integer field (bools are rejected — JSON ``true`` is not a vertex)."""
    if field not in payload:
        raise BadRequestError(f"missing required field {field!r}")
    value = payload[field]
    if isinstance(value, bool) or not isinstance(value, int):
        raise BadRequestError(
            f"field {field!r} must be an integer, got {type(value).__name__}"
        )
    return value


def _require_float(payload: Mapping[str, Any], field: str) -> float:
    if field not in payload:
        raise BadRequestError(f"missing required field {field!r}")
    value = payload[field]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise BadRequestError(
            f"field {field!r} must be a number, got {type(value).__name__}"
        )
    return float(value)


def _optional_str(payload: Mapping[str, Any], field: str) -> str | None:
    value = payload.get(field)
    if value is None:
        return None
    if not isinstance(value, str):
        raise BadRequestError(
            f"field {field!r} must be a string, got {type(value).__name__}"
        )
    return value


def parse_query_payload(
    payload: Mapping[str, Any],
) -> tuple[int, int, float, str | None]:
    """``POST /v1/query`` body → ``(source, target, departure, deployment)``."""
    return (
        _require_int(payload, "source"),
        _require_int(payload, "target"),
        _require_float(payload, "departure"),
        _optional_str(payload, "deployment"),
    )


def parse_batch_payload(
    payload: Mapping[str, Any], *, max_queries: int
) -> tuple[list[tuple[int, int, float]], str | None]:
    """``POST /v1/batch`` body → ``(queries, deployment)``.

    ``queries`` must be a non-empty list of query objects, bounded by
    ``max_queries`` so one request cannot monopolise the host.
    """
    queries = payload.get("queries")
    if not isinstance(queries, list) or not queries:
        raise BadRequestError(
            "field 'queries' must be a non-empty list of "
            "{source, target, departure} objects"
        )
    if len(queries) > max_queries:
        raise BadRequestError(
            f"batch of {len(queries)} queries exceeds the per-request "
            f"limit of {max_queries}"
        )
    parsed: list[tuple[int, int, float]] = []
    for i, item in enumerate(queries):
        if not isinstance(item, dict):
            raise BadRequestError(
                f"queries[{i}] must be an object, got {type(item).__name__}"
            )
        parsed.append(
            (
                _require_int(item, "source"),
                _require_int(item, "target"),
                _require_float(item, "departure"),
            )
        )
    return parsed, _optional_str(payload, "deployment")


def parse_profile_payload(
    payload: Mapping[str, Any],
) -> tuple[int, int, str | None]:
    """``POST /v1/profile`` body → ``(source, target, deployment)``."""
    return (
        _require_int(payload, "source"),
        _require_int(payload, "target"),
        _optional_str(payload, "deployment"),
    )


def parse_swap_payload(payload: Mapping[str, Any]) -> str:
    """``POST /v1/deployments/{name}/swap`` body → the engine spec string."""
    spec = payload.get("engine")
    if not isinstance(spec, str) or not spec:
        raise BadRequestError(
            "field 'engine' must be a non-empty engine spec string"
        )
    return spec


def parse_updates_payload(
    payload: Mapping[str, Any], *, max_updates: int
) -> tuple[list[tuple[int, int, float | None, Any]], bool]:
    """``POST /v1/deployments/{name}/updates`` body → ``(updates, apply)``.

    ``updates`` must be a non-empty list of edge-update objects, each either
    the *delay form* ``{source, target, delay}`` (seconds added to the
    edge's baseline weight; ``0`` clears) or the *explicit form*
    ``{source, target, times, costs}`` carrying the full new weight
    function.  Returns ``(source, target, delay, weight)`` tuples — exactly
    one of ``delay``/``weight`` is set per entry.  ``apply: true`` asks the
    gateway to run a synchronous control step after ingesting (the default
    leaves application to the controller's own loop).
    """
    from repro.functions.piecewise import PiecewiseLinearFunction

    updates = payload.get("updates")
    if not isinstance(updates, list) or not updates:
        raise BadRequestError(
            "field 'updates' must be a non-empty list of "
            "{source, target, delay} or {source, target, times, costs} objects"
        )
    if len(updates) > max_updates:
        raise BadRequestError(
            f"batch of {len(updates)} updates exceeds the per-request "
            f"limit of {max_updates}"
        )
    apply_now = payload.get("apply", False)
    if not isinstance(apply_now, bool):
        raise BadRequestError(
            f"field 'apply' must be a boolean, got {type(apply_now).__name__}"
        )
    parsed: list[tuple[int, int, float | None, Any]] = []
    for i, item in enumerate(updates):
        if not isinstance(item, dict):
            raise BadRequestError(
                f"updates[{i}] must be an object, got {type(item).__name__}"
            )
        source = _require_int(item, "source")
        target = _require_int(item, "target")
        has_delay = "delay" in item
        has_function = "times" in item or "costs" in item
        if has_delay == has_function:
            raise BadRequestError(
                f"updates[{i}] must carry either 'delay' or 'times'+'costs', "
                "not both and not neither"
            )
        if has_delay:
            parsed.append((source, target, _require_float(item, "delay"), None))
            continue
        times = item.get("times")
        costs = item.get("costs")
        for field, value in (("times", times), ("costs", costs)):
            if not isinstance(value, list) or not value or not all(
                isinstance(v, (int, float)) and not isinstance(v, bool)
                for v in value
            ):
                raise BadRequestError(
                    f"updates[{i}].{field} must be a non-empty list of numbers"
                )
        # Construction validates shape/monotonicity/non-negativity and
        # raises InvalidFunctionError (→ 400) on bad input.
        weight = PiecewiseLinearFunction(times, costs)
        parsed.append((source, target, None, weight))
    return parsed, apply_now


def parse_timeout_ms(raw: str | None) -> float | None:
    """The ``timeout-ms`` request header → a per-request deadline (ms)."""
    if raw is None:
        return None
    try:
        value = float(raw)
    except ValueError:
        raise BadRequestError(
            f"timeout-ms header must be a number, got {raw!r}"
        ) from None
    if value <= 0.0:
        raise BadRequestError("timeout-ms header must be positive")
    return value
