"""A minimal asyncio HTTP/1.1 client for the gateway's tests and benchmarks.

Deliberately tiny — JSON in, JSON (or NDJSON) out, keep-alive, chunked
decoding — because the open-loop benchmark needs *many concurrent
connections with per-request control*, which ``urllib`` cannot do and no
third-party client is allowed to provide (the stack stays stdlib-only).
One :class:`GatewayClient` is one connection: the benchmark opens hundreds
of them, exactly like hundreds of remote callers would.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Mapping

__all__ = ["GatewayClient", "GatewayResponse"]


class GatewayResponse:
    """One decoded HTTP response."""

    __slots__ = ("status", "headers", "body")

    def __init__(
        self, status: int, headers: dict[str, str], body: bytes
    ) -> None:
        self.status = status
        #: Header names lower-cased; last value wins on duplicates.
        self.headers = headers
        self.body = body

    def json(self) -> Any:
        return json.loads(self.body)

    def ndjson(self) -> list[Any]:
        """The body as a list of JSON values, one per non-empty line."""
        return [
            json.loads(line)
            for line in self.body.split(b"\n")
            if line.strip()
        ]

    @property
    def retry_after_ms(self) -> float | None:
        """The precise backoff hint, if the gateway attached one."""
        raw = self.headers.get("retry-after-ms")
        return float(raw) if raw is not None else None

    def __repr__(self) -> str:
        return f"GatewayResponse(status={self.status}, bytes={len(self.body)})"


class GatewayClient:
    """One keep-alive connection to a gateway.

    Connects lazily on the first request and transparently reconnects if the
    server closed the connection between requests.  Not safe for concurrent
    ``request`` calls on the same instance — use one client per in-flight
    request (that is the point: each simulated user is one connection).
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def _connect(self) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        self._reader, self._writer = reader, writer
        return reader, writer

    async def request(
        self,
        method: str,
        path: str,
        *,
        payload: Mapping[str, Any] | None = None,
        headers: Mapping[str, str] | None = None,
    ) -> GatewayResponse:
        """Send one request and read the full response (chunked or plain)."""
        body = (
            json.dumps(payload, separators=(",", ":")).encode("utf-8")
            if payload is not None
            else b""
        )
        lines = [f"{method} {path} HTTP/1.1".encode("latin-1")]
        lines.append(f"host: {self.host}:{self.port}".encode("latin-1"))
        if payload is not None:
            lines.append(b"content-type: application/json")
        lines.append(f"content-length: {len(body)}".encode("latin-1"))
        if headers:
            for name, value in headers.items():
                lines.append(f"{name}: {value}".encode("latin-1"))
        wire = b"\r\n".join(lines) + b"\r\n\r\n" + body

        fresh = self._reader is None
        if self._reader is None or self._writer is None:
            reader, writer = await self._connect()
        else:
            reader, writer = self._reader, self._writer
        try:
            writer.write(wire)
            await writer.drain()
            return await self._read_response(reader)
        except (ConnectionError, asyncio.IncompleteReadError):
            await self.aclose()
            if fresh:
                raise
            # The server retired a kept-alive connection between requests;
            # one reconnect is safe (the request never reached a handler).
            reader, writer = await self._connect()
            writer.write(wire)
            await writer.drain()
            return await self._read_response(reader)

    async def _read_response(
        self, reader: asyncio.StreamReader
    ) -> GatewayResponse:
        status_line = await reader.readuntil(b"\r\n")
        parts = status_line.decode("latin-1").strip().split(" ", 2)
        if len(parts) < 2:
            raise ConnectionError(f"malformed status line {status_line!r}")
        status = int(parts[1])
        headers: dict[str, str] = {}
        while True:
            line = await reader.readuntil(b"\r\n")
            stripped = line.strip()
            if not stripped:
                break
            name, _, value = stripped.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        if headers.get("transfer-encoding", "").lower() == "chunked":
            body = await _read_chunked(reader)
        else:
            length = int(headers.get("content-length", "0"))
            body = await reader.readexactly(length) if length else b""
        if headers.get("connection", "").lower() == "close":
            await self.aclose()
        return GatewayResponse(status, headers, body)

    async def aclose(self) -> None:
        writer = self._writer
        self._reader = None
        self._writer = None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def __aenter__(self) -> "GatewayClient":
        return self

    async def __aexit__(self, exc_type: object, exc: object, tb: object) -> None:
        await self.aclose()


async def _read_chunked(reader: asyncio.StreamReader) -> bytes:
    """Decode a chunked body into one bytes blob."""
    chunks: list[bytes] = []
    while True:
        size_line = await reader.readuntil(b"\r\n")
        size = int(size_line.strip().split(b";")[0], 16)
        if size == 0:
            await reader.readuntil(b"\r\n")  # trailing CRLF after last chunk
            return b"".join(chunks)
        chunks.append(await reader.readexactly(size))
        await reader.readexactly(2)  # chunk-terminating CRLF
