"""HTTP gateway: the network front end of the serving stack.

Everything below :mod:`repro.serving` is pull-from-Python-callers; this
package puts the stack on a socket.  Three layers, each importable alone:

* :mod:`repro.gateway.app` — :class:`GatewayApp`, a dependency-free ASGI 3
  application over one :class:`~repro.serving.EngineHost`: JSON routes for
  query/batch/profile/swap/introspection, per-client token-bucket rate
  limiting (:mod:`repro.gateway.ratelimit`), gateway-level load shedding,
  ``timeout-ms`` → deadline propagation, and typed-error → HTTP-status
  mapping (:mod:`repro.gateway.errors`);
* :mod:`repro.gateway.server` — a bundled asyncio HTTP/1.1 server
  (:func:`serve_in_background` for tests/benchmarks), so nothing needs
  uvicorn — though the app runs under uvicorn unchanged;
* :mod:`repro.gateway.client` — a minimal asyncio client for the open-loop
  load generator and the examples.

Quick start::

    from repro.serving import EngineHost
    from repro.gateway import GatewayApp, GatewayConfig, serve_in_background

    host = EngineHost(max_wait_ms=1.0)
    host.deploy("prod", "td-h2h", graph)
    app = GatewayApp(host, config=GatewayConfig(rate_limit_qps=100.0))
    with serve_in_background(app) as handle:
        print(handle.url)        # e.g. http://127.0.0.1:49152
        ...                      # curl $url/v1/query, /metrics, /health
    host.close()
"""

from repro.gateway.app import GatewayApp, GatewayConfig
from repro.gateway.client import GatewayClient, GatewayResponse
from repro.gateway.errors import (
    RETRYABLE_STATUSES,
    STATUS_BY_ERROR,
    BadRequestError,
    error_body,
    retry_after_headers,
    status_for,
)
from repro.gateway.ratelimit import RateDecision, RateLimiter, TokenBucket
from repro.gateway.server import GatewayServer, ServerHandle, serve_in_background

__all__ = [
    # app
    "GatewayApp",
    "GatewayConfig",
    # transport
    "GatewayServer",
    "ServerHandle",
    "serve_in_background",
    "GatewayClient",
    "GatewayResponse",
    # error contract
    "BadRequestError",
    "STATUS_BY_ERROR",
    "RETRYABLE_STATUSES",
    "status_for",
    "error_body",
    "retry_after_headers",
    # rate limiting
    "RateLimiter",
    "RateDecision",
    "TokenBucket",
]
