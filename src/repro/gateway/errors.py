"""Typed serving errors mapped to stable HTTP statuses and wire bodies.

The gateway's error contract: every :class:`~repro.exceptions.ReproError`
subclass has an *explicit* entry in :data:`STATUS_BY_ERROR` — the registry
table test in ``tests/gateway/test_errors.py`` fails the moment a new public
exception class appears without a mapping, mirroring the ``__reduce__``
pickling guard from PR 8.  Clients therefore get the same status for the
same failure mode across releases, and can branch on the machine-readable
body (:func:`error_body`) instead of parsing prose.

Status philosophy: caller mistakes are 4xx (unknown deployment → 404, bad
payload → 400, disconnected OD pair → 422), overload and transient serving
failures are 5xx the caller should retry (shed → 503, worker crash → 503,
deadline → 504), and capability gaps are 501.  Anything retryable carries a
``Retry-After`` hint derived from the shared backoff schedule.
"""

from __future__ import annotations

import math

from repro.exceptions import (
    AdmissionRejectedError,
    DatasetError,
    DeadlineExceededError,
    DisconnectedQueryError,
    DuplicateDeploymentError,
    EdgeNotFoundError,
    EngineError,
    EngineSpecError,
    GraphError,
    HostError,
    IndexBuildError,
    IndexNotBuiltError,
    InvalidFunctionError,
    NoTrafficControllerError,
    ReproError,
    SelectionError,
    SerializationError,
    ServiceClosedError,
    SnapshotError,
    StaleRouteError,
    UnknownDeploymentError,
    TrafficControlError,
    UnknownEngineError,
    UnknownEngineOptionError,
    UnsupportedCapabilityError,
    VertexNotFoundError,
    WorkerCrashedError,
)

__all__ = [
    "BadRequestError",
    "STATUS_BY_ERROR",
    "RETRYABLE_STATUSES",
    "status_for",
    "error_body",
    "retry_after_headers",
]


class BadRequestError(ReproError, ValueError):
    """An HTTP request the gateway could not even hand to the host.

    Malformed JSON, a missing/ill-typed field, an oversized body, a
    ``timeout-ms`` header that is not a positive number — anything the
    gateway rejects before touching a deployment.  Mapped to 400.
    """


#: Explicit HTTP status per public error class.  Lookup walks the MRO
#: (:func:`status_for`), so subclasses inherit their parent's status unless
#: listed — but every *public* class is listed anyway, on purpose: the table
#: test forces a deliberate decision for each new exception type.
STATUS_BY_ERROR: dict[type[BaseException], int] = {
    # caller mistakes ------------------------------------------------ 4xx
    BadRequestError: 400,
    InvalidFunctionError: 400,
    GraphError: 400,
    VertexNotFoundError: 404,
    EdgeNotFoundError: 404,
    DisconnectedQueryError: 422,
    SelectionError: 400,
    DatasetError: 400,
    UnknownEngineError: 400,
    EngineSpecError: 400,
    UnknownEngineOptionError: 400,
    UnknownDeploymentError: 404,
    NoTrafficControllerError: 404,
    DuplicateDeploymentError: 409,
    StaleRouteError: 409,
    UnsupportedCapabilityError: 501,
    # serving-side failures ------------------------------------------ 5xx
    ReproError: 500,
    IndexNotBuiltError: 503,
    IndexBuildError: 500,
    SerializationError: 500,
    SnapshotError: 500,
    EngineError: 500,
    HostError: 500,
    TrafficControlError: 500,
    ServiceClosedError: 503,
    AdmissionRejectedError: 503,
    WorkerCrashedError: 503,
    DeadlineExceededError: 504,
}

#: Statuses a well-behaved client may retry with backoff.  429 is the
#: rate limiter's (it never appears in :data:`STATUS_BY_ERROR` — no
#: exception class maps to it; the limiter denies before any error exists).
RETRYABLE_STATUSES = frozenset({429, 503, 504})


def status_for(error: BaseException) -> int:
    """The HTTP status for ``error``: nearest registered class in its MRO.

    Unregistered exception types (including non-:class:`ReproError` ones)
    fall through to 500 — an internal error the gateway still answers with a
    machine-readable body instead of a dropped connection.
    """
    for cls in type(error).__mro__:
        status = STATUS_BY_ERROR.get(cls)
        if status is not None:
            return status
    return 500


def error_body(
    error: BaseException, *, retry_after_ms: float | None = None
) -> dict[str, object]:
    """The machine-readable JSON body the gateway sends for ``error``.

    Shape::

        {"error": {"type": "AdmissionRejectedError",
                   "message": "...", "status": 503,
                   "retryable": true, "retry_after_ms": 12.5}}

    ``type`` is the exception class name — stable across releases because
    the classes are the public API.  ``retry_after_ms`` appears only when
    the gateway attached a backoff hint.
    """
    status = status_for(error)
    detail: dict[str, object] = {
        "type": type(error).__name__,
        "message": str(error),
        "status": status,
        "retryable": status in RETRYABLE_STATUSES,
    }
    if retry_after_ms is not None:
        detail["retry_after_ms"] = float(retry_after_ms)
    return {"error": detail}


def retry_after_headers(retry_after_ms: float) -> list[tuple[str, str]]:
    """The header pair for one backoff hint.

    ``Retry-After`` is spec-bound to integer seconds — useless at
    millisecond serving scale, so it is rounded *up* (never 0 unless the
    hint itself is 0) and the precise value rides alongside in the
    non-standard ``retry-after-ms``.
    """
    ms = max(float(retry_after_ms), 0.0)
    return [
        ("retry-after", str(int(math.ceil(ms / 1000.0)))),
        ("retry-after-ms", f"{ms:g}"),
    ]
