"""The gateway ASGI application: HTTP routes over an :class:`EngineHost`.

:class:`GatewayApp` is a dependency-free ASGI 3 callable — run it under
uvicorn (``uvicorn.run(app)``), any other ASGI server, or the bundled
:mod:`repro.gateway.server` when no server package is installed.  It fronts
one :class:`~repro.serving.EngineHost` with JSON routes:

=======  =================================  =====================================
Method   Path                               Purpose
=======  =================================  =====================================
POST     ``/v1/query``                      one scalar cost query
POST     ``/v1/batch``                      many queries, per-item errors inline
POST     ``/v1/profile``                    whole cost function, streamed NDJSON
POST     ``/v1/deployments/{name}/swap``    zero-downtime engine swap
POST     ``/v1/deployments/{name}/updates``  ingest live edge-weight updates
GET      ``/v1/deployments``                active deployments + specs
GET      ``/health``                        per-deployment health states
GET      ``/stats``                         per-deployment ``ServiceStats``
GET      ``/metrics``                       Prometheus text exposition
=======  =================================  =====================================

The network-edge guardrails the host itself cannot provide sit in front of
the ``/v1/*`` POST routes: a per-client token-bucket rate limiter (429 +
``Retry-After``), a gateway-level in-flight bound with load shedding (503 +
``Retry-After`` — rejecting at the edge is cheaper than queueing into the
host's admission queue just to be shed there), and per-request deadline
propagation from the ``timeout-ms`` header into ``deadline_ms``.  Every
typed serving error maps to a stable status with a machine-readable body
(:mod:`repro.gateway.errors`), every request lands in the shared
:class:`~repro.obs.Tracer` ring, and edge rejections emit structured events.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, AsyncIterator, Awaitable, Callable, MutableMapping

from repro.exceptions import (
    NoTrafficControllerError,
    ServiceClosedError,
    UnknownDeploymentError,
    UnsupportedCapabilityError,
)
from repro.gateway.codecs import (
    json_bytes,
    parse_batch_payload,
    parse_json_body,
    parse_profile_payload,
    parse_query_payload,
    parse_swap_payload,
    parse_timeout_ms,
    parse_updates_payload,
)
from repro.gateway.errors import (
    BadRequestError,
    error_body,
    retry_after_headers,
    status_for,
)
from repro.gateway.ratelimit import RateLimiter, _advisory_ms
from repro.obs import (
    EVENT_GATEWAY_SHED,
    EVENT_RATE_LIMITED,
    PROMETHEUS_CONTENT_TYPE,
    STATUS_ERROR,
    STATUS_OK,
    Observability,
)
from repro.serving import EngineHost, aretry_submit

__all__ = ["GatewayApp", "GatewayConfig"]

# ASGI 3 protocol surface, spelled out (no asgiref dependency).
Scope = MutableMapping[str, Any]
Message = MutableMapping[str, Any]
Receive = Callable[[], Awaitable[Message]]
Send = Callable[[Message], Awaitable[None]]

_JSON = "application/json; charset=utf-8"
_NDJSON = "application/x-ndjson; charset=utf-8"


@dataclass(frozen=True)
class GatewayConfig:
    """Network-edge policy knobs (the host's own knobs stay on the host)."""

    #: Gateway-level admission bound: requests in flight past this are shed
    #: with 503 before touching the host.
    max_in_flight: int = 256
    #: Per-client steady-state requests/second (token-bucket refill rate).
    rate_limit_qps: float = 50.0
    #: Per-client burst capacity (bucket size).
    rate_limit_burst: int = 100
    #: Bound on distinct rate-limiter buckets (LRU-evicted past it).
    rate_limit_max_clients: int = 10_000
    #: Deadline applied when a request carries no ``timeout-ms`` header;
    #: None defers to the host/service default.
    default_deadline_ms: float | None = None
    #: Largest accepted request body.
    max_body_bytes: int = 1_048_576
    #: Largest accepted ``/v1/batch`` query list.
    max_batch_queries: int = 1024
    #: Largest accepted ``/v1/deployments/{name}/updates`` batch.
    max_updates: int = 4096
    #: Breakpoints per streamed chunk on ``/v1/profile``.
    profile_chunk: int = 256
    #: Deployment used when a request names none; None falls back to the
    #: host's sole active deployment (ambiguity is a 400).
    default_deployment: str | None = None


class _Response:
    """One handler's outcome: a JSON body or a chunked byte stream."""

    __slots__ = ("status", "body", "content_type", "headers", "stream")

    def __init__(
        self,
        status: int,
        body: bytes = b"",
        *,
        content_type: str = _JSON,
        headers: list[tuple[str, str]] | None = None,
        stream: AsyncIterator[bytes] | None = None,
    ) -> None:
        self.status = status
        self.body = body
        self.content_type = content_type
        self.headers = headers if headers is not None else []
        self.stream = stream


def _json_response(
    status: int, payload: dict[str, Any], headers: list[tuple[str, str]] | None = None
) -> _Response:
    return _Response(status, json_bytes(payload), headers=headers)


def _error_response(
    error: BaseException, *, retry_after_ms: float | None = None
) -> _Response:
    status = status_for(error)
    headers = (
        retry_after_headers(retry_after_ms) if retry_after_ms is not None else []
    )
    return _Response(
        status,
        json_bytes(error_body(error, retry_after_ms=retry_after_ms)),
        headers=headers,
    )


class GatewayApp:
    """ASGI application serving one :class:`~repro.serving.EngineHost`.

    The app does not own the host: callers build, deploy into, and close the
    host themselves (the app is just its network face), so one host can sit
    behind several transports at once.  ``obs`` defaults to the host's own
    bundle, putting gateway metrics, events, and traces in the same registry
    the host already publishes to — one ``/metrics`` scrape covers the whole
    stack.
    """

    def __init__(
        self,
        host: EngineHost,
        *,
        config: GatewayConfig | None = None,
        obs: Observability | None = None,
    ) -> None:
        self._host = host
        self._config = config if config is not None else GatewayConfig()
        self._obs = obs if obs is not None else host.obs
        #: Deployment name → attached TrafficController (the ``/updates``
        #: ingest route).  Typed ``Any`` so the gateway package never imports
        #: :mod:`repro.traffic` — attachment is the caller's choice.
        self._controllers: dict[str, Any] = {}
        self._limiter = RateLimiter(
            self._config.rate_limit_qps,
            self._config.rate_limit_burst,
            max_clients=self._config.rate_limit_max_clients,
            clock=self._obs.clock,
        )
        self._in_flight = 0
        #: Consecutive gateway-level sheds; drives the 503 Retry-After
        #: escalation the same way per-client denial streaks drive the 429's.
        self._shed_streak = 0
        #: Plain lifetime totals, served by ``/stats`` even when telemetry
        #: is disabled (the registry twins carry the per-route labels).
        self._requests_total = 0
        self._rate_limited_total = 0
        self._shed_total = 0
        if self._obs.enabled:
            registry = self._obs.registry
            self._m_requests = registry.counter(
                "repro_gateway_requests_total",
                "HTTP requests answered, by route and status code.",
                ("route", "code"),
            )
            self._m_latency = registry.histogram(
                "repro_gateway_latency_ms",
                "HTTP request latency (receive to response start), ms.",
                ("route",),
            )
            self._m_in_flight = registry.gauge(
                "repro_gateway_in_flight",
                "Guarded requests currently inside the gateway.",
            )
            self._m_rate_limited = registry.counter(
                "repro_gateway_rate_limited_total",
                "Requests denied by the per-client rate limiter.",
                ("route",),
            )
            self._m_shed = registry.counter(
                "repro_gateway_shed_total",
                "Requests shed at the gateway's in-flight bound.",
                ("route",),
            )
        else:
            self._m_requests = None
            self._m_latency = None
            self._m_in_flight = None
            self._m_rate_limited = None
            self._m_shed = None

    # ------------------------------------------------------------------
    # Traffic controller attachment
    # ------------------------------------------------------------------
    def attach_controller(self, controller: Any) -> None:
        """Expose a :class:`~repro.traffic.TrafficController` over HTTP.

        After attachment, ``POST /v1/deployments/{name}/updates`` feeds the
        controller for ``controller.deployment``.  The gateway does not own
        the controller's lifecycle (start/stop/close stay with the caller),
        mirroring how it fronts but does not own the host.
        """
        self._controllers[str(controller.deployment)] = controller

    def detach_controller(self, name: str) -> Any:
        """Unregister the controller for ``name`` and return it."""
        controller = self._controllers.pop(name, None)
        if controller is None:
            raise NoTrafficControllerError(name, tuple(sorted(self._controllers)))
        return controller

    def _controller(self, name: str) -> Any:
        controller = self._controllers.get(name)
        if controller is None:
            raise NoTrafficControllerError(name, tuple(sorted(self._controllers)))
        return controller

    # ------------------------------------------------------------------
    # ASGI entry point
    # ------------------------------------------------------------------
    async def __call__(self, scope: Scope, receive: Receive, send: Send) -> None:
        if scope["type"] == "lifespan":
            await self._lifespan(receive, send)
            return
        if scope["type"] != "http":  # pragma: no cover - ws etc.
            raise RuntimeError(f"unsupported ASGI scope type {scope['type']!r}")
        started = self._obs.clock.monotonic()
        method = str(scope["method"]).upper()
        path = str(scope["path"])
        headers = self._header_map(scope)
        route, handler, guarded = self._route(method, path)
        trace = (
            self._obs.tracer.trace(
                "http",
                method=method,
                route=route,
                client=self._client_id(headers),
            )
            if self._obs.enabled
            else None
        )
        try:
            if handler is None:
                # `route != path` means a pattern (the swap route) matched
                # but the method did not; exact paths are checked directly.
                method_known = route != path or any(
                    p == path for _m, p in _EXACT_ROUTES
                )
                status = 405 if method_known else 404
                detail = (
                    f"method {method} not allowed on {path}"
                    if method_known
                    else f"no route for {method} {path}"
                )
                response = _Response(
                    status,
                    json_bytes(
                        {
                            "error": {
                                "type": "BadRequestError",
                                "message": detail,
                                "status": status,
                                "retryable": False,
                            }
                        }
                    ),
                )
            elif guarded:
                response = await self._guarded(
                    route, handler, headers, receive, send
                )
            else:
                body = await self._read_body(receive)
                response = await handler(headers, body, path)
        except Exception as exc:  # the transport must always get an answer
            response = _error_response(exc)
        await self._send_response(send, response)
        elapsed_ms = (self._obs.clock.monotonic() - started) * 1000.0
        self._requests_total += 1
        if self._m_requests is not None:
            self._m_requests.inc(1.0, route=route, code=str(response.status))
        if self._m_latency is not None:
            self._m_latency.observe(elapsed_ms, route=route)
        if trace is not None:
            trace.attrs["status"] = response.status
            if response.status >= 400:
                trace.finish(STATUS_ERROR, detail=str(response.status))
            else:
                trace.finish(STATUS_OK)

    async def _lifespan(self, receive: Receive, send: Send) -> None:
        while True:
            message = await receive()
            if message["type"] == "lifespan.startup":
                await send({"type": "lifespan.startup.complete"})
            elif message["type"] == "lifespan.shutdown":
                await send({"type": "lifespan.shutdown.complete"})
                return

    # ------------------------------------------------------------------
    # Edge guardrails
    # ------------------------------------------------------------------
    async def _guarded(
        self,
        route: str,
        handler: "_Handler",
        headers: dict[str, str],
        receive: Receive,
        send: Send,
    ) -> _Response:
        """Rate limit, then bound in-flight work, then run the handler."""
        client = self._client_id(headers)
        decision = self._limiter.check(client)
        if not decision.allowed:
            self._rate_limited_total += 1
            if self._m_rate_limited is not None:
                self._m_rate_limited.inc(1.0, route=route)
            if self._obs.enabled:
                self._obs.events.emit(
                    EVENT_RATE_LIMITED,
                    client,
                    route=route,
                    retry_after_ms=decision.retry_after_ms,
                    denials=decision.denials,
                )
            body = {
                "error": {
                    "type": "RateLimitedError",
                    "message": (
                        f"client {client!r} exceeded "
                        f"{self._limiter.rate_per_second:g} requests/s "
                        f"(burst {self._limiter.burst}); back off and retry"
                    ),
                    "status": 429,
                    "retryable": True,
                    "retry_after_ms": decision.retry_after_ms,
                }
            }
            return _Response(
                429,
                json_bytes(body),
                headers=retry_after_headers(decision.retry_after_ms),
            )
        if self._in_flight >= self._config.max_in_flight:
            self._shed_total += 1
            self._shed_streak += 1
            retry_after_ms = _advisory_ms("gateway-shed", self._shed_streak)
            if self._m_shed is not None:
                self._m_shed.inc(1.0, route=route)
            if self._obs.enabled:
                self._obs.events.emit(
                    EVENT_GATEWAY_SHED,
                    route,
                    in_flight=self._in_flight,
                    max_in_flight=self._config.max_in_flight,
                    retry_after_ms=retry_after_ms,
                )
            body = {
                "error": {
                    "type": "GatewayOverloadedError",
                    "message": (
                        f"gateway at capacity ({self._in_flight} requests in "
                        "flight): request shed — back off and retry"
                    ),
                    "status": 503,
                    "retryable": True,
                    "retry_after_ms": retry_after_ms,
                }
            }
            return _Response(
                503, json_bytes(body), headers=retry_after_headers(retry_after_ms)
            )
        self._in_flight += 1
        if self._m_in_flight is not None:
            self._m_in_flight.set(float(self._in_flight))
        try:
            body_bytes = await self._read_body(receive)
            response = await handler(headers, body_bytes, "")
            self._shed_streak = 0
            return response
        finally:
            self._in_flight -= 1
            if self._m_in_flight is not None:
                self._m_in_flight.set(float(self._in_flight))

    @staticmethod
    def _client_id(headers: dict[str, str]) -> str:
        return headers.get("x-api-key") or headers.get("x-client-id") or "anonymous"

    def _deadline_ms(self, headers: dict[str, str]) -> float | None:
        deadline = parse_timeout_ms(headers.get("timeout-ms"))
        return deadline if deadline is not None else self._config.default_deadline_ms

    async def _read_body(self, receive: Receive) -> bytes:
        chunks: list[bytes] = []
        total = 0
        while True:
            message = await receive()
            if message["type"] == "http.disconnect":
                raise BadRequestError("client disconnected before the body ended")
            chunk = message.get("body", b"")
            if chunk:
                total += len(chunk)
                if total > self._config.max_body_bytes:
                    raise BadRequestError(
                        f"request body exceeds {self._config.max_body_bytes} bytes"
                    )
                chunks.append(chunk)
            if not message.get("more_body", False):
                return b"".join(chunks)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _route(
        self, method: str, path: str
    ) -> tuple[str, "_Handler | None", bool]:
        """Resolve ``(route label, handler, guarded)`` for one request."""
        if path.startswith("/v1/deployments/") and path.endswith("/swap"):
            name = path[len("/v1/deployments/") : -len("/swap")]
            if name and "/" not in name:
                route = "/v1/deployments/{name}/swap"
                if method != "POST":
                    return route, None, False

                async def _swap_bound(
                    headers: dict[str, str], body: bytes, _path: str
                ) -> _Response:
                    return await self._swap(name, body)

                return route, _swap_bound, True
        if path.startswith("/v1/deployments/") and path.endswith("/updates"):
            name = path[len("/v1/deployments/") : -len("/updates")]
            if name and "/" not in name:
                route = "/v1/deployments/{name}/updates"
                if method != "POST":
                    return route, None, False

                async def _updates_bound(
                    headers: dict[str, str], body: bytes, _path: str
                ) -> _Response:
                    return await self._updates(name, body)

                return route, _updates_bound, True
        exact = _EXACT_ROUTES.get((method, path))
        if exact is not None:
            handler_name, guarded = exact
            handler: _Handler = getattr(self, handler_name)
            return path, handler, guarded
        return path, None, False

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    async def _query(
        self, headers: dict[str, str], body: bytes, _path: str
    ) -> _Response:
        source, target, departure, requested = parse_query_payload(
            parse_json_body(body)
        )
        deployment = self._resolve_deployment(requested)
        deadline_ms = self._deadline_ms(headers)
        cost = await aretry_submit(
            lambda: self._host.aquery(
                deployment, source, target, departure, deadline_ms=deadline_ms
            )
        )
        return _json_response(
            200,
            {
                "deployment": deployment,
                "source": source,
                "target": target,
                "departure": departure,
                "cost": cost,
            },
        )

    async def _batch(
        self, headers: dict[str, str], body: bytes, _path: str
    ) -> _Response:
        queries, requested = parse_batch_payload(
            parse_json_body(body), max_queries=self._config.max_batch_queries
        )
        deployment = self._resolve_deployment(requested)
        deadline_ms = self._deadline_ms(headers)

        async def _one(source: int, target: int, departure: float) -> dict[str, Any]:
            try:
                cost = await aretry_submit(
                    lambda: self._host.aquery(
                        deployment, source, target, departure, deadline_ms=deadline_ms
                    )
                )
                return {"cost": cost}
            except Exception as exc:
                return dict(error_body(exc))

        results = await asyncio.gather(*(_one(s, t, d) for s, t, d in queries))
        failed = sum(1 for r in results if "error" in r)
        return _json_response(
            200,
            {
                "deployment": deployment,
                "results": list(results),
                "answered": len(results) - failed,
                "failed": failed,
            },
        )

    async def _profile(
        self, headers: dict[str, str], body: bytes, _path: str
    ) -> _Response:
        source, target, requested = parse_profile_payload(parse_json_body(body))
        deployment = self._resolve_deployment(requested)
        engine = self._host.deployment(deployment).engine
        profile_fn = getattr(engine, "profile", None)
        if profile_fn is None:
            raise UnsupportedCapabilityError(
                str(getattr(engine, "name", type(engine).__name__)), "profile"
            )
        # The profile computes off the loop: a big cost function takes real
        # CPU time and must not stall concurrent /v1/query traffic.
        profile = await asyncio.to_thread(profile_fn, source, target)
        times = [float(t) for t in profile.function.times]
        costs = [float(c) for c in profile.function.costs]
        meta = {
            "deployment": deployment,
            "engine": profile.engine,
            "source": source,
            "target": target,
            "breakpoints": len(times),
        }
        chunk_size = max(self._config.profile_chunk, 1)

        async def _stream() -> AsyncIterator[bytes]:
            yield json_bytes(meta) + b"\n"
            for start in range(0, len(times), chunk_size):
                lines = [
                    json_bytes({"t": t, "cost": c}) + b"\n"
                    for t, c in zip(
                        times[start : start + chunk_size],
                        costs[start : start + chunk_size],
                    )
                ]
                yield b"".join(lines)

        return _Response(200, content_type=_NDJSON, stream=_stream())

    async def _swap(self, name: str, body: bytes) -> _Response:
        spec = parse_swap_payload(parse_json_body(body))
        report = await self._host.aswap(name, spec)
        return _json_response(
            200,
            {
                "deployment": report.deployment,
                "old_spec": report.old_spec,
                "new_spec": report.new_spec,
                "build_seconds": report.build_seconds,
                "switch_seconds": report.switch_seconds,
                "drain_seconds": report.drain_seconds,
                "drained_queries": report.drained_queries,
                "total_seconds": report.total_seconds,
            },
        )

    async def _updates(self, name: str, body: bytes) -> _Response:
        updates, apply_now = parse_updates_payload(
            parse_json_body(body), max_updates=self._config.max_updates
        )
        controller = self._controller(name)

        # Ingestion touches graph state (baseline capture) and locks; the
        # optional synchronous step runs a full control action.  Both stay
        # off the event loop so concurrent query traffic keeps flowing.
        def _ingest() -> int:
            for source, target, delay, weight in updates:
                if weight is not None:
                    controller.stream.emit(source, target, weight)
                else:
                    controller.emit_delay(source, target, float(delay or 0.0))
            return len(updates)

        ingested = await asyncio.to_thread(_ingest)
        payload: dict[str, Any] = {
            "deployment": name,
            "ingested": ingested,
            "pending_stream": controller.stream.pending,
            "pending_edges": controller.pending_edges,
        }
        if not apply_now:
            # Accepted for the controller's own loop to apply — 202.
            return _json_response(202, payload)
        report = await asyncio.to_thread(controller.step)
        if report is not None:
            payload["applied"] = {
                "action": report.action,
                "reason": report.reason,
                "raw_updates": report.raw_updates,
                "coalesced_edges": report.coalesced_edges,
                "dirty_estimate": report.dirty_estimate,
                "seconds": report.seconds,
                "staleness_p50_s": report.staleness_p50_s,
                "staleness_max_s": report.staleness_max_s,
            }
            payload["pending_edges"] = controller.pending_edges
        return _json_response(200, payload)

    async def _deployments(
        self, headers: dict[str, str], body: bytes, _path: str
    ) -> _Response:
        infos = [
            self._host.deployment(name) for name in self._host.deployments()
        ]
        return _json_response(
            200,
            {
                "deployments": [
                    {
                        "name": info.name,
                        "spec": info.spec,
                        "swap_count": info.swap_count,
                        "fallback_spec": info.fallback_spec,
                        "health": info.health.name.lower(),
                        "replicas": info.replicas,
                    }
                    for info in infos
                ]
            },
        )

    async def _health(
        self, headers: dict[str, str], body: bytes, _path: str
    ) -> _Response:
        reports = self._host.health()
        payload = {
            "status": "closed" if self._host.closed else "ok",
            "deployments": {
                name: {
                    "state": report.state.name.lower(),
                    "cause": report.cause,
                    "worker_restarts": report.worker_restarts,
                    "replicas": report.replicas,
                    "replicas_alive": report.replicas_alive,
                }
                for name, report in reports.items()
            },
        }
        return _json_response(503 if self._host.closed else 200, payload)

    async def _stats(
        self, headers: dict[str, str], body: bytes, _path: str
    ) -> _Response:
        stats = self._host.stats()
        return _json_response(
            200,
            {
                "deployments": {
                    name: snapshot.to_dict() for name, snapshot in stats.items()
                },
                "gateway": {
                    "requests_total": self._requests_total,
                    "rate_limited_total": self._rate_limited_total,
                    "shed_total": self._shed_total,
                    "in_flight": self._in_flight,
                    "rate_limiter_clients": len(self._limiter),
                },
            },
        )

    async def _metrics(
        self, headers: dict[str, str], body: bytes, _path: str
    ) -> _Response:
        text = self._host.metrics_text()
        return _Response(
            200, text.encode("utf-8"), content_type=PROMETHEUS_CONTENT_TYPE
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _resolve_deployment(self, requested: str | None) -> str:
        if self._host.closed:
            # A drained host must read as 503 (retry elsewhere), never as
            # 404 just because its deployment table emptied on close.
            raise ServiceClosedError()
        if requested is not None:
            return requested
        if self._config.default_deployment is not None:
            return self._config.default_deployment
        names = self._host.deployments()
        if len(names) == 1:
            return names[0]
        if not names:
            raise UnknownDeploymentError("default", ())
        raise BadRequestError(
            "request names no deployment and several are active: "
            + ", ".join(names)
        )

    @staticmethod
    def _header_map(scope: Scope) -> dict[str, str]:
        headers: dict[str, str] = {}
        for raw_name, raw_value in scope.get("headers", ()):
            headers[bytes(raw_name).decode("latin-1").lower()] = bytes(
                raw_value
            ).decode("latin-1")
        return headers

    async def _send_response(self, send: Send, response: _Response) -> None:
        headers = [("content-type", response.content_type), *response.headers]
        if response.stream is None:
            headers.append(("content-length", str(len(response.body))))
        await send(
            {
                "type": "http.response.start",
                "status": response.status,
                "headers": [
                    (name.encode("latin-1"), value.encode("latin-1"))
                    for name, value in headers
                ],
            }
        )
        if response.stream is None:
            await send({"type": "http.response.body", "body": response.body})
            return
        async for chunk in response.stream:
            await send(
                {"type": "http.response.body", "body": chunk, "more_body": True}
            )
        await send({"type": "http.response.body", "body": b"", "more_body": False})


_Handler = Callable[[dict[str, str], bytes, str], Awaitable[_Response]]

#: (method, path) → (handler attribute, guarded).  GET introspection routes
#: bypass the limiter and the in-flight bound: they must answer *especially*
#: under overload — that is when operators need them.
_EXACT_ROUTES: dict[tuple[str, str], tuple[str, bool]] = {
    ("POST", "/v1/query"): ("_query", True),
    ("POST", "/v1/batch"): ("_batch", True),
    ("POST", "/v1/profile"): ("_profile", True),
    ("GET", "/v1/deployments"): ("_deployments", False),
    ("GET", "/health"): ("_health", False),
    ("GET", "/stats"): ("_stats", False),
    ("GET", "/metrics"): ("_metrics", False),
}
