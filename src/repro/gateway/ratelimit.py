"""Per-client token-bucket rate limiting for the HTTP gateway.

The host's admission queue protects the *engine* from overload; this module
protects the *host* from any single client.  Each client id (API key,
``x-client-id`` header, or the anonymous fallback) gets its own token
bucket: tokens refill continuously at ``rate_per_second`` up to ``burst``,
one request costs one token, and an empty bucket means a 429.

Denials carry a ``Retry-After`` hint built from two signals, whichever is
larger: the bucket's exact time-to-next-token (physics — earlier retry
*cannot* succeed), and an escalating advisory from the shared
:func:`~repro.serving.admission.backoff_delays` schedule keyed by the
client's consecutive-denial count — a client that keeps hammering is told to
back off harder, deterministically (the jitter seed is a stable CRC of the
client id, so runs reproduce).

Bucket state is bounded: at most ``max_clients`` buckets live at once,
evicted least-recently-used, so an open endpoint scanning random API keys
cannot grow gateway memory without bound.
"""

from __future__ import annotations

import threading
import zlib
from collections import OrderedDict
from dataclasses import dataclass

from repro.serving.admission import backoff_delays
from repro.utils.timing import SYSTEM_CLOCK, Clock

__all__ = ["RateDecision", "RateLimiter", "TokenBucket"]


@dataclass(frozen=True)
class RateDecision:
    """One admission verdict from the limiter."""

    #: Whether the request may proceed.
    allowed: bool
    #: Backoff hint in milliseconds (0.0 when allowed).
    retry_after_ms: float
    #: Consecutive denials for this client including this one (0 when
    #: allowed — an allowed request resets the streak).
    denials: int = 0


class TokenBucket:
    """One client's continuously-refilling token bucket.

    Not thread-safe on its own; :class:`RateLimiter` locks around it.
    """

    __slots__ = ("rate", "burst", "tokens", "updated_at", "denials")

    def __init__(self, rate: float, burst: float, now: float) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.updated_at = now
        #: Consecutive denials since the last allowed request.
        self.denials = 0

    def refill(self, now: float) -> None:
        elapsed = max(now - self.updated_at, 0.0)
        self.tokens = min(self.tokens + elapsed * self.rate, self.burst)
        self.updated_at = now

    def try_take(self, now: float) -> bool:
        self.refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.denials = 0
            return True
        self.denials += 1
        return False

    def seconds_to_token(self) -> float:
        """Time until one full token exists (0.0 if one already does)."""
        if self.tokens >= 1.0:
            return 0.0
        return (1.0 - self.tokens) / self.rate


class RateLimiter:
    """Thread-safe per-client token-bucket limiter with LRU-bounded state.

    Parameters
    ----------
    rate_per_second:
        Steady-state requests per second allowed per client.
    burst:
        Bucket capacity — how many requests a quiet client may fire at once.
    max_clients:
        Bucket-map bound; the least-recently-seen client's bucket is evicted
        past it (an evicted client restarts with a full bucket — the bound
        trades perfect fairness for bounded memory).
    clock:
        Time source; inject a :class:`~repro.utils.timing.FakeClock` for
        deterministic tests.
    """

    def __init__(
        self,
        rate_per_second: float,
        burst: int,
        *,
        max_clients: int = 10_000,
        clock: Clock = SYSTEM_CLOCK,
    ) -> None:
        if rate_per_second <= 0.0:
            raise ValueError("rate_per_second must be positive")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        if max_clients < 1:
            raise ValueError("max_clients must be >= 1")
        self.rate_per_second = float(rate_per_second)
        self.burst = int(burst)
        self.max_clients = int(max_clients)
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: OrderedDict[str, TokenBucket] = OrderedDict()

    def check(self, client: str) -> RateDecision:
        """Admit or deny one request from ``client``."""
        now = self._clock.monotonic()
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(self.rate_per_second, float(self.burst), now)
                self._buckets[client] = bucket
                if len(self._buckets) > self.max_clients:
                    self._buckets.popitem(last=False)
            else:
                self._buckets.move_to_end(client)
            if bucket.try_take(now):
                return RateDecision(allowed=True, retry_after_ms=0.0)
            denials = bucket.denials
            physics_ms = bucket.seconds_to_token() * 1000.0
        advisory_ms = _advisory_ms(client, denials)
        return RateDecision(
            allowed=False,
            retry_after_ms=max(physics_ms, advisory_ms),
            denials=denials,
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._buckets)


def _advisory_ms(client: str, denials: int) -> float:
    """The escalating backoff advisory for a client's ``denials``-th denial.

    Reuses the serving layer's deterministic jittered schedule: denial *n*
    is told to wait the *n*-th delay of a :func:`backoff_delays` ladder
    seeded by a stable CRC of the client id (``zlib.crc32``, not ``hash()``
    — the builtin is salted per process and would desynchronise runs).
    """
    if denials < 1:
        return 0.0
    seed = zlib.crc32(client.encode("utf-8", errors="replace"))
    # attempts = denials + 1 yields exactly `denials` delays; take the last.
    # The ladder saturates at max_delay_ms after ~8 doublings, so computing
    # past that is waste — clamp the streak before building the schedule.
    rung = min(denials, 16)
    delays = backoff_delays(
        rung + 1, base_delay_ms=5.0, max_delay_ms=1000.0, seed=seed
    )
    return delays[-1] * 1000.0
