"""Shortcuts over the tree decomposition (Definitions 6-7 and Fact 1).

A *shortcut pair instance* ``<i, j>`` connects a tree node ``X(v_i)`` with one
of its ancestors ``X(v_j)`` and consists of the two shortest travel-cost
functions ``s_<i,j>(t)`` (from ``v_i`` to ``v_j``) and ``s_<j,i>(t)`` (from
``v_j`` to ``v_i``).  Its

* **weight** is the number of interpolation points needed to store the pair
  (``|I_<i,j>| + |I_<j,i>|``) — this is what the memory budget ``N`` counts;
* **utility** estimates how much query work the pair saves:
  ``(height(X(i)) - height(X(j))) * w(T_G) * p_<i,j>`` where ``p_<i,j>`` is the
  fraction of vertices whose LCA with ``X(i)`` is exactly ``X(j)`` (those are
  the destinations for which this pair short-circuits the upward traversal).

The catalog is built **top-down** (Fact 1 / Lemma 6.11 of the H2H paper):
shortcuts of a node reuse the already computed shortcuts of the bag vertices,
so the whole candidate set costs ``O(n · h(T_G) · w(T_G))`` compound
operations instead of one profile search per node.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import IndexBuildError
from repro.functions.compound import compound, minimum_of
from repro.functions.piecewise import PiecewiseLinearFunction
from repro.functions.simplify import simplify
from repro.core.tree_decomposition import TFPTreeDecomposition

__all__ = ["ShortcutPair", "ShortcutCatalog", "build_shortcut_catalog"]


@dataclass
class ShortcutPair:
    """One candidate (or materialised) shortcut pair instance ``<lower, upper>``."""

    #: The descendant vertex ``v_i``.
    lower: int
    #: The ancestor vertex ``v_j``.
    upper: int
    #: ``s_<i,j>(t)``: shortest travel-cost function from ``lower`` to ``upper``.
    forward: PiecewiseLinearFunction | None
    #: ``s_<j,i>(t)``: shortest travel-cost function from ``upper`` to ``lower``.
    backward: PiecewiseLinearFunction | None
    #: Benefit estimate used by the selection problem (Definition 7).
    utility: float = 0.0

    @property
    def key(self) -> tuple[int, int]:
        """Dictionary key of the pair: ``(lower, upper)``."""
        return (self.lower, self.upper)

    @property
    def weight(self) -> int:
        """``|I_<i,j>| + |I_<j,i>|`` — interpolation points needed to store the pair."""
        forward_size = self.forward.size if self.forward is not None else 0
        backward_size = self.backward.size if self.backward is not None else 0
        return forward_size + backward_size

    @property
    def density(self) -> float:
        """Utility per stored interpolation point (Algorithm 5's second ordering)."""
        weight = self.weight
        return self.utility / weight if weight else 0.0


class ShortcutCatalog:
    """All candidate shortcut pairs of a tree decomposition.

    The catalog is the input of the selection problem (Definition 8); the
    selected subset is then materialised inside the index while the remaining
    candidates are dropped to honour the memory budget.
    """

    def __init__(self, pairs: dict[tuple[int, int], ShortcutPair]) -> None:
        self.pairs = pairs

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self):
        return iter(self.pairs.values())

    def get(self, lower: int, upper: int) -> ShortcutPair | None:
        """Return the pair ``<lower, upper>`` if it exists."""
        return self.pairs.get((lower, upper))

    @property
    def total_weight(self) -> int:
        """Total interpolation points needed to materialise every candidate."""
        return sum(pair.weight for pair in self.pairs.values())

    @property
    def total_utility(self) -> float:
        """Sum of utilities over all candidates."""
        return sum(pair.utility for pair in self.pairs.values())

    def function_between(self, source: int, target: int) -> PiecewiseLinearFunction | None:
        """Travel-cost function between two chain-related vertices, if cached.

        Resolves the direction automatically: if ``source`` is the deeper
        vertex the pair's ``forward`` function is returned, otherwise the
        ``backward`` function of the opposite pair.
        """
        if source == target:
            return PiecewiseLinearFunction.zero()
        pair = self.pairs.get((source, target))
        if pair is not None:
            return pair.forward
        pair = self.pairs.get((target, source))
        if pair is not None:
            return pair.backward
        return None


def build_shortcut_catalog(
    tree: TFPTreeDecomposition,
    *,
    max_points: int | None = 32,
    tolerance: float = 0.0,
    compute_utilities: bool = True,
) -> ShortcutCatalog:
    """Compute every candidate shortcut pair, top-down (Fact 1).

    Parameters
    ----------
    tree:
        The TFP tree decomposition.
    max_points:
        Cap on the interpolation points of every shortcut function (``None``
        keeps them exact).
    tolerance:
        Tolerance of the lossless simplification pass.
    compute_utilities:
        Whether to also compute the utility values of Definition 7 (needed by
        the selection algorithms; can be skipped when building a full TD-H2H
        index).
    """
    pairs: dict[tuple[int, int], ShortcutPair] = {}

    def cap(func: PiecewiseLinearFunction) -> PiecewiseLinearFunction:
        # Collinear breakpoints are always removed (value-preserving), even in
        # "exact" mode; the hard cap only applies when ``max_points`` is set.
        return simplify(func, max_points=max_points, tolerance=tolerance)

    def known_function(source: int, target: int) -> PiecewiseLinearFunction | None:
        """Shortcut (or trivial) function between two already-processed chain vertices."""
        if source == target:
            return PiecewiseLinearFunction.zero()
        pair = pairs.get((source, target))
        if pair is not None:
            return pair.forward
        pair = pairs.get((target, source))
        if pair is not None:
            return pair.backward
        return None

    # Process nodes from the root downwards so that shortcuts of every bag
    # vertex (all of which are ancestors) are available when a node is reached.
    ordered = sorted(tree.nodes, key=lambda v: tree.nodes[v].height)
    for vertex in ordered:
        node = tree.nodes[vertex]
        ancestors = tree.ancestors(vertex)
        if not ancestors:
            continue
        for upper in ancestors:
            forward = _combine_forward(node, upper, known_function, cap)
            backward = _combine_backward(node, upper, known_function, cap)
            if forward is None and backward is None:
                continue
            pairs[(vertex, upper)] = ShortcutPair(vertex, upper, forward, backward)

    catalog = ShortcutCatalog(pairs)
    if compute_utilities:
        compute_catalog_utilities(tree, catalog)
    return catalog


def _combine_forward(node, upper, known_function, cap) -> PiecewiseLinearFunction | None:
    """``s_<i,j>(t) = min_{v in X(i)\\{i}} Compound(X(i).Ws_v, s_<v,j>(t))``."""
    candidates = []
    for bag_vertex, first_leg in node.ws.items():
        if bag_vertex == upper:
            candidates.append(first_leg)
            continue
        second_leg = known_function(bag_vertex, upper)
        if second_leg is None:
            continue
        candidates.append(compound(first_leg, second_leg, via=bag_vertex))
    if not candidates:
        return None
    return cap(minimum_of(candidates))


def _combine_backward(node, upper, known_function, cap) -> PiecewiseLinearFunction | None:
    """``s_<j,i>(t) = min_{v in X(i)\\{i}} Compound(s_<j,v>(t), X(i).Wd_v)``."""
    candidates = []
    for bag_vertex, second_leg in node.wd.items():
        if bag_vertex == upper:
            candidates.append(second_leg)
            continue
        first_leg = known_function(upper, bag_vertex)
        if first_leg is None:
            continue
        candidates.append(compound(first_leg, second_leg, via=bag_vertex))
    if not candidates:
        return None
    return cap(minimum_of(candidates))


def compute_catalog_utilities(
    tree: TFPTreeDecomposition, catalog: ShortcutCatalog
) -> None:
    """Fill in the utility value of every pair (Definition 7).

    ``p_<i,j>`` — the probability that the pair helps a uniformly random query
    from ``v_i`` — is the fraction of vertices ``k`` whose LCA with ``X(i)`` is
    exactly ``X(j)``.  With subtree sizes available this is
    ``(|subtree(j)| - |subtree(child of j towards i)|) / |V|``.
    """
    total_vertices = tree.num_nodes
    width = tree.treewidth
    for pair in catalog:
        lower, upper = pair.lower, pair.upper
        height_gap = tree.height(lower) - tree.height(upper)
        if height_gap < 0:
            raise IndexBuildError(
                f"shortcut pair <{lower}, {upper}> does not point at an ancestor"
            )
        child = tree.child_towards(upper, lower)
        coverage = tree.subtree_size(upper) - tree.subtree_size(child)
        probability = coverage / total_vertices
        pair.utility = float(height_gap * width * probability)
