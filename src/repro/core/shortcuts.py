"""Shortcuts over the tree decomposition (Definitions 6-7 and Fact 1).

A *shortcut pair instance* ``<i, j>`` connects a tree node ``X(v_i)`` with one
of its ancestors ``X(v_j)`` and consists of the two shortest travel-cost
functions ``s_<i,j>(t)`` (from ``v_i`` to ``v_j``) and ``s_<j,i>(t)`` (from
``v_j`` to ``v_i``).  Its

* **weight** is the number of interpolation points needed to store the pair
  (``|I_<i,j>| + |I_<j,i>|``) — this is what the memory budget ``N`` counts;
* **utility** estimates how much query work the pair saves:
  ``(height(X(i)) - height(X(j))) * w(T_G) * p_<i,j>`` where ``p_<i,j>`` is the
  fraction of vertices whose LCA with ``X(i)`` is exactly ``X(j)`` (those are
  the destinations for which this pair short-circuits the upward traversal).

The catalog is built **top-down** (Fact 1 / Lemma 6.11 of the H2H paper):
shortcuts of a node reuse the already computed shortcuts of the bag vertices,
so the whole candidate set costs ``O(n · h(T_G) · w(T_G))`` compound
operations instead of one profile search per node.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import IndexBuildError
from repro.functions.batch import PLFBatch, compound_many, minimum_many, simplify_many
from repro.functions.compound import compound, minimum_of
from repro.functions.piecewise import PiecewiseLinearFunction
from repro.functions.simplify import simplify
from repro.core.tree_decomposition import TFPTreeDecomposition

__all__ = [
    "ShortcutPair",
    "ShortcutCatalog",
    "build_shortcut_catalog",
    "pack_shortcut_pairs",
    "unpack_shortcut_pairs",
]


@dataclass
class ShortcutPair:
    """One candidate (or materialised) shortcut pair instance ``<lower, upper>``."""

    #: The descendant vertex ``v_i``.
    lower: int
    #: The ancestor vertex ``v_j``.
    upper: int
    #: ``s_<i,j>(t)``: shortest travel-cost function from ``lower`` to ``upper``.
    forward: PiecewiseLinearFunction | None
    #: ``s_<j,i>(t)``: shortest travel-cost function from ``upper`` to ``lower``.
    backward: PiecewiseLinearFunction | None
    #: Benefit estimate used by the selection problem (Definition 7).
    utility: float = 0.0

    @property
    def key(self) -> tuple[int, int]:
        """Dictionary key of the pair: ``(lower, upper)``."""
        return (self.lower, self.upper)

    @property
    def weight(self) -> int:
        """``|I_<i,j>| + |I_<j,i>|`` — interpolation points needed to store the pair."""
        forward_size = self.forward.size if self.forward is not None else 0
        backward_size = self.backward.size if self.backward is not None else 0
        return forward_size + backward_size

    @property
    def density(self) -> float:
        """Utility per stored interpolation point (Algorithm 5's second ordering)."""
        weight = self.weight
        return self.utility / weight if weight else 0.0


class ShortcutCatalog:
    """All candidate shortcut pairs of a tree decomposition.

    The catalog is the input of the selection problem (Definition 8); the
    selected subset is then materialised inside the index while the remaining
    candidates are dropped to honour the memory budget.
    """

    def __init__(self, pairs: dict[tuple[int, int], ShortcutPair]) -> None:
        self.pairs = pairs

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self):
        return iter(self.pairs.values())

    def get(self, lower: int, upper: int) -> ShortcutPair | None:
        """Return the pair ``<lower, upper>`` if it exists."""
        return self.pairs.get((lower, upper))

    @property
    def total_weight(self) -> int:
        """Total interpolation points needed to materialise every candidate."""
        return sum(pair.weight for pair in self.pairs.values())

    @property
    def total_utility(self) -> float:
        """Sum of utilities over all candidates."""
        return sum(pair.utility for pair in self.pairs.values())

    def function_between(self, source: int, target: int) -> PiecewiseLinearFunction | None:
        """Travel-cost function between two chain-related vertices, if cached.

        Resolves the direction automatically: if ``source`` is the deeper
        vertex the pair's ``forward`` function is returned, otherwise the
        ``backward`` function of the opposite pair.
        """
        if source == target:
            return PiecewiseLinearFunction.zero()
        pair = self.pairs.get((source, target))
        if pair is not None:
            return pair.forward
        pair = self.pairs.get((target, source))
        if pair is not None:
            return pair.backward
        return None


def pack_shortcut_pairs(shortcuts: dict) -> dict[str, np.ndarray]:
    """Flatten shortcut pairs into snapshot buffers (``shortcut_*`` keys).

    Missing directions (``forward``/``backward`` set to ``None``) are encoded
    as presence masks; the present functions ride in two dense
    :class:`~repro.functions.batch.PLFBatch` layouts.
    """
    pairs = list(shortcuts.values())
    forward = [p.forward for p in pairs if p.forward is not None]
    backward = [p.backward for p in pairs if p.backward is not None]
    out = {
        "shortcut_lower": np.array([p.lower for p in pairs], dtype=np.int64),
        "shortcut_upper": np.array([p.upper for p in pairs], dtype=np.int64),
        "shortcut_utility": np.array([p.utility for p in pairs], dtype=np.float64),
        "shortcut_has_forward": np.array(
            [p.forward is not None for p in pairs], dtype=bool
        ),
        "shortcut_has_backward": np.array(
            [p.backward is not None for p in pairs], dtype=bool
        ),
    }
    out.update(PLFBatch.from_functions(forward).to_arrays("shortcut_fwd_plf_"))
    out.update(PLFBatch.from_functions(backward).to_arrays("shortcut_bwd_plf_"))
    return out


def unpack_shortcut_pairs(arrays) -> dict[tuple[int, int], ShortcutPair]:
    """Rebuild the selected-pair dictionary from :func:`pack_shortcut_pairs`."""
    from repro.exceptions import SnapshotError

    lowers = arrays["shortcut_lower"]
    uppers = arrays["shortcut_upper"]
    utilities = arrays["shortcut_utility"]
    has_forward = arrays["shortcut_has_forward"]
    has_backward = arrays["shortcut_has_backward"]
    forward_batch = PLFBatch.from_arrays(arrays, "shortcut_fwd_plf_")
    backward_batch = PLFBatch.from_arrays(arrays, "shortcut_bwd_plf_")
    if forward_batch.count != int(has_forward.sum()) or backward_batch.count != int(
        has_backward.sum()
    ):
        raise SnapshotError("shortcut function batches disagree with the presence masks")
    shortcuts: dict[tuple[int, int], ShortcutPair] = {}
    fwd_i = bwd_i = 0
    for i in range(lowers.size):
        forward = backward = None
        if has_forward[i]:
            forward = forward_batch.function(fwd_i)
            fwd_i += 1
        if has_backward[i]:
            backward = backward_batch.function(bwd_i)
            bwd_i += 1
        pair = ShortcutPair(
            lower=int(lowers[i]),
            upper=int(uppers[i]),
            forward=forward,
            backward=backward,
            utility=float(utilities[i]),
        )
        shortcuts[pair.key] = pair
    return shortcuts


def build_shortcut_catalog(
    tree: TFPTreeDecomposition,
    *,
    max_points: int | None = 32,
    tolerance: float = 0.0,
    compute_utilities: bool = True,
    use_batch_kernels: bool = True,
) -> ShortcutCatalog:
    """Compute every candidate shortcut pair, top-down (Fact 1).

    Parameters
    ----------
    tree:
        The TFP tree decomposition.
    max_points:
        Cap on the interpolation points of every shortcut function (``None``
        keeps them exact).
    tolerance:
        Tolerance of the lossless simplification pass.
    compute_utilities:
        Whether to also compute the utility values of Definition 7 (needed by
        the selection algorithms; can be skipped when building a full TD-H2H
        index).
    use_batch_kernels:
        Construct each tree level with the vectorized batch kernels
        (:mod:`repro.functions.batch`) instead of per-pair scalar operator
        calls.  The results are identical; the flag exists so the equivalence
        can be asserted in tests and the scalar path kept as a reference.
    """
    if use_batch_kernels:
        pairs = _build_pairs_batched(tree, max_points=max_points, tolerance=tolerance)
    else:
        pairs = _build_pairs_scalar(tree, max_points=max_points, tolerance=tolerance)
    catalog = ShortcutCatalog(pairs)
    if compute_utilities:
        compute_catalog_utilities(tree, catalog)
    return catalog


def _known_function_lookup(pairs: dict[tuple[int, int], ShortcutPair]):
    """Shortcut (or trivial) function between two already-processed chain vertices."""

    def known_function(source: int, target: int) -> PiecewiseLinearFunction | None:
        if source == target:
            return PiecewiseLinearFunction.zero()
        pair = pairs.get((source, target))
        if pair is not None:
            return pair.forward
        pair = pairs.get((target, source))
        if pair is not None:
            return pair.backward
        return None

    return known_function


def _build_pairs_scalar(
    tree: TFPTreeDecomposition, *, max_points: int | None, tolerance: float
) -> dict[tuple[int, int], ShortcutPair]:
    """Reference implementation: one scalar operator call per candidate."""
    pairs: dict[tuple[int, int], ShortcutPair] = {}

    def cap(func: PiecewiseLinearFunction) -> PiecewiseLinearFunction:
        # Collinear breakpoints are always removed (value-preserving), even in
        # "exact" mode; the hard cap only applies when ``max_points`` is set.
        return simplify(func, max_points=max_points, tolerance=tolerance)

    known_function = _known_function_lookup(pairs)

    # Process nodes from the root downwards so that shortcuts of every bag
    # vertex (all of which are ancestors) are available when a node is reached.
    ordered = sorted(tree.nodes, key=lambda v: tree.nodes[v].height)
    for vertex in ordered:
        node = tree.nodes[vertex]
        ancestors = tree.ancestors(vertex)
        if not ancestors:
            continue
        for upper in ancestors:
            forward = _combine_forward(node, upper, known_function, cap)
            backward = _combine_backward(node, upper, known_function, cap)
            if forward is None and backward is None:
                continue
            pairs[(vertex, upper)] = ShortcutPair(vertex, upper, forward, backward)
    return pairs


def _build_pairs_batched(
    tree: TFPTreeDecomposition, *, max_points: int | None, tolerance: float
) -> dict[tuple[int, int], ShortcutPair]:
    """Level-batched construction: one kernel pass per tree level.

    Nodes at the same height are never ancestors of each other, so all their
    candidate ``Compound`` calls are independent once the shortcuts of the
    shallower levels exist.  Each level therefore becomes one
    :func:`compound_many` call, a left-fold of :func:`minimum_many` calls
    (preserving the scalar ``minimum_of`` association order) and one
    :func:`simplify_many` pass — amortising the per-function Python dispatch
    that dominates the scalar construction.
    """
    pairs: dict[tuple[int, int], ShortcutPair] = {}
    known_function = _known_function_lookup(pairs)

    levels: dict[int, list[int]] = {}
    for vertex in tree.nodes:
        levels.setdefault(tree.nodes[vertex].height, []).append(vertex)

    for height in sorted(levels):
        # Candidate descriptors per (vertex, upper, direction) group, in the
        # scalar iteration order.  A descriptor is either a direct bag
        # function or a pending compound, referenced by pool row index.
        direct_funcs: list[PiecewiseLinearFunction] = []
        comp_first: list[PiecewiseLinearFunction] = []
        comp_second: list[PiecewiseLinearFunction] = []
        comp_via: list[int] = []
        groups: list[list[tuple[bool, int]]] = []  # (is_compound, local index)
        tasks: list[tuple[int, int, int | None, int | None]] = []

        for vertex in levels[height]:
            node = tree.nodes[vertex]
            ancestors = tree.ancestors(vertex)
            for upper in ancestors:
                group_ids: list[int | None] = []
                for forward in (True, False):
                    bag_functions = node.ws if forward else node.wd
                    refs: list[tuple[bool, int]] = []
                    for bag_vertex, leg in bag_functions.items():
                        if bag_vertex == upper:
                            refs.append((False, len(direct_funcs)))
                            direct_funcs.append(leg)
                            continue
                        if forward:
                            other = known_function(bag_vertex, upper)
                            legs = (leg, other)
                        else:
                            other = known_function(upper, bag_vertex)
                            legs = (other, leg)
                        if other is None:
                            continue
                        refs.append((True, len(comp_first)))
                        comp_first.append(legs[0])
                        comp_second.append(legs[1])
                        comp_via.append(bag_vertex)
                    if refs:
                        group_ids.append(len(groups))
                        groups.append(refs)
                    else:
                        group_ids.append(None)
                if group_ids[0] is None and group_ids[1] is None:
                    continue
                tasks.append((vertex, upper, group_ids[0], group_ids[1]))

        if not tasks:
            continue

        # One kernel call covers every candidate compound of the level.
        direct_batch = PLFBatch.from_functions(direct_funcs)
        if comp_first:
            comp_batch = compound_many(
                PLFBatch.from_functions(comp_first),
                PLFBatch.from_functions(comp_second),
                via=np.asarray(comp_via, dtype=np.int64),
            )
        else:
            comp_batch = PLFBatch.from_functions([])
        # Pool rows: direct candidates first, compound results after.
        n_direct = direct_batch.count
        pool = PLFBatch.stitch(
            [
                (np.arange(n_direct), direct_batch),
                (n_direct + np.arange(comp_batch.count), comp_batch),
            ],
            n_direct + comp_batch.count,
        )
        pool_row = lambda ref: (n_direct + ref[1]) if ref[0] else ref[1]

        # Left-fold minimum over each group, preserving the scalar
        # ``minimum_of`` association order.
        acc = pool.take(np.array([pool_row(g[0]) for g in groups], dtype=np.int64))
        max_len = max(len(g) for g in groups)
        for k in range(1, max_len):
            sel = np.array(
                [i for i, g in enumerate(groups) if len(g) > k], dtype=np.int64
            )
            merged = minimum_many(
                acc.take(sel),
                pool.take(np.array([pool_row(groups[i][k]) for i in sel], dtype=np.int64)),
            )
            rest = np.setdiff1d(np.arange(acc.count), sel, assume_unique=True)
            acc = PLFBatch.stitch(
                [(sel, merged), (rest, acc.take(rest))], acc.count
            )
        capped = simplify_many(acc, max_points=max_points, tolerance=tolerance)

        for vertex, upper, fwd_group, bwd_group in tasks:
            forward = capped.function(fwd_group) if fwd_group is not None else None
            backward = capped.function(bwd_group) if bwd_group is not None else None
            pairs[(vertex, upper)] = ShortcutPair(vertex, upper, forward, backward)
    return pairs


def _combine_forward(node, upper, known_function, cap) -> PiecewiseLinearFunction | None:
    """``s_<i,j>(t) = min_{v in X(i)\\{i}} Compound(X(i).Ws_v, s_<v,j>(t))``."""
    candidates = []
    for bag_vertex, first_leg in node.ws.items():
        if bag_vertex == upper:
            candidates.append(first_leg)
            continue
        second_leg = known_function(bag_vertex, upper)
        if second_leg is None:
            continue
        candidates.append(compound(first_leg, second_leg, via=bag_vertex))
    if not candidates:
        return None
    return cap(minimum_of(candidates))


def _combine_backward(node, upper, known_function, cap) -> PiecewiseLinearFunction | None:
    """``s_<j,i>(t) = min_{v in X(i)\\{i}} Compound(s_<j,v>(t), X(i).Wd_v)``."""
    candidates = []
    for bag_vertex, second_leg in node.wd.items():
        if bag_vertex == upper:
            candidates.append(second_leg)
            continue
        first_leg = known_function(upper, bag_vertex)
        if first_leg is None:
            continue
        candidates.append(compound(first_leg, second_leg, via=bag_vertex))
    if not candidates:
        return None
    return cap(minimum_of(candidates))


def compute_catalog_utilities(
    tree: TFPTreeDecomposition, catalog: ShortcutCatalog
) -> None:
    """Fill in the utility value of every pair (Definition 7).

    ``p_<i,j>`` — the probability that the pair helps a uniformly random query
    from ``v_i`` — is the fraction of vertices ``k`` whose LCA with ``X(i)`` is
    exactly ``X(j)``.  With subtree sizes available this is
    ``(|subtree(j)| - |subtree(child of j towards i)|) / |V|``.

    All pairs of a node share its root path, so the catalog is processed
    grouped by ``lower``: one pass over the path precomputes every
    child-towards link, replacing the O(h) parent-chain walk the naive
    per-pair ``child_towards`` lookup would pay for each of the O(h)
    ancestors.
    """
    total_vertices = tree.num_nodes
    width = tree.treewidth
    by_lower: dict[int, list[ShortcutPair]] = {}
    for pair in catalog:
        by_lower.setdefault(pair.lower, []).append(pair)
    for lower, pairs in by_lower.items():
        height_lower = tree.height(lower)
        path = tree.root_path(lower)
        child_towards = {path[k + 1]: path[k] for k in range(len(path) - 1)}
        for pair in pairs:
            upper = pair.upper
            height_gap = height_lower - tree.height(upper)
            child = child_towards.get(upper)
            if height_gap < 0 or child is None:
                raise IndexBuildError(
                    f"shortcut pair <{lower}, {upper}> does not point at an ancestor"
                )
            coverage = tree.subtree_size(upper) - tree.subtree_size(child)
            probability = coverage / total_vertices
            pair.utility = float(height_gap * width * probability)
