"""The paper's core contribution: TFP tree decomposition, shortcut selection
and the shortcut-accelerated query algorithms, wrapped by :class:`TDTreeIndex`."""

from repro.core.elimination import (
    EliminationStats,
    FunctionPool,
    eliminate_batched,
    eliminate_scalar,
)
from repro.core.index import BUILD_STRATEGIES, IndexStatistics, TDTreeIndex
from repro.core.query import (
    BatchQueryResult,
    EarliestArrivalResult,
    ProfileResult,
    basic_cost_query,
    basic_profile_query,
    batch_cost_query,
    shortcut_cost_query,
    shortcut_profile_query,
)
from repro.core.selection import (
    SelectionResult,
    budget_from_fraction,
    select_all,
    select_dp,
    select_greedy,
    select_none,
)
from repro.core.shortcuts import ShortcutCatalog, ShortcutPair, build_shortcut_catalog
from repro.core.tree_decomposition import TFPTreeDecomposition, TreeNode, decompose
from repro.core.update import UpdateReport, apply_edge_updates

__all__ = [
    "TDTreeIndex",
    "IndexStatistics",
    "BUILD_STRATEGIES",
    "TFPTreeDecomposition",
    "TreeNode",
    "decompose",
    "EliminationStats",
    "FunctionPool",
    "eliminate_batched",
    "eliminate_scalar",
    "ShortcutCatalog",
    "ShortcutPair",
    "build_shortcut_catalog",
    "SelectionResult",
    "select_dp",
    "select_greedy",
    "select_all",
    "select_none",
    "budget_from_fraction",
    "EarliestArrivalResult",
    "ProfileResult",
    "BatchQueryResult",
    "basic_cost_query",
    "basic_profile_query",
    "batch_cost_query",
    "shortcut_cost_query",
    "shortcut_profile_query",
    "UpdateReport",
    "apply_edge_updates",
]
