"""Query processing over the TFP tree decomposition.

Two query flavours are implemented, matching the paper's evaluation:

* the **travel cost query** (scalar): minimum travel cost from ``s`` to ``d``
  when departing at a given time ``t``;
* the **shortest travel cost function query** (profile): the whole function
  :math:`f_{s,d}(t)` over the time horizon.

Both are available

* without shortcuts — the *basic* query of Algorithm 3 (``TD-basic``), and
* with a set of selected shortcuts — Algorithm 6 (``TD-dp`` / ``TD-appro``),
  which has three regimes: all needed shortcuts present (O(w) lookups), some
  present (the partial shortcuts provide an upper bound that prunes the tree
  traversal), or none (falls back to the basic query).

The module also implements path unpacking: reduced weight functions carry the
bridge vertex of every segment (``via``), which lets any tree-level hop be
expanded recursively into original road segments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.exceptions import DisconnectedQueryError, ReproError
from repro.functions.compound import compound, minimum_of
from repro.functions.piecewise import NO_VIA, PiecewiseLinearFunction
from repro.functions.simplify import simplify
from repro.core.tree_decomposition import TFPTreeDecomposition

__all__ = [
    "EarliestArrivalResult",
    "ProfileResult",
    "basic_cost_query",
    "basic_profile_query",
    "shortcut_cost_query",
    "shortcut_profile_query",
    "expand_hop",
]

_INF = math.inf


# ----------------------------------------------------------------------
# Result objects
# ----------------------------------------------------------------------
@dataclass
class EarliestArrivalResult:
    """Answer of a scalar travel-cost query."""

    source: int
    target: int
    departure: float
    cost: float
    meeting_vertex: int | None
    #: "full_shortcuts", "partial_shortcuts", or "basic" — which regime of
    #: Algorithm 6 (or Algorithm 3) produced the answer.
    strategy: str
    #: Tree-level hops (from_vertex, to_vertex, function, departure) recorded
    #: for path expansion; empty when the query was answered purely from
    #: shortcuts and hop recording was not requested.
    hops: list[tuple[int, int, PiecewiseLinearFunction, float]] = field(
        default_factory=list, repr=False
    )
    #: Tree decomposition used to expand hops into original road segments.
    tree: TFPTreeDecomposition | None = field(default=None, repr=False, compare=False)

    @property
    def arrival(self) -> float:
        """Arrival time at the target."""
        return self.departure + self.cost

    def path(self) -> list[int]:
        """Expand the recorded tree-level hops into a vertex path.

        Returns a list of graph vertices starting at ``source`` and ending at
        ``target``.  When no hops were recorded (pure shortcut answers), the
        result contains only the endpoints and the meeting vertex.
        """
        if self.source == self.target:
            return [self.source]
        if not self.hops:
            if self.meeting_vertex is None:
                return [self.source, self.target]
            middle = (
                [self.meeting_vertex]
                if self.meeting_vertex not in (self.source, self.target)
                else []
            )
            return [self.source, *middle, self.target]
        vertices: list[int] = [self.hops[0][0]]
        for from_vertex, to_vertex, func, depart in self.hops:
            edges, _ = expand_hop(self.tree, from_vertex, to_vertex, func, depart)
            for _, v in edges:
                vertices.append(v)
        return vertices


@dataclass
class ProfileResult:
    """Answer of a shortest-travel-cost-function query."""

    source: int
    target: int
    function: PiecewiseLinearFunction
    strategy: str

    def cost_at(self, departure: float) -> float:
        """Evaluate the profile at one departure time."""
        return float(self.function.evaluate(departure))

    def best_departure(self, start: float, end: float, samples: int = 200) -> tuple[float, float]:
        """Return ``(departure, cost)`` minimising the cost within a window."""
        import numpy as np

        grid = np.linspace(start, end, samples)
        grid = np.union1d(grid, self.function.times[(self.function.times >= start) & (self.function.times <= end)])
        values = np.asarray(self.function.evaluate(grid))
        best = int(np.argmin(values))
        return float(grid[best]), float(values[best])


# ----------------------------------------------------------------------
# Hop expansion (path unpacking)
# ----------------------------------------------------------------------
def expand_hop(
    tree: TFPTreeDecomposition | None,
    from_vertex: int,
    to_vertex: int,
    func: PiecewiseLinearFunction,
    departure: float,
    _depth: int = 0,
) -> tuple[list[tuple[int, int]], float]:
    """Expand one tree-level hop into original directed road segments.

    ``func`` must be the weight function actually used to travel from
    ``from_vertex`` to ``to_vertex`` departing at ``departure`` (a bag function
    or a reduced edge).  Returns the list of original edges and the arrival
    time according to the stored (possibly simplified) functions.

    When ``tree`` is ``None`` the expansion cannot recurse and the hop is
    returned as-is; this still yields a connected (coarse) path.
    """
    if _depth > 10_000:  # pragma: no cover - defensive
        raise ReproError("path expansion exceeded the maximum recursion depth")
    via = func.via_at(departure)
    arrival = departure + float(func.evaluate(departure))
    if via == NO_VIA or tree is None:
        return [(from_vertex, to_vertex)], arrival
    via_node = tree.nodes.get(via)
    if via_node is None or from_vertex not in via_node.wd or to_vertex not in via_node.ws:
        # Provenance points at a vertex we cannot expand through (can happen
        # after lossy simplification merged segments); fall back to the coarse hop.
        return [(from_vertex, to_vertex)], arrival
    first_leg = via_node.wd[from_vertex]
    second_leg = via_node.ws[to_vertex]
    left_edges, mid_time = expand_hop(tree, from_vertex, via, first_leg, departure, _depth + 1)
    right_edges, end_time = expand_hop(tree, via, to_vertex, second_leg, mid_time, _depth + 1)
    return left_edges + right_edges, end_time


# ----------------------------------------------------------------------
# Scalar (travel cost) queries
# ----------------------------------------------------------------------
def _ascending_costs(
    tree: TFPTreeDecomposition,
    source: int,
    departure: float,
    *,
    known: dict[int, float] | None = None,
    skip: set[int] | None = None,
    bound: float = _INF,
) -> tuple[dict[int, float], dict[int, tuple[int, PiecewiseLinearFunction]]]:
    """Costs from ``source`` to every vertex on its root path (Algorithm 3, lines 1-9).

    ``known`` seeds already-exact costs (from shortcuts, Algorithm 6 lines 4-6);
    vertices in ``skip`` keep their seeded value and are not relaxed further.
    Costs exceeding ``bound`` are treated as pruned (Algorithm 6 line 20).
    Returns the cost map and, for path recovery, the predecessor map
    ``vertex -> (previous chain vertex, bag function used)``.
    """
    costs: dict[int, float] = {source: 0.0}
    preds: dict[int, tuple[int, PiecewiseLinearFunction]] = {}
    if known:
        costs.update(known)
    skip = skip or set()

    for chain_vertex in tree.root_path(source):
        base = costs.get(chain_vertex, _INF)
        if not math.isfinite(base):
            continue
        node = tree.nodes[chain_vertex]
        depart_here = departure + base
        for upper, func in node.ws.items():
            if upper in skip:
                continue
            candidate = base + float(func.evaluate(depart_here))
            if candidate > bound:
                continue
            if candidate < costs.get(upper, _INF):
                costs[upper] = candidate
                preds[upper] = (chain_vertex, func)
    return costs, preds


def _descending_arrivals(
    tree: TFPTreeDecomposition,
    target: int,
    seed_arrivals: dict[int, float],
    *,
    bound_arrival: float = _INF,
) -> tuple[dict[int, float], dict[int, tuple[int, PiecewiseLinearFunction]]]:
    """Earliest arrivals at every vertex of ``target``'s root path, given arrivals at seeds.

    The seeds are (a superset of) the vertex cut with their earliest arrival
    times coming from the source side.  Processing the root path top-down is a
    topological relaxation of the descending hop DAG, which is exact for FIFO
    weights (see the correctness discussion in the module docstring of
    :mod:`repro.core.tree_decomposition`).
    """
    arrivals: dict[int, float] = dict(seed_arrivals)
    preds: dict[int, tuple[int, PiecewiseLinearFunction]] = {}
    chain = tree.root_path(target)
    for chain_vertex in reversed(chain):  # root first, target last
        node = tree.nodes[chain_vertex]
        best = arrivals.get(chain_vertex, _INF)
        best_pred: tuple[int, PiecewiseLinearFunction] | None = None
        for upper, func in node.wd.items():
            upper_arrival = arrivals.get(upper, _INF)
            if not math.isfinite(upper_arrival) or upper_arrival > bound_arrival:
                continue
            candidate = upper_arrival + float(func.evaluate(upper_arrival))
            if candidate < best:
                best = candidate
                best_pred = (upper, func)
        if best < arrivals.get(chain_vertex, _INF):
            arrivals[chain_vertex] = best
            if best_pred is not None:
                preds[chain_vertex] = best_pred
    return arrivals, preds


def _collect_hops(
    tree: TFPTreeDecomposition,
    source: int,
    target: int,
    departure: float,
    meeting_vertex: int,
    up_preds: dict[int, tuple[int, PiecewiseLinearFunction]],
    down_preds: dict[int, tuple[int, PiecewiseLinearFunction]],
) -> list[tuple[int, int, PiecewiseLinearFunction, float]]:
    """Reconstruct the tree-level hop sequence through ``meeting_vertex``."""
    # Source -> meeting vertex (walk the predecessor chain backwards).
    up_sequence: list[tuple[int, int, PiecewiseLinearFunction]] = []
    cursor = meeting_vertex
    while cursor != source:
        entry = up_preds.get(cursor)
        if entry is None:
            break
        prev, func = entry
        up_sequence.append((prev, cursor, func))
        cursor = prev
    up_sequence.reverse()

    hops: list[tuple[int, int, PiecewiseLinearFunction, float]] = []
    clock = departure
    for from_vertex, to_vertex, func in up_sequence:
        hops.append((from_vertex, to_vertex, func, clock))
        clock += float(func.evaluate(clock))

    # Meeting vertex -> target (walk the descending predecessor chain backwards
    # from the target).
    down_sequence: list[tuple[int, int, PiecewiseLinearFunction]] = []
    cursor = target
    while cursor != meeting_vertex:
        entry = down_preds.get(cursor)
        if entry is None:
            break
        prev, func = entry
        down_sequence.append((prev, cursor, func))
        cursor = prev
    down_sequence.reverse()
    for from_vertex, to_vertex, func in down_sequence:
        hops.append((from_vertex, to_vertex, func, clock))
        clock += float(func.evaluate(clock))
    return hops


def basic_cost_query(
    tree: TFPTreeDecomposition,
    source: int,
    target: int,
    departure: float,
    *,
    record_hops: bool = True,
) -> EarliestArrivalResult:
    """Algorithm 3 (scalar flavour): travel cost from ``source`` at ``departure``."""
    if source == target:
        return EarliestArrivalResult(source, target, departure, 0.0, None, "basic")
    _require_vertices(tree, source, target)

    cut = tree.vertex_cut(source, target)
    up_costs, up_preds = _ascending_costs(tree, source, departure)
    seeds = {
        w: departure + up_costs[w]
        for w in cut
        if math.isfinite(up_costs.get(w, _INF))
    }
    if source in cut:
        seeds[source] = departure
    if not seeds:
        raise DisconnectedQueryError(source, target)
    arrivals, down_preds = _descending_arrivals(tree, target, seeds)
    arrival = arrivals.get(target, _INF)
    if not math.isfinite(arrival):
        raise DisconnectedQueryError(source, target)
    cost = arrival - departure

    meeting = _best_meeting_vertex(cut, up_costs, arrivals, down_preds, target)
    hops: list[tuple[int, int, PiecewiseLinearFunction, float]] = []
    if record_hops:
        hops = _collect_hops(
            tree, source, target, departure, meeting, up_preds, down_preds
        )
    return EarliestArrivalResult(
        source, target, departure, cost, meeting, "basic", hops, tree
    )


def _best_meeting_vertex(
    cut: tuple[int, ...],
    up_costs: dict[int, float],
    arrivals: dict[int, float],
    down_preds: dict[int, tuple[int, PiecewiseLinearFunction]],
    target: int,
) -> int:
    """Identify the cut vertex where the optimal journey leaves the source side.

    The descending predecessor chain from the target terminates at the seed
    vertex whose source-side arrival started the winning chain — that seed
    (always a cut vertex) is the meeting vertex.  Stopping at the *first* cut
    vertex encountered instead would be wrong: the chain may pass through
    several cut vertices, and only the terminal one carries the source-side
    cost that the reported answer is built from.
    """
    cursor = target
    seen = set()
    while cursor in down_preds and cursor not in seen:
        seen.add(cursor)
        cursor = down_preds[cursor][0]
    if cursor in cut:
        return cursor
    finite = [w for w in cut if math.isfinite(up_costs.get(w, _INF))]
    return min(finite, key=lambda w: arrivals.get(w, _INF)) if finite else target


# ----------------------------------------------------------------------
# Profile (travel cost function) queries
# ----------------------------------------------------------------------
def _is_zero(func: PiecewiseLinearFunction) -> bool:
    return func.size == 1 and func.costs[0] == 0.0


def _ascending_profiles(
    tree: TFPTreeDecomposition,
    source: int,
    *,
    forward: bool,
    known: dict[int, PiecewiseLinearFunction] | None = None,
    skip: set[int] | None = None,
    prune_above: float = _INF,
    max_points: int | None = None,
) -> dict[int, PiecewiseLinearFunction]:
    """Profile variant of Algorithm 3, lines 1-9.

    When ``forward`` is true the result maps each root-path vertex ``u`` to the
    function *from* ``source`` *to* ``u`` (uses the ``Ws`` lists); otherwise to
    the function *from* ``u`` *to* ``source`` (uses the ``Wd`` lists), which is
    what the destination side of the query needs.
    ``prune_above`` discards labels whose minimum cost already exceeds the
    bound (Algorithm 6's NIL marking).
    """
    labels: dict[int, PiecewiseLinearFunction] = {
        source: PiecewiseLinearFunction.zero()
    }
    if known:
        labels.update(known)
    skip = skip or set()

    def shrink(func: PiecewiseLinearFunction) -> PiecewiseLinearFunction:
        if max_points is None:
            return func
        return simplify(func, max_points=max_points)

    for chain_vertex in tree.root_path(source):
        base = labels.get(chain_vertex)
        if base is None or base.min_cost > prune_above:
            continue
        node = tree.nodes[chain_vertex]
        bag_functions = node.ws if forward else node.wd
        for upper, func in bag_functions.items():
            if upper in skip:
                continue
            if _is_zero(base):
                candidate = func
            elif forward:
                candidate = compound(base, func)
            else:
                candidate = compound(func, base)
            candidate = shrink(candidate)
            if candidate.min_cost > prune_above:
                continue
            existing = labels.get(upper)
            if existing is None:
                labels[upper] = candidate
            else:
                labels[upper] = shrink(minimum_of([existing, candidate]))
    return labels


def basic_profile_query(
    tree: TFPTreeDecomposition,
    source: int,
    target: int,
    *,
    max_points: int | None = None,
) -> ProfileResult:
    """Algorithm 3 (profile flavour): the function ``f_{s,d}(t)``."""
    if source == target:
        return ProfileResult(source, target, PiecewiseLinearFunction.zero(), "basic")
    _require_vertices(tree, source, target)

    cut = tree.vertex_cut(source, target)
    forward_labels = _ascending_profiles(
        tree, source, forward=True, max_points=max_points
    )
    backward_labels = _ascending_profiles(
        tree, target, forward=False, max_points=max_points
    )
    candidates = []
    for w in cut:
        to_w = forward_labels.get(w)
        from_w = backward_labels.get(w)
        if w == source:
            to_w = PiecewiseLinearFunction.zero()
        if w == target:
            from_w = PiecewiseLinearFunction.zero()
        if to_w is None or from_w is None:
            continue
        candidates.append(compound(to_w, from_w, via=w))
    if not candidates:
        raise DisconnectedQueryError(source, target)
    profile = minimum_of(candidates)
    if max_points is not None:
        profile = simplify(profile, max_points=max_points)
    return ProfileResult(source, target, profile, "basic")


# ----------------------------------------------------------------------
# Queries with selected shortcuts (Algorithm 6)
# ----------------------------------------------------------------------
def _forward_shortcut(store, source: int, w: int) -> PiecewiseLinearFunction | None:
    """Shortcut function ``source -> w`` if selected (``w`` ancestor of ``source``)."""
    if w == source:
        return PiecewiseLinearFunction.zero()
    pair = store.get((source, w))
    return pair.forward if pair is not None else None


def _backward_shortcut(store, target: int, w: int) -> PiecewiseLinearFunction | None:
    """Shortcut function ``w -> target`` if selected (``w`` ancestor of ``target``)."""
    if w == target:
        return PiecewiseLinearFunction.zero()
    pair = store.get((target, w))
    return pair.backward if pair is not None else None


def shortcut_cost_query(
    tree: TFPTreeDecomposition,
    shortcuts: dict[tuple[int, int], "object"],
    source: int,
    target: int,
    departure: float,
    *,
    record_hops: bool = False,
) -> EarliestArrivalResult:
    """Algorithm 6 (scalar flavour): travel cost query using selected shortcuts."""
    if source == target:
        return EarliestArrivalResult(source, target, departure, 0.0, None, "full_shortcuts")
    _require_vertices(tree, source, target)

    cut = tree.vertex_cut(source, target)
    forward_hits: dict[int, PiecewiseLinearFunction] = {}
    backward_hits: dict[int, PiecewiseLinearFunction] = {}
    for w in cut:
        fwd = _forward_shortcut(shortcuts, source, w)
        if fwd is not None:
            forward_hits[w] = fwd
        bwd = _backward_shortcut(shortcuts, target, w)
        if bwd is not None:
            backward_hits[w] = bwd

    # Case 1: every needed shortcut is selected -> O(w(T_G)) evaluations.
    if len(forward_hits) == len(cut) and len(backward_hits) == len(cut):
        best_cost = _INF
        best_w: int | None = None
        for w in cut:
            first = float(forward_hits[w].evaluate(departure))
            second = float(backward_hits[w].evaluate(departure + first))
            if first + second < best_cost:
                best_cost = first + second
                best_w = w
        if not math.isfinite(best_cost):
            raise DisconnectedQueryError(source, target)
        return EarliestArrivalResult(
            source, target, departure, best_cost, best_w, "full_shortcuts"
        )

    # Case 2/3: derive an upper bound from the shortcuts that are available and
    # run the (pruned) basic traversal.
    real_hits = any(w != source for w in forward_hits) or any(
        w != target for w in backward_hits
    )
    strategy = "partial_shortcuts" if real_hits else "basic"
    upper_bound = _INF
    common = set(forward_hits) & set(backward_hits)
    for w in common:
        first = float(forward_hits[w].evaluate(departure))
        second = float(backward_hits[w].evaluate(departure + first))
        upper_bound = min(upper_bound, first + second)

    known_costs = {
        w: float(func.evaluate(departure)) for w, func in forward_hits.items()
    }
    if record_hops:
        # Seeding cut vertices from shortcuts would leave the predecessor
        # chains incomplete (the shortcut hides the sub-path it represents),
        # so when the caller wants an expandable path only the pruning bound
        # is used and the full traversal records every hop.
        known_costs = {}
        skip_vertices: set[int] = set()
    else:
        skip_vertices = set(forward_hits)
    up_costs, up_preds = _ascending_costs(
        tree,
        source,
        departure,
        known=known_costs,
        skip=skip_vertices,
        bound=upper_bound,
    )
    seeds = {
        w: departure + up_costs[w]
        for w in cut
        if math.isfinite(up_costs.get(w, _INF))
    }
    if source in cut:
        seeds[source] = departure
    if not seeds:
        raise DisconnectedQueryError(source, target)
    bound_arrival = departure + upper_bound if math.isfinite(upper_bound) else _INF
    arrivals, down_preds = _descending_arrivals(
        tree, target, seeds, bound_arrival=bound_arrival
    )
    arrival = arrivals.get(target, _INF)
    # The backward shortcuts give additional candidate answers.
    for w, func in backward_hits.items():
        w_cost = up_costs.get(w, _INF)
        if math.isfinite(w_cost):
            depart_w = departure + w_cost
            arrival = min(arrival, depart_w + float(func.evaluate(depart_w)))
    if not math.isfinite(arrival):
        raise DisconnectedQueryError(source, target)
    cost = arrival - departure
    meeting = _best_meeting_vertex(cut, up_costs, arrivals, down_preds, target)
    hops: list[tuple[int, int, PiecewiseLinearFunction, float]] = []
    if record_hops:
        hops = _collect_hops(
            tree, source, target, departure, meeting, up_preds, down_preds
        )
    return EarliestArrivalResult(
        source, target, departure, cost, meeting, strategy, hops, tree
    )


def shortcut_profile_query(
    tree: TFPTreeDecomposition,
    shortcuts: dict[tuple[int, int], "object"],
    source: int,
    target: int,
    *,
    max_points: int | None = None,
) -> ProfileResult:
    """Algorithm 6 (profile flavour): cost-function query using selected shortcuts."""
    if source == target:
        return ProfileResult(source, target, PiecewiseLinearFunction.zero(), "full_shortcuts")
    _require_vertices(tree, source, target)

    cut = tree.vertex_cut(source, target)
    forward_hits: dict[int, PiecewiseLinearFunction] = {}
    backward_hits: dict[int, PiecewiseLinearFunction] = {}
    for w in cut:
        fwd = _forward_shortcut(shortcuts, source, w)
        if fwd is not None:
            forward_hits[w] = fwd
        bwd = _backward_shortcut(shortcuts, target, w)
        if bwd is not None:
            backward_hits[w] = bwd

    if len(forward_hits) == len(cut) and len(backward_hits) == len(cut):
        candidates = [
            compound(forward_hits[w], backward_hits[w], via=w) for w in cut
        ]
        profile = minimum_of(candidates)
        if max_points is not None:
            profile = simplify(profile, max_points=max_points)
        return ProfileResult(source, target, profile, "full_shortcuts")

    real_hits = any(w != source for w in forward_hits) or any(
        w != target for w in backward_hits
    )
    strategy = "partial_shortcuts" if real_hits else "basic"
    prune = _INF
    common = set(forward_hits) & set(backward_hits)
    if common:
        bound_func = minimum_of(
            [compound(forward_hits[w], backward_hits[w], via=w) for w in common]
        )
        prune = bound_func.max_cost

    forward_labels = _ascending_profiles(
        tree,
        source,
        forward=True,
        known=dict(forward_hits),
        skip=set(forward_hits),
        prune_above=prune,
        max_points=max_points,
    )
    backward_labels = _ascending_profiles(
        tree,
        target,
        forward=False,
        known=dict(backward_hits),
        skip=set(backward_hits),
        prune_above=prune,
        max_points=max_points,
    )
    candidates = []
    for w in cut:
        to_w = forward_labels.get(w)
        from_w = backward_labels.get(w)
        if w == source:
            to_w = PiecewiseLinearFunction.zero()
        if w == target:
            from_w = PiecewiseLinearFunction.zero()
        if to_w is None or from_w is None:
            continue
        candidates.append(compound(to_w, from_w, via=w))
    if not candidates:
        raise DisconnectedQueryError(source, target)
    profile = minimum_of(candidates)
    if max_points is not None:
        profile = simplify(profile, max_points=max_points)
    return ProfileResult(source, target, profile, strategy)


def _require_vertices(tree: TFPTreeDecomposition, source: int, target: int) -> None:
    tree.node(source)
    tree.node(target)
