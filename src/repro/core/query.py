"""Query processing over the TFP tree decomposition.

Two query flavours are implemented, matching the paper's evaluation:

* the **travel cost query** (scalar): minimum travel cost from ``s`` to ``d``
  when departing at a given time ``t``;
* the **shortest travel cost function query** (profile): the whole function
  :math:`f_{s,d}(t)` over the time horizon.

Both are available

* without shortcuts — the *basic* query of Algorithm 3 (``TD-basic``), and
* with a set of selected shortcuts — Algorithm 6 (``TD-dp`` / ``TD-appro``),
  which has three regimes: all needed shortcuts present (O(w) lookups), some
  present (the partial shortcuts provide an upper bound that prunes the tree
  traversal), or none (falls back to the basic query).

The module also implements path unpacking: reduced weight functions carry the
bridge vertex of every segment (``via``), which lets any tree-level hop be
expanded recursively into original road segments.

**Batch API.**  :func:`batch_cost_query` answers many scalar (OD, departure)
queries in one call.  Instead of one tree sweep per query, the whole batch
shares two *global* sweeps over a matrix with one row per tree node and one
column per query: every node relaxes once (in height order) with a single
vectorized kernel call (:mod:`repro.functions.batch`) covering all of its
label functions and all query columns.  For an individual query, nodes off
its source/target root path carry ``inf`` state and contribute exact no-ops,
so the returned costs are bit-identical to looping
:func:`basic_cost_query` / :func:`shortcut_cost_query` over the same queries
— the batch kernels and the scalar fast path share one interpolation formula
— and the batch engine is a pure throughput optimisation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import DisconnectedQueryError, ReproError
from repro.functions.batch import PLFBatch, evaluate_grid, evaluate_many
from repro.functions.compound import compound, minimum_of
from repro.functions.piecewise import NO_VIA, PiecewiseLinearFunction
from repro.functions.profile import best_departure as _best_departure
from repro.functions.simplify import simplify
from repro.core.tree_decomposition import TFPTreeDecomposition
from repro.utils.deprecation import warn_deprecated

__all__ = [
    "EarliestArrivalResult",
    "ProfileResult",
    "BatchQueryResult",
    "basic_cost_query",
    "basic_profile_query",
    "shortcut_cost_query",
    "shortcut_profile_query",
    "batch_cost_query",
    "expand_hop",
]

_INF = math.inf


# ----------------------------------------------------------------------
# Result objects
# ----------------------------------------------------------------------
@dataclass
class EarliestArrivalResult:
    """Answer of a scalar travel-cost query."""

    source: int
    target: int
    departure: float
    cost: float
    meeting_vertex: int | None
    #: "full_shortcuts", "partial_shortcuts", or "basic" — which regime of
    #: Algorithm 6 (or Algorithm 3) produced the answer.
    strategy: str
    #: Tree-level hops (from_vertex, to_vertex, function, departure) recorded
    #: for path expansion; empty when the query was answered purely from
    #: shortcuts and hop recording was not requested.
    hops: list[tuple[int, int, PiecewiseLinearFunction, float]] = field(
        default_factory=list, repr=False
    )
    #: Tree decomposition used to expand hops into original road segments.
    tree: TFPTreeDecomposition | None = field(default=None, repr=False, compare=False)

    @property
    def arrival(self) -> float:
        """Arrival time at the target."""
        return self.departure + self.cost

    def path(self) -> list[int]:
        """Expand the recorded tree-level hops into a vertex path.

        Returns a list of graph vertices starting at ``source`` and ending at
        ``target``.  When no hops were recorded (pure shortcut answers), the
        result contains only the endpoints and the meeting vertex.
        """
        if self.source == self.target:
            return [self.source]
        if not self.hops:
            if self.meeting_vertex is None:
                return [self.source, self.target]
            middle = (
                [self.meeting_vertex]
                if self.meeting_vertex not in (self.source, self.target)
                else []
            )
            return [self.source, *middle, self.target]
        vertices: list[int] = [self.hops[0][0]]
        for from_vertex, to_vertex, func, depart in self.hops:
            edges, _ = expand_hop(self.tree, from_vertex, to_vertex, func, depart)
            for _, v in edges:
                vertices.append(v)
        return vertices


@dataclass
class ProfileResult:
    """Answer of a shortest-travel-cost-function query."""

    source: int
    target: int
    function: PiecewiseLinearFunction
    strategy: str

    def cost_at(self, departure: float) -> float:
        """Evaluate the profile at one departure time."""
        return float(self.function.evaluate(departure))

    def best_departure(
        self, start: float, end: float, samples: int | None = None
    ) -> tuple[float, float]:
        """Return the exact ``(departure, cost)`` minimising the cost in a window.

        The minimum of a piecewise-linear profile over ``[start, end]`` lies
        at a breakpoint or a window endpoint, so exactly those candidates are
        evaluated.  ``samples`` is deprecated and ignored: the result no
        longer depends on a sampling grid.
        """
        if samples is not None:
            warn_deprecated(
                "ProfileResult.best_departure(samples=...)",
                "the samples parameter of best_departure is deprecated and "
                "ignored: the minimum is now computed exactly from the "
                "profile's breakpoints",
            )
        return _best_departure(self.function, start, end)


# ----------------------------------------------------------------------
# Hop expansion (path unpacking)
# ----------------------------------------------------------------------
def expand_hop(
    tree: TFPTreeDecomposition | None,
    from_vertex: int,
    to_vertex: int,
    func: PiecewiseLinearFunction,
    departure: float,
    _depth: int = 0,
) -> tuple[list[tuple[int, int]], float]:
    """Expand one tree-level hop into original directed road segments.

    ``func`` must be the weight function actually used to travel from
    ``from_vertex`` to ``to_vertex`` departing at ``departure`` (a bag function
    or a reduced edge).  Returns the list of original edges and the arrival
    time according to the stored (possibly simplified) functions.

    When ``tree`` is ``None`` the expansion cannot recurse and the hop is
    returned as-is; this still yields a connected (coarse) path.
    """
    if _depth > 10_000:  # pragma: no cover - defensive
        raise ReproError("path expansion exceeded the maximum recursion depth")
    via = func.via_at(departure)
    arrival = departure + float(func.evaluate(departure))
    if via == NO_VIA or tree is None:
        return [(from_vertex, to_vertex)], arrival
    via_node = tree.nodes.get(via)
    if via_node is None or from_vertex not in via_node.wd or to_vertex not in via_node.ws:
        # Provenance points at a vertex we cannot expand through (can happen
        # after lossy simplification merged segments); fall back to the coarse hop.
        return [(from_vertex, to_vertex)], arrival
    first_leg = via_node.wd[from_vertex]
    second_leg = via_node.ws[to_vertex]
    left_edges, mid_time = expand_hop(tree, from_vertex, via, first_leg, departure, _depth + 1)
    right_edges, end_time = expand_hop(tree, via, to_vertex, second_leg, mid_time, _depth + 1)
    return left_edges + right_edges, end_time


# ----------------------------------------------------------------------
# Scalar (travel cost) queries
# ----------------------------------------------------------------------
def _ascending_costs(
    tree: TFPTreeDecomposition,
    source: int,
    departure: float,
    *,
    known: dict[int, float] | None = None,
    skip: set[int] | None = None,
    bound: float = _INF,
) -> tuple[dict[int, float], dict[int, tuple[int, PiecewiseLinearFunction]]]:
    """Costs from ``source`` to every vertex on its root path (Algorithm 3, lines 1-9).

    ``known`` seeds already-exact costs (from shortcuts, Algorithm 6 lines 4-6);
    vertices in ``skip`` keep their seeded value and are not relaxed further.
    Costs exceeding ``bound`` are treated as pruned (Algorithm 6 line 20).
    Returns the cost map and, for path recovery, the predecessor map
    ``vertex -> (previous chain vertex, bag function used)``.
    """
    costs: dict[int, float] = {source: 0.0}
    preds: dict[int, tuple[int, PiecewiseLinearFunction]] = {}
    if known:
        costs.update(known)
    skip = skip or set()

    for chain_vertex in tree.root_path(source):
        base = costs.get(chain_vertex, _INF)
        if not math.isfinite(base):
            continue
        node = tree.nodes[chain_vertex]
        depart_here = departure + base
        for upper, func in node.ws.items():
            if upper in skip:
                continue
            candidate = base + float(func.evaluate(depart_here))
            if candidate > bound:
                continue
            if candidate < costs.get(upper, _INF):
                costs[upper] = candidate
                preds[upper] = (chain_vertex, func)
    return costs, preds


def _descending_arrivals(
    tree: TFPTreeDecomposition,
    target: int,
    seed_arrivals: dict[int, float],
    *,
    bound_arrival: float = _INF,
) -> tuple[dict[int, float], dict[int, tuple[int, PiecewiseLinearFunction]]]:
    """Earliest arrivals at every vertex of ``target``'s root path, given arrivals at seeds.

    The seeds are (a superset of) the vertex cut with their earliest arrival
    times coming from the source side.  Processing the root path top-down is a
    topological relaxation of the descending hop DAG, which is exact for FIFO
    weights (see the correctness discussion in the module docstring of
    :mod:`repro.core.tree_decomposition`).
    """
    arrivals: dict[int, float] = dict(seed_arrivals)
    preds: dict[int, tuple[int, PiecewiseLinearFunction]] = {}
    chain = tree.root_path(target)
    for chain_vertex in reversed(chain):  # root first, target last
        node = tree.nodes[chain_vertex]
        best = arrivals.get(chain_vertex, _INF)
        best_pred: tuple[int, PiecewiseLinearFunction] | None = None
        for upper, func in node.wd.items():
            upper_arrival = arrivals.get(upper, _INF)
            if not math.isfinite(upper_arrival) or upper_arrival > bound_arrival:
                continue
            candidate = upper_arrival + float(func.evaluate(upper_arrival))
            if candidate < best:
                best = candidate
                best_pred = (upper, func)
        if best < arrivals.get(chain_vertex, _INF):
            arrivals[chain_vertex] = best
            if best_pred is not None:
                preds[chain_vertex] = best_pred
    return arrivals, preds


def _collect_hops(
    tree: TFPTreeDecomposition,
    source: int,
    target: int,
    departure: float,
    meeting_vertex: int,
    up_preds: dict[int, tuple[int, PiecewiseLinearFunction]],
    down_preds: dict[int, tuple[int, PiecewiseLinearFunction]],
) -> list[tuple[int, int, PiecewiseLinearFunction, float]]:
    """Reconstruct the tree-level hop sequence through ``meeting_vertex``."""
    # Source -> meeting vertex (walk the predecessor chain backwards).
    up_sequence: list[tuple[int, int, PiecewiseLinearFunction]] = []
    cursor = meeting_vertex
    while cursor != source:
        entry = up_preds.get(cursor)
        if entry is None:
            break
        prev, func = entry
        up_sequence.append((prev, cursor, func))
        cursor = prev
    up_sequence.reverse()

    hops: list[tuple[int, int, PiecewiseLinearFunction, float]] = []
    clock = departure
    for from_vertex, to_vertex, func in up_sequence:
        hops.append((from_vertex, to_vertex, func, clock))
        clock += float(func.evaluate(clock))

    # Meeting vertex -> target (walk the descending predecessor chain backwards
    # from the target).
    down_sequence: list[tuple[int, int, PiecewiseLinearFunction]] = []
    cursor = target
    while cursor != meeting_vertex:
        entry = down_preds.get(cursor)
        if entry is None:
            break
        prev, func = entry
        down_sequence.append((prev, cursor, func))
        cursor = prev
    down_sequence.reverse()
    for from_vertex, to_vertex, func in down_sequence:
        hops.append((from_vertex, to_vertex, func, clock))
        clock += float(func.evaluate(clock))
    return hops


def _meeting_chain(
    tree: TFPTreeDecomposition,
    source: int,
    target: int,
    *,
    lca: int | None = None,
) -> tuple[int, ...]:
    """All common ancestors of ``source`` and ``target`` (the LCA's root path).

    ``lca`` may be supplied by callers that already resolved it (e.g. as
    ``vertex_cut(source, target)[0]``) to skip the second LCA walk.

    Any shortest journey decomposes into an up-down path in the elimination
    hierarchy: working edges only connect a node to its tree ancestors, so the
    ascending prefix stays on ``source``'s root path, the descending suffix on
    ``target``'s, and the apex is a *common* ancestor — which may lie strictly
    above the LCA's bag.  The sweep-based query regimes therefore have to
    consider every common ancestor as a candidate meeting vertex; seeding only
    the vertex cut ``X(lca)`` (Property 1) misses journeys whose apex sits
    above the cut.  (The full-shortcut regime is exempt: its labels are exact
    shortest functions, for which crossing the cut is sufficient.)
    """
    return tree.root_path(tree.lca(source, target) if lca is None else lca)


def basic_cost_query(
    tree: TFPTreeDecomposition,
    source: int,
    target: int,
    departure: float,
    *,
    record_hops: bool = True,
) -> EarliestArrivalResult:
    """Algorithm 3 (scalar flavour): travel cost from ``source`` at ``departure``."""
    if source == target:
        return EarliestArrivalResult(source, target, departure, 0.0, None, "basic")
    _require_vertices(tree, source, target)

    meet = _meeting_chain(tree, source, target)
    up_costs, up_preds = _ascending_costs(tree, source, departure)
    seeds = {
        w: departure + up_costs[w]
        for w in meet
        if math.isfinite(up_costs.get(w, _INF))
    }
    if not seeds:
        raise DisconnectedQueryError(source, target)
    arrivals, down_preds = _descending_arrivals(tree, target, seeds)
    arrival = arrivals.get(target, _INF)
    if not math.isfinite(arrival):
        raise DisconnectedQueryError(source, target)
    cost = arrival - departure

    meeting = _best_meeting_vertex(meet, up_costs, arrivals, down_preds, target)
    hops: list[tuple[int, int, PiecewiseLinearFunction, float]] = []
    if record_hops:
        hops = _collect_hops(
            tree, source, target, departure, meeting, up_preds, down_preds
        )
    return EarliestArrivalResult(
        source, target, departure, cost, meeting, "basic", hops, tree
    )


def _best_meeting_vertex(
    meet: tuple[int, ...],
    up_costs: dict[int, float],
    arrivals: dict[int, float],
    down_preds: dict[int, tuple[int, PiecewiseLinearFunction]],
    target: int,
) -> int:
    """Identify the common ancestor where the optimal journey leaves the source side.

    The descending predecessor chain from the target terminates at the seed
    vertex whose source-side arrival started the winning chain — that seed
    (always a seeded common ancestor) is the meeting vertex.  Stopping at the
    *first* candidate encountered instead would be wrong: the chain may pass
    through several of them, and only the terminal one carries the source-side
    cost that the reported answer is built from.
    """
    cursor = target
    seen = set()
    while cursor in down_preds and cursor not in seen:
        seen.add(cursor)
        cursor = down_preds[cursor][0]
    if cursor in meet:
        return cursor
    finite = [w for w in meet if math.isfinite(up_costs.get(w, _INF))]
    return min(finite, key=lambda w: arrivals.get(w, _INF)) if finite else target


# ----------------------------------------------------------------------
# Profile (travel cost function) queries
# ----------------------------------------------------------------------
def _is_zero(func: PiecewiseLinearFunction) -> bool:
    return func.size == 1 and func.costs[0] == 0.0


def _ascending_profiles(
    tree: TFPTreeDecomposition,
    source: int,
    *,
    forward: bool,
    known: dict[int, PiecewiseLinearFunction] | None = None,
    skip: set[int] | None = None,
    prune_above: float = _INF,
    max_points: int | None = None,
) -> dict[int, PiecewiseLinearFunction]:
    """Profile variant of Algorithm 3, lines 1-9.

    When ``forward`` is true the result maps each root-path vertex ``u`` to the
    function *from* ``source`` *to* ``u`` (uses the ``Ws`` lists); otherwise to
    the function *from* ``u`` *to* ``source`` (uses the ``Wd`` lists), which is
    what the destination side of the query needs.
    ``prune_above`` discards labels whose minimum cost already exceeds the
    bound (Algorithm 6's NIL marking).
    """
    labels: dict[int, PiecewiseLinearFunction] = {
        source: PiecewiseLinearFunction.zero()
    }
    if known:
        labels.update(known)
    skip = skip or set()

    def shrink(func: PiecewiseLinearFunction) -> PiecewiseLinearFunction:
        if max_points is None:
            return func
        return simplify(func, max_points=max_points)

    for chain_vertex in tree.root_path(source):
        base = labels.get(chain_vertex)
        if base is None or base.min_cost > prune_above:
            continue
        node = tree.nodes[chain_vertex]
        bag_functions = node.ws if forward else node.wd
        for upper, func in bag_functions.items():
            if upper in skip:
                continue
            if _is_zero(base):
                candidate = func
            elif forward:
                candidate = compound(base, func)
            else:
                candidate = compound(func, base)
            candidate = shrink(candidate)
            if candidate.min_cost > prune_above:
                continue
            existing = labels.get(upper)
            if existing is None:
                labels[upper] = candidate
            else:
                labels[upper] = shrink(minimum_of([existing, candidate]))
    return labels


def basic_profile_query(
    tree: TFPTreeDecomposition,
    source: int,
    target: int,
    *,
    max_points: int | None = None,
) -> ProfileResult:
    """Algorithm 3 (profile flavour): the function ``f_{s,d}(t)``."""
    if source == target:
        return ProfileResult(source, target, PiecewiseLinearFunction.zero(), "basic")
    _require_vertices(tree, source, target)

    meet = _meeting_chain(tree, source, target)
    forward_labels = _ascending_profiles(
        tree, source, forward=True, max_points=max_points
    )
    backward_labels = _ascending_profiles(
        tree, target, forward=False, max_points=max_points
    )
    candidates = []
    for w in meet:
        to_w = forward_labels.get(w)
        from_w = backward_labels.get(w)
        if w == source:
            to_w = PiecewiseLinearFunction.zero()
        if w == target:
            from_w = PiecewiseLinearFunction.zero()
        if to_w is None or from_w is None:
            continue
        candidates.append(compound(to_w, from_w, via=w))
    if not candidates:
        raise DisconnectedQueryError(source, target)
    profile = minimum_of(candidates)
    if max_points is not None:
        profile = simplify(profile, max_points=max_points)
    return ProfileResult(source, target, profile, "basic")


# ----------------------------------------------------------------------
# Queries with selected shortcuts (Algorithm 6)
# ----------------------------------------------------------------------
def _forward_shortcut(store, source: int, w: int) -> PiecewiseLinearFunction | None:
    """Shortcut function ``source -> w`` if selected (``w`` ancestor of ``source``)."""
    if w == source:
        return PiecewiseLinearFunction.zero()
    pair = store.get((source, w))
    return pair.forward if pair is not None else None


def _backward_shortcut(store, target: int, w: int) -> PiecewiseLinearFunction | None:
    """Shortcut function ``w -> target`` if selected (``w`` ancestor of ``target``)."""
    if w == target:
        return PiecewiseLinearFunction.zero()
    pair = store.get((target, w))
    return pair.backward if pair is not None else None


def shortcut_cost_query(
    tree: TFPTreeDecomposition,
    shortcuts: dict[tuple[int, int], "object"],
    source: int,
    target: int,
    departure: float,
    *,
    record_hops: bool = False,
) -> EarliestArrivalResult:
    """Algorithm 6 (scalar flavour): travel cost query using selected shortcuts."""
    if source == target:
        return EarliestArrivalResult(source, target, departure, 0.0, None, "full_shortcuts")
    _require_vertices(tree, source, target)

    cut = tree.vertex_cut(source, target)
    forward_hits: dict[int, PiecewiseLinearFunction] = {}
    backward_hits: dict[int, PiecewiseLinearFunction] = {}
    for w in cut:
        fwd = _forward_shortcut(shortcuts, source, w)
        if fwd is not None:
            forward_hits[w] = fwd
        bwd = _backward_shortcut(shortcuts, target, w)
        if bwd is not None:
            backward_hits[w] = bwd

    # Case 1: every needed shortcut is selected -> O(w(T_G)) evaluations.
    if len(forward_hits) == len(cut) and len(backward_hits) == len(cut):
        best_cost = _INF
        best_w: int | None = None
        for w in cut:
            first = float(forward_hits[w].evaluate(departure))
            second = float(backward_hits[w].evaluate(departure + first))
            if first + second < best_cost:
                best_cost = first + second
                best_w = w
        if not math.isfinite(best_cost):
            raise DisconnectedQueryError(source, target)
        return EarliestArrivalResult(
            source, target, departure, best_cost, best_w, "full_shortcuts"
        )

    # Case 2/3: derive an upper bound from the shortcuts that are available and
    # run the (pruned) basic traversal.
    real_hits = any(w != source for w in forward_hits) or any(
        w != target for w in backward_hits
    )
    strategy = "partial_shortcuts" if real_hits else "basic"
    upper_bound = _INF
    common = set(forward_hits) & set(backward_hits)
    for w in common:
        first = float(forward_hits[w].evaluate(departure))
        second = float(backward_hits[w].evaluate(departure + first))
        upper_bound = min(upper_bound, first + second)

    known_costs = {
        w: float(func.evaluate(departure)) for w, func in forward_hits.items()
    }
    if record_hops:
        # Seeding cut vertices from shortcuts would leave the predecessor
        # chains incomplete (the shortcut hides the sub-path it represents),
        # so when the caller wants an expandable path only the pruning bound
        # is used and the full traversal records every hop.
        known_costs = {}
        skip_vertices: set[int] = set()
    else:
        skip_vertices = set(forward_hits)
    up_costs, up_preds = _ascending_costs(
        tree,
        source,
        departure,
        known=known_costs,
        skip=skip_vertices,
        bound=upper_bound,
    )
    meet = _meeting_chain(tree, source, target, lca=cut[0])
    seeds = {
        w: departure + up_costs[w]
        for w in meet
        if math.isfinite(up_costs.get(w, _INF))
    }
    if not seeds:
        raise DisconnectedQueryError(source, target)
    bound_arrival = departure + upper_bound if math.isfinite(upper_bound) else _INF
    arrivals, down_preds = _descending_arrivals(
        tree, target, seeds, bound_arrival=bound_arrival
    )
    arrival = arrivals.get(target, _INF)
    # The backward shortcuts give additional candidate answers.
    for w, func in backward_hits.items():
        w_cost = up_costs.get(w, _INF)
        if math.isfinite(w_cost):
            depart_w = departure + w_cost
            arrival = min(arrival, depart_w + float(func.evaluate(depart_w)))
    if not math.isfinite(arrival):
        raise DisconnectedQueryError(source, target)
    cost = arrival - departure
    meeting = _best_meeting_vertex(meet, up_costs, arrivals, down_preds, target)
    hops: list[tuple[int, int, PiecewiseLinearFunction, float]] = []
    if record_hops:
        hops = _collect_hops(
            tree, source, target, departure, meeting, up_preds, down_preds
        )
    return EarliestArrivalResult(
        source, target, departure, cost, meeting, strategy, hops, tree
    )


def shortcut_profile_query(
    tree: TFPTreeDecomposition,
    shortcuts: dict[tuple[int, int], "object"],
    source: int,
    target: int,
    *,
    max_points: int | None = None,
) -> ProfileResult:
    """Algorithm 6 (profile flavour): cost-function query using selected shortcuts."""
    if source == target:
        return ProfileResult(source, target, PiecewiseLinearFunction.zero(), "full_shortcuts")
    _require_vertices(tree, source, target)

    cut = tree.vertex_cut(source, target)
    forward_hits: dict[int, PiecewiseLinearFunction] = {}
    backward_hits: dict[int, PiecewiseLinearFunction] = {}
    for w in cut:
        fwd = _forward_shortcut(shortcuts, source, w)
        if fwd is not None:
            forward_hits[w] = fwd
        bwd = _backward_shortcut(shortcuts, target, w)
        if bwd is not None:
            backward_hits[w] = bwd

    if len(forward_hits) == len(cut) and len(backward_hits) == len(cut):
        candidates = [
            compound(forward_hits[w], backward_hits[w], via=w) for w in cut
        ]
        profile = minimum_of(candidates)
        if max_points is not None:
            profile = simplify(profile, max_points=max_points)
        return ProfileResult(source, target, profile, "full_shortcuts")

    real_hits = any(w != source for w in forward_hits) or any(
        w != target for w in backward_hits
    )
    strategy = "partial_shortcuts" if real_hits else "basic"
    prune = _INF
    common = set(forward_hits) & set(backward_hits)
    if common:
        bound_func = minimum_of(
            [compound(forward_hits[w], backward_hits[w], via=w) for w in common]
        )
        prune = bound_func.max_cost

    forward_labels = _ascending_profiles(
        tree,
        source,
        forward=True,
        known=dict(forward_hits),
        skip=set(forward_hits),
        prune_above=prune,
        max_points=max_points,
    )
    backward_labels = _ascending_profiles(
        tree,
        target,
        forward=False,
        known=dict(backward_hits),
        skip=set(backward_hits),
        prune_above=prune,
        max_points=max_points,
    )
    candidates = []
    for w in _meeting_chain(tree, source, target, lca=cut[0]):
        to_w = forward_labels.get(w)
        from_w = backward_labels.get(w)
        if w == source:
            to_w = PiecewiseLinearFunction.zero()
        if w == target:
            from_w = PiecewiseLinearFunction.zero()
        if to_w is None or from_w is None:
            continue
        candidates.append(compound(to_w, from_w, via=w))
    if not candidates:
        raise DisconnectedQueryError(source, target)
    profile = minimum_of(candidates)
    if max_points is not None:
        profile = simplify(profile, max_points=max_points)
    return ProfileResult(source, target, profile, strategy)


def _require_vertices(tree: TFPTreeDecomposition, source: int, target: int) -> None:
    tree.node(source)
    tree.node(target)


# ----------------------------------------------------------------------
# Batched scalar queries (vectorized engine)
# ----------------------------------------------------------------------
@dataclass
class BatchQueryResult:
    """Answer of a batched travel-cost query (aligned arrays, one row per query)."""

    sources: np.ndarray
    targets: np.ndarray
    departures: np.ndarray
    costs: np.ndarray
    #: "shortcuts" when the index's selected shortcuts were consulted,
    #: "basic" for the pure tree traversal.
    strategy: str

    @property
    def arrivals(self) -> np.ndarray:
        """Arrival times at the targets."""
        return self.departures + self.costs

    def __len__(self) -> int:
        return int(self.costs.size)


def _group_indices(keys: np.ndarray) -> dict:
    """Map each distinct key to the (ordered) query indices carrying it."""
    groups: dict = {}
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    boundaries = np.nonzero(
        np.concatenate([[True], sorted_keys[1:] != sorted_keys[:-1]])
    )[0]
    for i, start in enumerate(boundaries):
        end = boundaries[i + 1] if i + 1 < boundaries.size else sorted_keys.size
        groups[int(sorted_keys[start])] = order[start:end]
    return groups


def _pair_groups(
    sources: np.ndarray, targets: np.ndarray, queries: np.ndarray
) -> list[tuple[int, int, np.ndarray]]:
    """Group the given query indices by their (source, target) pair.

    Returns ``(source, target, positions)`` triples where ``positions`` index
    into ``queries`` (not the original arrays), in stable order.
    """
    pair_key = sources[queries] * (int(targets.max()) + 1) + targets[queries]
    return [
        (int(sources[queries[cols[0]]]), int(targets[queries[cols[0]]]), cols)
        for cols in _group_indices(pair_key).values()
    ]


#: Trees up to this many nodes use the cached whole-tree sweep plan; larger
#: trees get a per-call plan restricted to the union of the batch's root
#: paths, keeping the sweep matrices at O(union x queries) instead of
#: O(num_tree_nodes x queries).
_GLOBAL_PLAN_MAX_ROWS = 4096

#: Upper bound on memoised per-OD-pair shortcut lookups (see ``_pair_info``).
_PAIR_CACHE_MAX_ENTRIES = 65_536


def _sweep_plan_for(
    tree: TFPTreeDecomposition, endpoints: np.ndarray, kind: str
) -> tuple[dict[int, int], tuple]:
    """Row map and relaxation steps for one direction of the batched sweep.

    Small trees reuse the cached whole-tree plan (off-chain rows are exact
    ``inf`` no-ops).  For large trees a compact plan over the union of the
    endpoints' root paths is built instead: the union is ancestor-closed, so
    every relaxation a query's chain performs stays inside it and the
    per-column results are unchanged.  The size check comes first so a large
    tree never pays for (or caches) the whole-tree plan.
    """
    if len(tree.nodes) <= _GLOBAL_PLAN_MAX_ROWS:
        row_of, asc_steps, desc_steps = tree.sweep_plan()
        return row_of, (asc_steps if kind == "asc" else desc_steps)
    union: set[int] = set()
    for vertex in endpoints:
        union.update(tree.root_path(int(vertex)))
    ordered = sorted(union, key=lambda u: -tree.nodes[u].height)
    rows = {u: i for i, u in enumerate(ordered)}
    steps = []
    for u in ordered:
        node = tree.nodes[u]
        if kind == "asc":
            if not node.ws:
                continue
            batch, uppers = tree.ws_batch(u)
        else:
            if not node.wd:
                continue
            batch, uppers = tree.wd_batch(u)
        upper_rows = np.fromiter((rows[w] for w in uppers), np.int64, len(uppers))
        steps.append((rows[u], uppers, batch, upper_rows))
    if kind == "desc":
        steps.reverse()  # increasing height: root side relaxes first
    return rows, tuple(steps)


def _ascend_sweep(
    asc_steps: tuple,
    departures: np.ndarray,
    mat: np.ndarray,
    *,
    bound: np.ndarray | None = None,
    skip_cols: dict[int, np.ndarray] | None = None,
) -> None:
    """Batched Algorithm 3 lines 1-9 over a whole column batch.

    ``mat`` is a ``(rows, Q)`` cost matrix (rows in the plan's order)
    pre-seeded with zeros at each column's source row (and any known shortcut
    seeds).  Every plan node relaxes once, deepest first; for a given column
    only the nodes on its source's root path carry finite state, so off-chain
    relaxations are ``inf`` no-ops and the per-column result equals the
    scalar sweep bit for bit.  ``bound`` prunes per column; ``skip_cols[v]``
    lists columns that must not be relaxed *into* vertex ``v`` (their value
    is a seeded exact cost, Algorithm 6 lines 4-6).
    """
    for row, uppers, batch, upper_rows in asc_steps:
        base = mat[row]
        if not np.isfinite(base).any():
            continue
        candidates = base[None, :] + evaluate_grid(batch, departures + base)
        if bound is not None:
            candidates = np.where(candidates > bound[None, :], np.inf, candidates)
        if skip_cols:
            for i, upper in enumerate(uppers):
                cols = skip_cols.get(upper)
                if cols is not None:
                    candidates[i, cols] = np.inf
        mat[upper_rows] = np.minimum(mat[upper_rows], candidates)


def _descend_sweep(
    desc_steps: tuple,
    mat: np.ndarray,
    *,
    bound_arrival: np.ndarray | None = None,
) -> None:
    """Batched descending relaxation over a whole column batch.

    ``mat`` is a ``(rows, Q)`` arrival matrix pre-seeded with each column's
    cut-vertex arrivals (``inf`` = no seed).  Nodes relax root side first; a
    node reads only its ``Wd`` uppers (all ancestors), so for any column the
    values read along its target's root path are exactly the scalar sweep's
    — state leaking onto off-chain rows is never read for that column's
    answer.
    """
    for row, _uppers, batch, upper_rows in desc_steps:
        t_mat = mat[upper_rows]
        usable = np.isfinite(t_mat)
        if bound_arrival is not None:
            usable &= t_mat <= bound_arrival[None, :]
        if not usable.any():
            continue
        candidates = np.where(usable, t_mat + evaluate_many(batch, t_mat), np.inf)
        mat[row] = np.minimum(mat[row], candidates.min(axis=0))


def _seed_descent(
    row_up: dict[int, int],
    row_down: dict[int, int],
    mat_up: np.ndarray,
    mat_down: np.ndarray,
    dep: np.ndarray,
    source: int,
    target: int,
    meet: tuple[int, ...],
    cols: np.ndarray,
) -> None:
    """Seed ``mat_down`` with one pair group's common-ancestor arrivals.

    Mirrors the scalar seeding exactly: seeds are ``departure + up_cost`` at
    every vertex of the meeting chain (``inf`` = unreachable = absent) and a
    query with no finite seed is disconnected.  The meeting chain lies on both
    endpoints' root paths, so it has rows in both maps; when the source itself
    is a common ancestor its up-cost is zero, which seeds its plain departure.
    """
    up_rows = np.fromiter((row_up[w] for w in meet), np.int64, len(meet))
    down_rows = np.fromiter((row_down[w] for w in meet), np.int64, len(meet))
    up = mat_up[np.ix_(up_rows, cols)]
    mat_down[np.ix_(down_rows, cols)] = dep[cols][None, :] + up
    if not np.isfinite(up).any(axis=0).all():
        raise DisconnectedQueryError(source, target)


def _batch_costs_basic(
    tree: TFPTreeDecomposition,
    sources: np.ndarray,
    targets: np.ndarray,
    departures: np.ndarray,
    out: np.ndarray,
    queries: np.ndarray,
) -> None:
    """Batched Algorithm 3: fill ``out[queries]`` with basic travel costs."""
    row_up, asc_steps = _sweep_plan_for(tree, sources[queries], "asc")
    row_down, desc_steps = _sweep_plan_for(tree, targets[queries], "desc")
    q = queries.size
    dep = departures[queries]
    cols_all = np.arange(q)
    src_rows = np.fromiter((row_up[int(v)] for v in sources[queries]), np.int64, q)
    tgt_rows = np.fromiter((row_down[int(v)] for v in targets[queries]), np.int64, q)

    mat_up = np.full((len(row_up), q), np.inf)
    mat_up[src_rows, cols_all] = 0.0
    _ascend_sweep(asc_steps, dep, mat_up)

    mat_down = np.full((len(row_down), q), np.inf)
    for source, target, cols in _pair_groups(sources, targets, queries):
        meet = _meeting_chain(tree, source, target)
        _seed_descent(
            row_up, row_down, mat_up, mat_down, dep, source, target, meet, cols
        )
    _descend_sweep(desc_steps, mat_down)

    arrival = mat_down[tgt_rows, cols_all]
    bad = ~np.isfinite(arrival)
    if bad.any():
        first = queries[np.nonzero(bad)[0][0]]
        raise DisconnectedQueryError(int(sources[first]), int(targets[first]))
    out[queries] = arrival - dep


def _pair_info(
    tree: TFPTreeDecomposition,
    shortcuts: dict[tuple[int, int], "object"],
    source: int,
    target: int,
    cache: dict | None,
):
    """Resolve (and memoise) one OD pair's cut, meeting chain and shortcut hits.

    Returns ``(meet, forward_hits, backward_hits, batches)`` where ``meet`` is
    the common-ancestor chain used to seed the sweep regimes and ``batches``
    is the packed ``(forward, backward)`` :class:`PLFBatch` pair when *every*
    needed shortcut is selected (Algorithm 6 case 1) and ``None`` otherwise.
    """
    cached = cache.get((source, target)) if cache is not None else None
    if cached is None:
        if cache is not None and len(cache) >= _PAIR_CACHE_MAX_ENTRIES:
            # Bound the per-pair memo: a long-running server touching ever
            # new OD pairs must not grow the index footprint without limit.
            cache.clear()
        cut = tree.vertex_cut(source, target)
        meet = _meeting_chain(tree, source, target, lca=cut[0])
        forward_hits: dict[int, PiecewiseLinearFunction] = {}
        backward_hits: dict[int, PiecewiseLinearFunction] = {}
        for w in cut:
            fwd = _forward_shortcut(shortcuts, source, w)
            if fwd is not None:
                forward_hits[w] = fwd
            bwd = _backward_shortcut(shortcuts, target, w)
            if bwd is not None:
                backward_hits[w] = bwd
        if len(forward_hits) == len(cut) and len(backward_hits) == len(cut):
            batches = (
                PLFBatch.from_functions([forward_hits[w] for w in cut]),
                PLFBatch.from_functions([backward_hits[w] for w in cut]),
            )
        else:
            batches = None
        cached = (meet, forward_hits, backward_hits, batches)
        if cache is not None:
            cache[(source, target)] = cached
    return cached


def _batch_costs_full(
    batches: tuple[PLFBatch, PLFBatch],
    source: int,
    target: int,
    departures: np.ndarray,
) -> np.ndarray:
    """Algorithm 6 case 1 for one pair: two kernel passes over the cut."""
    forward_batch, backward_batch = batches
    first = evaluate_grid(forward_batch, departures)
    second = evaluate_many(backward_batch, departures[None, :] + first)
    best = (first + second).min(axis=0)
    if not np.isfinite(best).all():
        raise DisconnectedQueryError(source, target)
    return best


def _batch_costs_partial(
    tree: TFPTreeDecomposition,
    groups: list[tuple[int, int, np.ndarray, tuple, dict, dict]],
    departures: np.ndarray,
    out: np.ndarray,
) -> None:
    """Batched Algorithm 6 cases 2/3 for all partially-covered pairs at once.

    Every group's available shortcuts seed the ascending sweep (exact costs,
    skipped from further relaxation) and bound the traversal per column; the
    shared sweeps then run once for all groups together.
    """
    all_q = np.concatenate([g[2] for g in groups])
    group_sources = np.array([g[0] for g in groups], dtype=np.int64)
    group_targets = np.array([g[1] for g in groups], dtype=np.int64)
    row_up, asc_steps = _sweep_plan_for(tree, group_sources, "asc")
    row_down, desc_steps = _sweep_plan_for(tree, group_targets, "desc")
    q = all_q.size
    dep = departures[all_q]
    cols_all = np.arange(q)

    mat_up = np.full((len(row_up), q), np.inf)
    upper_bound = np.full(q, np.inf)
    skip_lists: dict[int, list[np.ndarray]] = {}
    offset = 0
    col_slices = []
    for source, target, qidx, meet, forward_hits, backward_hits in groups:
        cols = cols_all[offset : offset + qidx.size]
        col_slices.append(cols)
        offset += qidx.size
        dep_cols = dep[cols]
        mat_up[row_up[source], cols] = 0.0
        forward_values: dict[int, np.ndarray] = {}
        for w, func in forward_hits.items():
            values = np.asarray(func.evaluate(dep_cols), dtype=np.float64)
            forward_values[w] = values
            mat_up[row_up[w], cols] = values
            skip_lists.setdefault(w, []).append(cols)
        for w in set(forward_hits) & set(backward_hits):
            first = forward_values[w]
            second = np.asarray(
                backward_hits[w].evaluate(dep_cols + first), dtype=np.float64
            )
            upper_bound[cols] = np.minimum(upper_bound[cols], first + second)
    skip_cols = {
        w: parts[0] if len(parts) == 1 else np.concatenate(parts)
        for w, parts in skip_lists.items()
    }
    _ascend_sweep(asc_steps, dep, mat_up, bound=upper_bound, skip_cols=skip_cols)

    mat_down = np.full((len(row_down), q), np.inf)
    for (source, target, qidx, meet, _fwd, _bwd), cols in zip(groups, col_slices):
        _seed_descent(
            row_up, row_down, mat_up, mat_down, dep, source, target, meet, cols
        )
    bound_arrival = np.where(np.isfinite(upper_bound), dep + upper_bound, np.inf)
    _descend_sweep(desc_steps, mat_down, bound_arrival=bound_arrival)

    for (source, target, qidx, _meet, _fwd, backward_hits), cols in zip(
        groups, col_slices
    ):
        arrival = mat_down[row_down[target], cols]
        dep_cols = dep[cols]
        # The backward shortcuts give additional candidate answers.
        for w, func in backward_hits.items():
            w_cost = mat_up[row_up[w], cols]
            depart_w = dep_cols + w_cost
            arrival = np.minimum(
                arrival,
                depart_w + np.asarray(func.evaluate(depart_w), dtype=np.float64),
            )
        if not np.isfinite(arrival).all():
            raise DisconnectedQueryError(source, target)
        out[qidx] = arrival - dep_cols


def batch_cost_query(
    tree: TFPTreeDecomposition,
    sources,
    targets,
    departures,
    *,
    shortcuts: dict[tuple[int, int], "object"] | None = None,
    cache: dict | None = None,
) -> BatchQueryResult:
    """Answer many scalar travel-cost queries in one vectorized pass.

    Parameters
    ----------
    tree:
        The TFP tree decomposition.
    sources, targets, departures:
        Aligned arrays describing one query per row.
    shortcuts:
        Selected shortcut pairs (Algorithm 6).  ``None`` or empty runs the
        basic traversal (Algorithm 3) for every query.
    cache:
        Optional dict memoising per-pair shortcut lookups across calls (the
        index owns it and clears it when shortcuts change).

    Returns
    -------
    BatchQueryResult
        Costs aligned with the inputs, bit-identical to running the scalar
        query functions in a loop (same interpolation kernel, same relaxation
        order per query).  Disconnected queries raise
        :class:`~repro.exceptions.DisconnectedQueryError` just like the
        scalar functions do.
    """
    sources = np.atleast_1d(np.asarray(sources, dtype=np.int64))
    targets = np.atleast_1d(np.asarray(targets, dtype=np.int64))
    departures = np.atleast_1d(np.asarray(departures, dtype=np.float64))
    if not (sources.size == targets.size == departures.size):
        raise ReproError(
            "batch_cost_query needs aligned sources/targets/departures arrays"
        )
    for vertex in np.unique(np.concatenate([sources, targets])):
        tree.node(int(vertex))

    costs = np.zeros(sources.size)
    queries = np.nonzero(sources != targets)[0]
    if not queries.size:
        strategy = "shortcuts" if shortcuts else "basic"
        return BatchQueryResult(sources, targets, departures, costs, strategy)
    if shortcuts:
        partial_groups = []
        for source, target, local in _pair_groups(sources, targets, queries):
            qidx = queries[local]
            meet, forward_hits, backward_hits, batches = _pair_info(
                tree, shortcuts, source, target, cache
            )
            if batches is not None:
                costs[qidx] = _batch_costs_full(
                    batches, source, target, departures[qidx]
                )
            else:
                partial_groups.append(
                    (source, target, qidx, meet, forward_hits, backward_hits)
                )
        if partial_groups:
            _batch_costs_partial(tree, partial_groups, departures, costs)
        strategy = "shortcuts"
    else:
        _batch_costs_basic(tree, sources, targets, departures, costs, queries)
        strategy = "basic"
    return BatchQueryResult(sources, targets, departures, costs, strategy)
