"""The public index facade: :class:`TDTreeIndex`.

A :class:`TDTreeIndex` bundles the TFP tree decomposition, the (optionally
selected) shortcuts and the query algorithms behind one object with four
construction strategies that map one-to-one onto the algorithms compared in
the paper's evaluation:

========== ==================================================================
strategy    meaning
========== ==================================================================
``basic``   tree decomposition only, no shortcuts (``TD-basic``)
``dp``      shortcuts chosen by the exact DP selection (``TD-dp``)
``approx``  shortcuts chosen by the 0.5-approximation (``TD-appro``)
``full``    every candidate shortcut materialised (``TD-H2H``)
========== ==================================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import IndexBuildError, IndexNotBuiltError, SelectionError
from repro.functions.piecewise import PiecewiseLinearFunction
from repro.graph.td_graph import TDGraph
from repro.graph.validation import validate_graph
from repro.obs.metrics import Gauge, get_registry
from repro.utils.deprecation import warn_deprecated
from repro.utils.memory import DEFAULT_MEMORY_MODEL, MemoryBreakdown, MemoryModel
from repro.utils.timing import Timer
from repro.core.query import (
    BatchQueryResult,
    EarliestArrivalResult,
    ProfileResult,
    basic_cost_query,
    basic_profile_query,
    batch_cost_query,
    shortcut_cost_query,
    shortcut_profile_query,
)
from repro.core.selection import (
    SelectionResult,
    budget_from_fraction,
    select_all,
    select_dp,
    select_greedy,
    select_none,
)
from repro.core.shortcuts import ShortcutCatalog, ShortcutPair, build_shortcut_catalog
from repro.core.tree_decomposition import TFPTreeDecomposition, decompose

__all__ = ["TDTreeIndex", "IndexStatistics", "BUILD_STRATEGIES"]

#: Valid values of the ``strategy`` build parameter.
BUILD_STRATEGIES = ("basic", "dp", "approx", "full")


def _phase_seconds(timer: Timer, tree: TFPTreeDecomposition) -> dict[str, float]:
    """Timer phases plus the elimination engine's sub-phase breakdown.

    Sub-phase keys use a ``decomposition/...`` prefix; they detail where the
    decomposition phase went (structural round assembly vs batch kernels) and
    are excluded from :attr:`IndexStatistics.total_build_seconds`.
    """
    seconds = timer.as_dict()
    stats = getattr(tree, "elimination_stats", None)
    if stats is not None:
        seconds["decomposition/assembly"] = stats.assembly_seconds
        seconds["decomposition/kernels"] = stats.kernel_seconds
    return seconds


def _publish_build_metrics(index: "TDTreeIndex") -> None:
    """Publish one build's telemetry into the process metrics registry.

    Builds and serving share one vocabulary (see :mod:`repro.obs`): phase
    timings land as ``repro_build_phase_seconds{phase,strategy}`` gauges,
    the analytic footprint as ``repro_build_index_bytes`` /
    ``repro_build_bytes_per_vertex``, and the batched elimination engine's
    working-pool high-water marks as ``repro_build_pool_*``.  Gauges are
    last-build-wins per strategy label — the registry reports the most
    recent build, :class:`IndexStatistics` the specific one.
    """
    registry = get_registry()
    strategy = index.strategy
    phase_gauge = registry.gauge(
        "repro_build_phase_seconds",
        "Wall-clock seconds per index build phase (last build wins).",
        ("phase", "strategy"),
    )
    total = 0.0
    for phase, seconds in index._build_seconds.items():
        phase_gauge.set(seconds, phase=phase, strategy=strategy)
        if "/" not in phase:
            total += seconds
    registry.gauge(
        "repro_build_seconds",
        "Total wall-clock seconds of the last index build.",
        ("strategy",),
    ).set(total, strategy=strategy)
    breakdown = index.memory_breakdown()
    registry.gauge(
        "repro_build_index_bytes",
        "Analytic memory footprint of the last built index.",
        ("strategy",),
    ).set(float(breakdown.total_bytes), strategy=strategy)
    registry.gauge(
        "repro_build_bytes_per_vertex",
        "Analytic index bytes per graph vertex for the last build.",
        ("strategy",),
    ).set(breakdown.total_bytes / max(index.graph.num_vertices, 1), strategy=strategy)
    stats = getattr(index.tree, "elimination_stats", None)
    if stats is not None:
        registry.gauge(
            "repro_build_pool_functions",
            "Functions stored in the elimination working pool "
            "(original edges plus fill results).",
            ("strategy",),
        ).set(float(stats.pool_functions), strategy=strategy)
        registry.gauge(
            "repro_build_pool_peak_chunks",
            "High-water mark of live elimination-pool chunks before "
            "compaction.",
            ("strategy",),
        ).set(float(stats.pool_peak_chunks), strategy=strategy)


@dataclass
class IndexStatistics:
    """Summary of a built index (used by the experiment tables)."""

    strategy: str
    num_vertices: int
    num_edges: int
    treewidth: int
    treeheight: int
    num_candidate_pairs: int
    num_selected_pairs: int
    selected_weight: int
    budget: int | None
    #: Per-phase wall-clock seconds.  Keys containing ``/`` are sub-phase
    #: breakdowns (e.g. ``decomposition/kernels`` inside ``decomposition``)
    #: and are excluded from :attr:`total_build_seconds` to avoid double
    #: counting.  The same numbers are published to the :mod:`repro.obs`
    #: metrics registry as ``repro_build_phase_seconds{phase,strategy}``.
    phase_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def build_seconds(self) -> dict[str, float]:
        """Deprecated alias for :attr:`phase_seconds`.

        Reads the ``repro_build_phase_seconds`` gauges back from the process
        metrics registry (which the build published into); falls back to the
        locally captured :attr:`phase_seconds` when the registry holds no
        samples for this strategy (e.g. a test swapped in a fresh registry).
        Registry gauges are last-build-wins per strategy — new code should
        read :attr:`phase_seconds` for *this* build's timings.
        """
        warn_deprecated(
            "IndexStatistics.build_seconds",
            "IndexStatistics.build_seconds is deprecated; read phase_seconds "
            "(or the repro_build_phase_seconds gauges exported by repro.obs) "
            "instead",
        )
        gauge = get_registry().get("repro_build_phase_seconds")
        if isinstance(gauge, Gauge) and gauge.labelnames == ("phase", "strategy"):
            published = {
                key[0]: value
                for key, value in gauge.items()
                if key[1] == self.strategy
            }
            if published:
                return published
        return dict(self.phase_seconds)

    @property
    def total_build_seconds(self) -> float:
        return sum(v for k, v in self.phase_seconds.items() if "/" not in k)


class TDTreeIndex:
    """Time-dependent shortest-path index with selected shortcuts.

    Use :meth:`build` to construct an index; the constructor itself only wires
    pre-built components together (which is what the update machinery and the
    tests use).

    Examples
    --------
    >>> from repro import TDTreeIndex
    >>> from repro.graph import grid_network
    >>> graph = grid_network(4, 4, seed=7)
    >>> index = TDTreeIndex.build(graph, strategy="approx", budget_fraction=0.4)
    >>> result = index.query(0, 15, departure=8 * 3600)
    >>> result.cost > 0
    True
    """

    def __init__(
        self,
        graph: TDGraph,
        tree: TFPTreeDecomposition,
        shortcuts: dict[tuple[int, int], ShortcutPair],
        *,
        strategy: str,
        selection: SelectionResult,
        catalog_size: int,
        build_seconds: dict[str, float] | None = None,
        max_points: int | None = 32,
        tolerance: float = 0.0,
    ) -> None:
        self.graph = graph
        self.tree = tree
        self.shortcuts = shortcuts
        self.strategy = strategy
        self.selection = selection
        self.max_points = max_points
        self.tolerance = tolerance
        self._catalog_size = catalog_size
        self._build_seconds = dict(build_seconds or {})
        #: Per-OD-pair memo of the batch query engine; cleared on updates.
        self._batch_query_cache: dict = {}
        #: Callbacks fired after the update machinery rewrote labels or
        #: shortcuts (serving layers register their cache invalidation here).
        self._invalidation_hooks: list = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: TDGraph,
        *,
        strategy: str = "approx",
        budget: int | None = None,
        budget_fraction: float | None = None,
        max_points: int | None = 32,
        tolerance: float = 0.0,
        validate: bool = True,
        use_batch_kernels: bool = True,
    ) -> "TDTreeIndex":
        """Deprecated string-dispatch builder; use :func:`repro.api.create_engine`.

        ``TDTreeIndex.build(graph, strategy="approx", ...)`` is the pre-
        ``repro.api`` entry point.  It keeps working unchanged (delegating to
        the same internal builder the registry engines use) but emits one
        :class:`DeprecationWarning` per process; new code should build
        engines through the registry::

            engine = repro.api.create_engine("td-appro?budget_fraction=0.3", graph)
        """
        warn_deprecated(
            "TDTreeIndex.build",
            "TDTreeIndex.build(strategy=...) is deprecated; build engines "
            'via repro.api.create_engine("td-appro", graph) instead',
        )
        return cls._build(
            graph,
            strategy=strategy,
            budget=budget,
            budget_fraction=budget_fraction,
            max_points=max_points,
            tolerance=tolerance,
            validate=validate,
            use_batch_kernels=use_batch_kernels,
        )

    @classmethod
    def _build(
        cls,
        graph: TDGraph,
        *,
        strategy: str = "approx",
        budget: int | None = None,
        budget_fraction: float | None = None,
        max_points: int | None = 32,
        tolerance: float = 0.0,
        validate: bool = True,
        use_batch_kernels: bool = True,
    ) -> "TDTreeIndex":
        """Build an index over ``graph``.

        Parameters
        ----------
        graph:
            The time-dependent road network.
        strategy:
            One of :data:`BUILD_STRATEGIES`; see the module docstring.
        budget:
            Memory budget ``N`` in interpolation points for the ``dp`` and
            ``approx`` strategies.  Ignored by ``basic`` and ``full``.
        budget_fraction:
            Alternative way to state the budget as a fraction of the total
            candidate-shortcut weight (used by the scaled datasets).  Exactly
            one of ``budget``/``budget_fraction`` may be given; when neither is
            given a default fraction of 0.3 is used.
        max_points:
            Cap on interpolation points per stored function; ``None`` keeps
            everything exact (slower, larger, but useful for verification).
        tolerance:
            Vertical tolerance of the lossless simplification.
        validate:
            Run :func:`repro.graph.validate_graph` first and raise on FIFO or
            connectivity violations.
        use_batch_kernels:
            Build both the decomposition and the shortcut catalog with the
            vectorized batch kernels (the default).  ``False`` selects the
            scalar reference paths; the resulting index is bit-identical, so
            the flag exists for equivalence tests and benchmarks.
        """
        if strategy not in BUILD_STRATEGIES:
            raise IndexBuildError(
                f"unknown strategy {strategy!r}; expected one of {BUILD_STRATEGIES}"
            )
        if budget is not None and budget_fraction is not None:
            raise SelectionError("give either budget or budget_fraction, not both")
        if validate:
            validate_graph(graph).raise_if_invalid()

        timer = Timer()
        with timer.measure("decomposition"):
            tree = decompose(
                graph,
                max_points=max_points,
                tolerance=tolerance,
                use_batch_kernels=use_batch_kernels,
            )

        if strategy == "basic":
            selection = select_none(ShortcutCatalog({}))
            index = cls(
                graph,
                tree,
                {},
                strategy=strategy,
                selection=selection,
                catalog_size=0,
                build_seconds=_phase_seconds(timer, tree),
                max_points=max_points,
                tolerance=tolerance,
            )
            _publish_build_metrics(index)
            return index

        with timer.measure("shortcut_candidates"):
            catalog = build_shortcut_catalog(
                tree,
                max_points=max_points,
                tolerance=tolerance,
                compute_utilities=strategy in ("dp", "approx"),
                use_batch_kernels=use_batch_kernels,
            )

        with timer.measure("selection"):
            if strategy == "full":
                selection = select_all(catalog)
            else:
                if budget is None:
                    fraction = 0.3 if budget_fraction is None else budget_fraction
                    budget = budget_from_fraction(catalog, fraction)
                if strategy == "dp":
                    selection = select_dp(catalog, budget)
                else:
                    selection = select_greedy(catalog, budget)

        with timer.measure("materialisation"):
            shortcuts = {
                key: catalog.pairs[key] for key in selection.selected
            }

        index = cls(
            graph,
            tree,
            shortcuts,
            strategy=strategy,
            selection=selection,
            catalog_size=len(catalog),
            build_seconds=_phase_seconds(timer, tree),
            max_points=max_points,
            tolerance=tolerance,
        )
        _publish_build_metrics(index)
        return index

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(
        self,
        source: int,
        target: int,
        departure: float,
        *,
        need_path: bool = False,
    ) -> EarliestArrivalResult:
        """Deprecated scalar query entry point; use a :mod:`repro.api` engine.

        Behaves exactly like before (and keeps doing so), emitting one
        :class:`DeprecationWarning` per process.  New code::

            route = engine.query(source, target, departure)
        """
        warn_deprecated(
            "TDTreeIndex.query",
            "TDTreeIndex.query is deprecated; query through a repro.api "
            "engine (create_engine(...).query(...)) instead",
        )
        return self._query(source, target, departure, need_path=need_path)

    def _query(
        self,
        source: int,
        target: int,
        departure: float,
        *,
        need_path: bool = False,
    ) -> EarliestArrivalResult:
        """Travel cost query: minimum cost from ``source`` at ``departure``.

        With ``need_path=True`` the result records enough provenance to expand
        the answer into original road segments via
        :meth:`EarliestArrivalResult.path` (slightly slower, because answers
        served purely from shortcuts re-run the tree traversal to obtain hops).
        """
        self._check_built()
        if self.shortcuts:
            result = shortcut_cost_query(
                self.tree,
                self.shortcuts,
                source,
                target,
                departure,
                record_hops=need_path,
            )
            if need_path and not result.hops and source != target:
                return basic_cost_query(
                    self.tree, source, target, departure, record_hops=True
                )
            return result
        return basic_cost_query(
            self.tree, source, target, departure, record_hops=need_path
        )

    def batch_query(self, sources, targets, departures) -> BatchQueryResult:
        """Deprecated batch entry point; use ``engine.batch_query`` instead.

        Behaves exactly like before, emitting one :class:`DeprecationWarning`
        per process.
        """
        warn_deprecated(
            "TDTreeIndex.batch_query",
            "TDTreeIndex.batch_query is deprecated; use a repro.api engine's "
            "batch_query (returns a RouteMatrix with lazy paths) instead",
        )
        return self._batch_query(sources, targets, departures)

    def _batch_query(self, sources, targets, departures) -> BatchQueryResult:
        """Answer many scalar travel-cost queries in one vectorized pass.

        ``sources``/``targets``/``departures`` are aligned arrays (one query
        per row).  The costs are bit-identical to calling :meth:`query` in a
        loop — the batch engine only amortises the per-function Python
        overhead of the tree sweeps — which makes this the right entry point
        for serving batched query traffic and for the throughput benchmarks.
        """
        self._check_built()
        return batch_cost_query(
            self.tree,
            sources,
            targets,
            departures,
            shortcuts=self.shortcuts if self.shortcuts else None,
            cache=self._batch_query_cache,
        )

    def profile(self, source: int, target: int) -> ProfileResult:
        """Deprecated profile entry point; use ``engine.profile`` instead.

        Behaves exactly like before, emitting one :class:`DeprecationWarning`
        per process.
        """
        warn_deprecated(
            "TDTreeIndex.profile",
            "TDTreeIndex.profile is deprecated; use a repro.api engine's "
            "profile (returns a RouteProfile) instead",
        )
        return self._profile(source, target)

    def _profile(self, source: int, target: int) -> ProfileResult:
        """Shortest travel cost function query: the whole profile ``f_{s,d}(t)``."""
        self._check_built()
        if self.shortcuts:
            return shortcut_profile_query(
                self.tree, self.shortcuts, source, target, max_points=self.max_points
            )
        return basic_profile_query(
            self.tree, source, target, max_points=self.max_points
        )

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def update_edge(
        self, source: int, target: int, weight: PiecewiseLinearFunction
    ):
        """Update a single edge weight; see :func:`repro.core.update.apply_edge_updates`."""
        from repro.core.update import apply_edge_updates

        return apply_edge_updates(self, {(source, target): weight})

    def update_edges(self, changes: dict[tuple[int, int], PiecewiseLinearFunction]):
        """Update several edge weights at once (Fig. 10 experiment)."""
        from repro.core.update import apply_edge_updates

        return apply_edge_updates(self, changes)

    def register_invalidation_hook(self, hook) -> None:
        """Register ``hook()`` to run whenever an update changes query answers.

        The update machinery (:func:`repro.core.update.apply_edge_updates`)
        fires every registered hook after it repaired labels and shortcuts;
        serving layers use this to drop memoised query results
        (:class:`repro.serving.QueryService` wires its result cache in here).
        """
        if not callable(hook):
            raise TypeError("invalidation hooks must be callable")
        self._invalidation_hooks.append(hook)

    def unregister_invalidation_hook(self, hook) -> None:
        """Remove a previously registered hook (no-op when absent)."""
        try:
            self._invalidation_hooks.remove(hook)
        except ValueError:
            pass

    def notify_invalidation(self) -> None:
        """Fire every registered invalidation hook (called by the update path)."""
        for hook in list(self._invalidation_hooks):
            hook()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path, *, engine_spec: "str | None" = None) -> "str":
        """Snapshot the built index to the directory ``path``.

        See :mod:`repro.persistence.snapshot` for the format (``.npz`` buffers
        plus a versioned JSON manifest).  ``engine_spec`` optionally records
        the registry spec the index realises, making the snapshot servable
        via ``create_engine("snapshot:<path>")`` under its original engine
        name.  Returns the directory path.
        """
        from repro.persistence import save_index

        self._check_built()
        return str(save_index(self, path, engine_spec=engine_spec))

    @classmethod
    def load(cls, path, *, mmap_mode: "str | None" = None) -> "TDTreeIndex":
        """Load a snapshot written by :meth:`save`.

        The loaded index is bit-identical to the saved one for every query
        flavour, and loading skips decomposition/selection entirely — one to
        two orders of magnitude cheaper than :meth:`build`.

        ``mmap_mode="r"`` (or ``"c"`` for copy-on-write) memory-maps the
        snapshot's array buffers instead of copying them onto the heap, so
        concurrent processes loading the same snapshot share one physical
        copy of the PLF payload via the page cache — see
        :func:`repro.persistence.load_index`.
        """
        from repro.persistence import load_index

        return load_index(path, mmap_mode=mmap_mode)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def memory_breakdown(self, model: MemoryModel = DEFAULT_MEMORY_MODEL) -> MemoryBreakdown:
        """Analytic memory footprint of the index (labels + shortcuts + structure)."""
        self._check_built()
        shortcut_points = sum(pair.weight for pair in self.shortcuts.values())
        return MemoryBreakdown(
            label_points=self.tree.label_point_count(),
            label_functions=self.tree.label_function_count(),
            shortcut_points=shortcut_points,
            shortcut_functions=2 * len(self.shortcuts),
            structure_nodes=self.tree.num_nodes,
            model=model,
        )

    def statistics(self) -> IndexStatistics:
        """Index statistics for the experiment tables."""
        self._check_built()
        return IndexStatistics(
            strategy=self.strategy,
            num_vertices=self.graph.num_vertices,
            num_edges=self.graph.num_edges,
            treewidth=self.tree.treewidth,
            treeheight=self.tree.treeheight,
            num_candidate_pairs=self._catalog_size,
            num_selected_pairs=len(self.shortcuts),
            selected_weight=sum(pair.weight for pair in self.shortcuts.values()),
            budget=self.selection.budget,
            phase_seconds=dict(self._build_seconds),
        )

    def _check_built(self) -> None:
        if self.tree is None:  # pragma: no cover - defensive
            raise IndexNotBuiltError("the index has not been built")

    def __repr__(self) -> str:
        return (
            f"TDTreeIndex(strategy={self.strategy!r}, vertices={self.graph.num_vertices}, "
            f"shortcut_pairs={len(self.shortcuts)})"
        )
