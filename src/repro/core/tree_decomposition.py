"""Travel-Function-Preserved (TFP) tree decomposition (Algorithms 1 and 2).

The decomposition eliminates vertices in minimum-degree order.  Eliminating a
vertex ``v`` (the *reduction operator* ``G ⊖ v``, Algorithm 1) connects every
pair of its remaining neighbours with a reduced edge whose weight function is
the ``Compound`` of the two incident functions (or the ``minimum`` with an
already existing edge), so the reduced graph is a TFP-graph of the original:
shortest travel-cost functions between the remaining vertices are preserved.

Each eliminated vertex becomes a tree node ``X(v)`` that stores

* its *bag* — the neighbours it had at elimination time (all of which are
  ancestors of ``X(v)`` in the final tree, Property 2),
* ``Ws`` — the working weight functions from ``v`` to each bag vertex, and
* ``Wd`` — the working weight functions from each bag vertex to ``v``.

The tree is assembled by parenting ``X(v)`` to the bag vertex with the
smallest elimination order (Algorithm 2, lines 10-13).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import (
    DisconnectedQueryError,
    GraphError,
    ReproError,
    VertexNotFoundError,
)
from repro.core.elimination import eliminate_batched, eliminate_scalar
from repro.functions.batch import PLFBatch
from repro.functions.piecewise import PiecewiseLinearFunction
from repro.graph.td_graph import TDGraph
from repro.utils.lca import LCAIndex

__all__ = ["TreeNode", "TFPTreeDecomposition", "decompose"]


@dataclass
class TreeNode:
    """One node ``X(v)`` of the TFP tree decomposition.

    Attributes
    ----------
    vertex:
        The vertex ``v`` this node was created for (one node per vertex).
    bag:
        ``X(v) \\ {v}`` — the neighbours of ``v`` at elimination time, sorted by
        elimination order (all are ancestors of this node, Property 2).
    ws:
        ``X(v).Ws``: weight function from ``v`` to each bag vertex.
    wd:
        ``X(v).Wd``: weight function from each bag vertex to ``v``.
    parent:
        Vertex of the parent tree node (``None`` for a root).
    children:
        Vertices of the child tree nodes.
    order:
        Elimination order ``π(v)`` (0-based; smaller = eliminated earlier).
    height:
        Distance from the root plus one (the root has height 1, as in the
        paper's Example 3.2).
    """

    vertex: int
    bag: tuple[int, ...]
    ws: dict[int, PiecewiseLinearFunction]
    wd: dict[int, PiecewiseLinearFunction]
    parent: int | None = None
    children: list[int] = field(default_factory=list)
    order: int = 0
    height: int = 0

    @property
    def bag_size(self) -> int:
        """``|X(v)|`` — bag vertices plus ``v`` itself."""
        return len(self.bag) + 1


class TFPTreeDecomposition:
    """The tree decomposition of a time-dependent graph, with cost metadata.

    Use :func:`decompose` (or :meth:`TFPTreeDecomposition.build`) to construct
    one; the constructor only wires the pieces together.
    """

    def __init__(self, nodes: dict[int, TreeNode], roots: list[int]) -> None:
        if not nodes:
            raise GraphError("cannot build a tree decomposition of an empty graph")
        self.nodes = nodes
        self.roots = roots
        self._lca = LCAIndex({v: node.parent for v, node in nodes.items()})
        self._compute_heights()
        self._subtree_sizes = self._compute_subtree_sizes()
        self._ancestor_cache: dict[int, tuple[int, ...]] = {}
        #: Per-node packed label batches used by the batched query engine
        #: (built lazily, invalidated when the update machinery rewrites labels).
        self._ws_batch_cache: dict[int, tuple[PLFBatch, tuple[int, ...]]] = {}
        self._wd_batch_cache: dict[int, tuple[PLFBatch, tuple[int, ...]]] = {}
        #: Monotone counter bumped whenever labels change; cached sweep plans
        #: carry the version they were built against.
        self._label_version = 0
        self._sweep_plan_cache: tuple[int, tuple] | None = None
        #: Per-ordered-pair contributor table used by the update machinery
        #: (structure-only, so weight updates never stale it; built lazily).
        self._pair_contributors_cache: dict[tuple[int, int], list[int]] | None = None
        #: Counters/timings of the elimination engine that built this tree
        #: (``None`` for trees assembled from snapshots or by hand).
        self.elimination_stats = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: TDGraph,
        *,
        max_points: int | None = 32,
        tolerance: float = 0.0,
        use_batch_kernels: bool = True,
    ) -> "TFPTreeDecomposition":
        """Run the TFP tree decomposition (Algorithm 2) on ``graph``."""
        return decompose(
            graph,
            max_points=max_points,
            tolerance=tolerance,
            use_batch_kernels=use_batch_kernels,
        )

    def _compute_heights(self) -> None:
        for root in self.roots:
            stack = [(root, 1)]
            while stack:
                vertex, height = stack.pop()
                node = self.nodes[vertex]
                node.height = height
                for child in node.children:
                    stack.append((child, height + 1))

    def _compute_subtree_sizes(self) -> dict[int, int]:
        sizes = {v: 1 for v in self.nodes}
        # Accumulate bottom-up: children have larger height than parents, so a
        # single pass over vertices sorted by decreasing height suffices.
        for vertex in sorted(self.nodes, key=lambda v: -self.nodes[v].height):
            parent = self.nodes[vertex].parent
            if parent is not None:
                sizes[parent] += sizes[vertex]
        return sizes

    # ------------------------------------------------------------------
    # Tree statistics (Definition 4)
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of tree nodes (= number of graph vertices)."""
        return len(self.nodes)

    @property
    def treewidth(self) -> int:
        """``w(T_G)``: the maximum bag size minus one."""
        return max(node.bag_size for node in self.nodes.values()) - 1

    @property
    def treeheight(self) -> int:
        """``h(T_G)``: the maximum node height (root has height 1)."""
        return max(node.height for node in self.nodes.values())

    def height(self, vertex: int) -> int:
        """Height of the tree node of ``vertex``."""
        return self._node(vertex).height

    def subtree_size(self, vertex: int) -> int:
        """Number of tree nodes in the subtree rooted at ``X(vertex)``."""
        return self._subtree_sizes[vertex]

    # ------------------------------------------------------------------
    # Navigation
    # ------------------------------------------------------------------
    def _node(self, vertex: int) -> TreeNode:
        try:
            return self.nodes[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def node(self, vertex: int) -> TreeNode:
        """Return the tree node ``X(vertex)``."""
        return self._node(vertex)

    def parent(self, vertex: int) -> int | None:
        """Vertex of the parent node of ``X(vertex)``."""
        return self._node(vertex).parent

    def ancestors(self, vertex: int) -> tuple[int, ...]:
        """``Anc(X(v))``: ancestor vertices ordered by increasing height (root first)."""
        cached = self._ancestor_cache.get(vertex)
        if cached is not None:
            return cached
        chain: list[int] = []
        current = self._node(vertex).parent
        while current is not None:
            chain.append(current)
            current = self.nodes[current].parent
        result = tuple(reversed(chain))
        self._ancestor_cache[vertex] = result
        return result

    def root_path(self, vertex: int) -> tuple[int, ...]:
        """``vertex`` followed by its ancestors from deepest to the root."""
        return (vertex,) + tuple(reversed(self.ancestors(vertex)))

    def lca(self, first: int, second: int) -> int:
        """Vertex of the lowest common ancestor node of ``X(first)`` and ``X(second)``.

        Raises :class:`~repro.exceptions.DisconnectedQueryError` when the two
        vertices live in different trees of the decomposition forest (which
        happens exactly when the underlying graph is disconnected).
        """
        if first == second:
            return first
        try:
            return self._lca.lca(first, second)
        except ReproError as exc:
            raise DisconnectedQueryError(first, second) from exc

    def is_ancestor(self, ancestor: int, descendant: int) -> bool:
        """Whether ``X(ancestor)`` is an ancestor of (or equal to) ``X(descendant)``."""
        if ancestor == descendant:
            return True
        return self._lca.is_ancestor(ancestor, descendant)

    def vertex_cut(self, source: int, target: int) -> tuple[int, ...]:
        """The vertex cut between ``source`` and ``target`` (Property 1).

        This is the bag of the LCA node plus the LCA vertex itself.  The LCA
        vertex is always the **first** element — callers that also need the
        common-ancestor chain derive it from ``cut[0]`` without a second LCA
        resolution.
        """
        lca_vertex = self.lca(source, target)
        node = self.nodes[lca_vertex]
        cut = [lca_vertex, *node.bag]
        return tuple(dict.fromkeys(cut))

    def child_towards(self, ancestor: int, descendant: int) -> int:
        """The child of ``X(ancestor)`` lying on the path to ``X(descendant)``."""
        if ancestor == descendant:
            raise GraphError("descendant must differ from ancestor")
        current = descendant
        while True:
            parent = self.nodes[current].parent
            if parent is None:
                raise GraphError(
                    f"{ancestor} is not an ancestor of {descendant}"
                )
            if parent == ancestor:
                return current
            current = parent

    # ------------------------------------------------------------------
    # Packed label batches (batched query engine)
    # ------------------------------------------------------------------
    def ws_batch(self, vertex: int) -> tuple[PLFBatch, tuple[int, ...]]:
        """``X(vertex).Ws`` packed as one :class:`PLFBatch` plus the bag order.

        The batch row ``i`` is the weight function towards ``uppers[i]``; the
        order matches ``node.ws`` iteration order.  Cached per node so a batch
        of queries pays the packing cost once.
        """
        cached = self._ws_batch_cache.get(vertex)
        if cached is None:
            node = self._node(vertex)
            cached = (
                PLFBatch.from_functions(node.ws.values()),
                tuple(node.ws.keys()),
            )
            self._ws_batch_cache[vertex] = cached
        return cached

    def wd_batch(self, vertex: int) -> tuple[PLFBatch, tuple[int, ...]]:
        """``X(vertex).Wd`` packed as one :class:`PLFBatch` plus the bag order."""
        cached = self._wd_batch_cache.get(vertex)
        if cached is None:
            node = self._node(vertex)
            cached = (
                PLFBatch.from_functions(node.wd.values()),
                tuple(node.wd.keys()),
            )
            self._wd_batch_cache[vertex] = cached
        return cached

    def invalidate_label_batches(self, vertices=None) -> None:
        """Drop cached label batches after ``ws``/``wd`` were rewritten.

        ``vertices=None`` clears everything; otherwise only the given tree
        nodes are invalidated (the update machinery passes the set it repaired).
        Sweep plans key on the label version, so bumping it lazily invalidates
        every cached plan that referenced the stale batches.
        """
        self._label_version += 1
        if vertices is None:
            self._ws_batch_cache.clear()
            self._wd_batch_cache.clear()
            # A full invalidation signals "anything may have changed" — drop
            # the structural caches too.  Per-vertex invalidation (the update
            # machinery rewriting label *values*) keeps them: bags are
            # immutable under weight updates.
            self._pair_contributors_cache = None
            return
        for vertex in vertices:
            self._ws_batch_cache.pop(vertex, None)
            self._wd_batch_cache.pop(vertex, None)

    def pair_contributors(self) -> dict[tuple[int, int], list[int]]:
        """Map each ordered vertex pair to the vertices whose elimination wrote to it.

        A vertex ``z`` contributes to the working edge ``(x, y)`` exactly when
        both ``x`` and ``y`` are in its bag (they were neighbours of ``z`` when
        it was eliminated, so the reduction operator updated the edge between
        them).  The table depends only on the bags — pure structure — so it is
        cached across update calls; only a full
        :meth:`invalidate_label_batches` drops it.
        """
        cached = self._pair_contributors_cache
        if cached is None:
            cached = {}
            for vertex, node in self.nodes.items():
                for a in node.bag:
                    for b in node.bag:
                        if a == b:
                            continue
                        cached.setdefault((a, b), []).append(vertex)
            self._pair_contributors_cache = cached
        return cached

    def sweep_plan(self):
        """Cached global plan of the batched tree sweeps.

        Returns ``(row_of, asc_steps, desc_steps)``: a vertex-to-row map over
        *all* tree nodes (rows ordered by decreasing height, i.e. deepest
        first) plus one step per node with a non-empty ``Ws`` (ascending
        order: deepest first) respectively ``Wd`` list (descending order:
        root side first).  Each step is ``(row, uppers, batch, upper_rows)``.

        Processing every node in height order is a strict superset of the
        per-chain sweeps of Algorithm 3: for any individual query, nodes off
        its source/target root path carry ``inf`` state and contribute exact
        no-ops, so a whole batch of queries with different endpoints shares
        one matrix-shaped sweep without changing any per-query result.
        """
        cached = self._sweep_plan_cache
        if cached is not None and cached[0] == self._label_version:
            return cached[1]
        ordered = sorted(self.nodes, key=lambda v: -self.nodes[v].height)
        row_of = {v: i for i, v in enumerate(ordered)}
        asc_steps = []
        desc_steps = []
        for vertex in ordered:
            node = self.nodes[vertex]
            if node.ws:
                batch, uppers = self.ws_batch(vertex)
                rows = np.array([row_of[u] for u in uppers], dtype=np.int64)
                asc_steps.append((row_of[vertex], uppers, batch, rows))
            if node.wd:
                batch, uppers = self.wd_batch(vertex)
                rows = np.array([row_of[u] for u in uppers], dtype=np.int64)
                desc_steps.append((row_of[vertex], uppers, batch, rows))
        desc_steps.reverse()  # increasing height: root side relaxes first
        plan = (row_of, tuple(asc_steps), tuple(desc_steps))
        self._sweep_plan_cache = (self._label_version, plan)
        return plan

    # ------------------------------------------------------------------
    # Flat-array export / import (snapshot format)
    # ------------------------------------------------------------------
    def to_arrays(self) -> dict[str, np.ndarray]:
        """Export the decomposition as flat numpy buffers (``tree_*`` keys).

        Nodes are emitted in elimination order — the same order
        :func:`decompose` inserts them — so :meth:`from_arrays` reproduces
        the original dictionary iteration order everywhere it matters
        (children lists, sweep plans, label batches).  Bags and the per-node
        ``Ws``/``Wd`` label lists are ragged arrays; the label functions
        themselves ride in two :class:`~repro.functions.batch.PLFBatch`
        layouts (``tree_ws_plf_*`` / ``tree_wd_plf_*``).
        """
        ordered = sorted(self.nodes.values(), key=lambda node: node.order)
        bag_flat: list[int] = []
        bag_offsets = [0]
        ws_keys: list[int] = []
        ws_offsets = [0]
        wd_keys: list[int] = []
        wd_offsets = [0]
        ws_funcs: list[PiecewiseLinearFunction] = []
        wd_funcs: list[PiecewiseLinearFunction] = []
        for node in ordered:
            bag_flat.extend(node.bag)
            bag_offsets.append(len(bag_flat))
            ws_keys.extend(node.ws)
            ws_funcs.extend(node.ws.values())
            ws_offsets.append(len(ws_keys))
            wd_keys.extend(node.wd)
            wd_funcs.extend(node.wd.values())
            wd_offsets.append(len(wd_keys))
        out = {
            "tree_vertex": np.array([n.vertex for n in ordered], dtype=np.int64),
            "tree_parent": np.array(
                [-1 if n.parent is None else n.parent for n in ordered],
                dtype=np.int64,
            ),
            "tree_order": np.array([n.order for n in ordered], dtype=np.int64),
            "tree_bag_flat": np.array(bag_flat, dtype=np.int64),
            "tree_bag_offsets": np.array(bag_offsets, dtype=np.int64),
            "tree_ws_key_flat": np.array(ws_keys, dtype=np.int64),
            "tree_ws_key_offsets": np.array(ws_offsets, dtype=np.int64),
            "tree_wd_key_flat": np.array(wd_keys, dtype=np.int64),
            "tree_wd_key_offsets": np.array(wd_offsets, dtype=np.int64),
        }
        out.update(PLFBatch.from_functions(ws_funcs).to_arrays("tree_ws_plf_"))
        out.update(PLFBatch.from_functions(wd_funcs).to_arrays("tree_wd_plf_"))
        return out

    @classmethod
    def from_arrays(cls, arrays) -> "TFPTreeDecomposition":
        """Rebuild a decomposition from :meth:`to_arrays` buffers.

        Raises :class:`~repro.exceptions.SnapshotError` when the ragged
        layouts disagree with each other (truncated or mixed-up buffers).
        """
        from repro.exceptions import SnapshotError

        vertices = arrays["tree_vertex"]
        parents = arrays["tree_parent"]
        orders = arrays["tree_order"]
        bag_flat = arrays["tree_bag_flat"]
        bag_offsets = arrays["tree_bag_offsets"]
        num_nodes = int(vertices.size)
        if bag_offsets.size != num_nodes + 1:
            raise SnapshotError("tree bag offsets disagree with the node count")
        ws_labels = _labels_from_arrays(
            arrays, "tree_ws_key_flat", "tree_ws_key_offsets", "tree_ws_plf_", num_nodes
        )
        wd_labels = _labels_from_arrays(
            arrays, "tree_wd_key_flat", "tree_wd_key_offsets", "tree_wd_plf_", num_nodes
        )

        nodes: dict[int, TreeNode] = {}
        roots: list[int] = []
        for i in range(num_nodes):
            vertex = int(vertices[i])
            parent = int(parents[i])
            bag = tuple(
                int(b)
                for b in bag_flat[int(bag_offsets[i]) : int(bag_offsets[i + 1])]
            )
            nodes[vertex] = TreeNode(
                vertex=vertex,
                bag=bag,
                ws=ws_labels[i],
                wd=wd_labels[i],
                parent=None if parent < 0 else parent,
                order=int(orders[i]),
            )
            if parent < 0:
                roots.append(vertex)
        for vertex, node in nodes.items():
            if node.parent is not None:
                if node.parent not in nodes:
                    raise SnapshotError(
                        f"tree node {vertex} references missing parent {node.parent}"
                    )
                nodes[node.parent].children.append(vertex)
        if not roots:
            raise SnapshotError("snapshot tree has no root node")
        return cls(nodes, roots)

    # ------------------------------------------------------------------
    # Memory accounting
    # ------------------------------------------------------------------
    def label_point_count(self) -> int:
        """Total interpolation points stored in all ``Ws``/``Wd`` lists."""
        total = 0
        for node in self.nodes.values():
            total += sum(f.size for f in node.ws.values())
            total += sum(f.size for f in node.wd.values())
        return total

    def label_function_count(self) -> int:
        """Total number of ``Ws``/``Wd`` functions stored."""
        return sum(len(node.ws) + len(node.wd) for node in self.nodes.values())


def _labels_from_arrays(
    arrays, keys_name: str, offsets_name: str, plf_prefix: str, num_nodes: int
) -> list[dict[int, PiecewiseLinearFunction]]:
    """Rebuild per-node ``{bag vertex: function}`` dicts from the flat layout."""
    from repro.exceptions import SnapshotError

    keys = arrays[keys_name]
    offsets = arrays[offsets_name]
    batch = PLFBatch.from_arrays(arrays, plf_prefix)
    if offsets.size != num_nodes + 1 or batch.count != keys.size:
        raise SnapshotError(f"label arrays {plf_prefix}* disagree with their key layout")
    labels: list[dict[int, PiecewiseLinearFunction]] = []
    for i in range(num_nodes):
        start, end = int(offsets[i]), int(offsets[i + 1])
        labels.append({int(keys[j]): batch.function(j) for j in range(start, end)})
    return labels


def decompose(
    graph: TDGraph,
    *,
    max_points: int | None = 32,
    tolerance: float = 0.0,
    use_batch_kernels: bool = True,
) -> TFPTreeDecomposition:
    """Algorithm 2: TFP tree decomposition by minimum-degree elimination.

    Parameters
    ----------
    graph:
        The time-dependent road network.  It is not modified; the elimination
        works on lightweight adjacency copies.
    max_points:
        Cap on the number of interpolation points of every reduced weight
        function (``None`` disables the cap and keeps the decomposition exact).
    tolerance:
        Vertical tolerance for the lossless part of the simplification.
    use_batch_kernels:
        Run the elimination through the round-batched engine
        (:func:`repro.core.elimination.eliminate_batched`): each round of
        minimum-degree vertices with pairwise-disjoint closed neighbourhoods
        executes its fill-edge work as a handful of vectorized kernel passes
        instead of one scalar operator call per fill.  The resulting tree is
        **bit-identical** to the scalar reference path
        (``use_batch_kernels=False``), which is kept exactly so the
        equivalence can be asserted in tests — mirroring the flag on
        :func:`repro.core.shortcuts.build_shortcut_catalog`.

    Returns
    -------
    TFPTreeDecomposition
        The decomposition; ``tree.elimination_stats`` records the engine used,
        fill/round counters and the assembly/kernel phase seconds.
    """
    if graph.num_vertices == 0:
        raise GraphError("cannot decompose an empty graph")

    engine = eliminate_batched if use_batch_kernels else eliminate_scalar
    entries, stats = engine(graph, max_points=max_points, tolerance=tolerance)

    nodes: dict[int, TreeNode] = {}
    order_of: dict[int, int] = {}
    for order, (vertex, bag, ws, wd) in enumerate(entries):
        nodes[vertex] = TreeNode(
            vertex=vertex,
            bag=bag,
            ws=ws,
            wd=wd,
            order=order,
        )
        order_of[vertex] = order

    # Algorithm 2, lines 10-13: the parent of X(v) is the bag vertex with the
    # smallest elimination order.
    roots: list[int] = []
    for vertex, node in nodes.items():
        if not node.bag:
            roots.append(vertex)
            continue
        parent = min(node.bag, key=lambda u: order_of[u])
        node.parent = parent
        nodes[parent].children.append(vertex)
    if not roots:
        raise GraphError("tree decomposition produced no root (cyclic parents?)")

    tree = TFPTreeDecomposition(nodes, roots)
    tree.elimination_stats = stats
    return tree
