"""Shortcut selection (Definition 8, Algorithms 4 and 5).

Given the catalog of all candidate shortcut pairs, the selection problem picks
the subset with maximum total utility whose total weight (interpolation
points) fits in the memory budget ``N``.  The paper proves the problem
NP-hard by reduction from 0/1 knapsack; accordingly the two solvers are

* :func:`select_dp` — the exact dynamic-programming solution (Algorithm 4),
  pseudo-polynomial in ``N``; and
* :func:`select_greedy` — the 0.5-approximation (Algorithm 5) that runs two
  greedy passes (by utility and by utility density) and keeps the better one.

Both return a :class:`SelectionResult` listing the selected pair keys so the
index can materialise exactly those shortcuts.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import SelectionError
from repro.core.shortcuts import ShortcutCatalog, ShortcutPair

__all__ = [
    "SelectionResult",
    "select_dp",
    "select_greedy",
    "select_all",
    "select_none",
    "budget_from_fraction",
]


@dataclass
class SelectionResult:
    """Outcome of a shortcut-selection run."""

    #: Keys ``(lower, upper)`` of the selected pairs.
    selected: set[tuple[int, int]] = field(default_factory=set)
    #: Sum of utilities of the selected pairs.
    total_utility: float = 0.0
    #: Sum of weights (interpolation points) of the selected pairs.
    total_weight: int = 0
    #: Which algorithm produced this result ("dp", "greedy", "all", "none").
    method: str = "none"
    #: The budget the selection was run with (``None`` for unconstrained).
    budget: int | None = None

    @property
    def num_selected(self) -> int:
        return len(self.selected)


def budget_from_fraction(catalog: ShortcutCatalog, fraction: float) -> int:
    """Translate a fraction of the total candidate weight into a point budget.

    The paper states absolute budgets (10M-200M interpolation points, Table 2);
    at reduced dataset scale the equivalent knob is a fraction of the total
    candidate weight, which keeps the selection meaningfully constrained.
    """
    if not 0.0 <= fraction <= 1.0:
        raise SelectionError(f"budget fraction must be within [0, 1], got {fraction}")
    return int(round(catalog.total_weight * fraction))


def _validate_budget(budget: int) -> int:
    if budget < 0:
        raise SelectionError(f"the memory budget must be non-negative, got {budget}")
    return int(budget)


def select_all(catalog: ShortcutCatalog) -> SelectionResult:
    """Select every candidate (this is the TD-H2H configuration)."""
    keys = set(catalog.pairs)
    return SelectionResult(
        selected=keys,
        total_utility=catalog.total_utility,
        total_weight=catalog.total_weight,
        method="all",
        budget=None,
    )


def select_none(catalog: ShortcutCatalog) -> SelectionResult:
    """Select nothing (this is the TD-basic configuration)."""
    return SelectionResult(method="none", budget=0)


def select_greedy(catalog: ShortcutCatalog, budget: int) -> SelectionResult:
    """Algorithm 5: the 0.5-approximation via two greedy orderings.

    The first pass fills the budget in decreasing order of utility, the second
    in decreasing order of utility density (utility per interpolation point);
    the pass with the larger total utility wins.  The paper proves that the
    winner achieves at least half of the optimum.
    """
    budget = _validate_budget(budget)
    by_utility = _greedy_pass(catalog, budget, key=lambda p: p.utility)
    by_density = _greedy_pass(catalog, budget, key=lambda p: p.density)
    winner = by_utility if by_utility.total_utility >= by_density.total_utility else by_density
    winner.method = "greedy"
    winner.budget = budget
    return winner


def _greedy_pass(catalog: ShortcutCatalog, budget: int, key) -> SelectionResult:
    """One greedy pass of Algorithm 5 with the given priority ``key``.

    Uses a heap (as the paper's priority queues do).  Candidates that do not
    fit the remaining budget are skipped (not terminal): stopping at the first
    misfit would let one oversized high-priority pair empty the whole
    selection, which breaks the 0.5-approximation guarantee.  Skipping keeps
    it — the utility pass always captures the single most valuable feasible
    pair, and combined with the density-prefix pass the classical knapsack
    bound ``max(passes) >= OPT / 2`` holds.
    """
    heap: list[tuple[float, tuple[int, int]]] = [
        (-key(pair), pair.key) for pair in catalog if pair.weight > 0
    ]
    heapq.heapify(heap)
    result = SelectionResult(method="greedy-pass", budget=budget)
    while heap and result.total_weight < budget:
        _, pair_key = heapq.heappop(heap)
        pair = catalog.pairs[pair_key]
        if result.total_weight + pair.weight > budget:
            continue
        result.selected.add(pair_key)
        result.total_weight += pair.weight
        result.total_utility += pair.utility
    return result


def select_dp(
    catalog: ShortcutCatalog,
    budget: int,
    *,
    granularity: int | None = None,
    max_table_cells: int = 120_000_000,
) -> SelectionResult:
    """Algorithm 4: exact 0/1-knapsack dynamic programming over the candidates.

    Parameters
    ----------
    catalog:
        Candidate shortcut pairs with their utilities and weights.
    budget:
        Maximum total weight ``N`` (interpolation points).
    granularity:
        Optional weight quantum.  Item weights are rounded *up* to multiples of
        ``granularity`` and the budget rounded *down*, which keeps the solution
        feasible (never exceeds ``budget``) while shrinking the DP table by the
        same factor.  ``None`` picks the smallest granularity that keeps the
        table under ``max_table_cells`` (1 = fully exact).
    max_table_cells:
        Bound on ``#items × (scaled budget + 1)`` used by the automatic
        granularity choice.

    Notes
    -----
    The DP table is computed capacity-row by item (numpy-vectorised); the set
    of selected pairs is recovered by backtracking over per-item decision
    bitmaps, so the memory footprint is ``#items × (scaled budget + 1)`` bits.
    With ``granularity > 1`` the result is still a feasible selection but may
    be slightly below the true optimum — the paper's practicality argument for
    the greedy approximation (Algorithm 5) in a nutshell.
    """
    budget = _validate_budget(budget)
    items: list[ShortcutPair] = [pair for pair in catalog if pair.weight > 0]
    if not items or budget == 0:
        return SelectionResult(method="dp", budget=budget)

    if granularity is None:
        granularity = 1
        while len(items) * (budget // granularity + 1) > max_table_cells:
            granularity *= 2
    elif granularity < 1:
        raise SelectionError(f"granularity must be >= 1, got {granularity}")

    scaled_budget = budget // granularity
    if scaled_budget == 0:
        return SelectionResult(method="dp", budget=budget)

    def scaled_weight(pair: ShortcutPair) -> int:
        return -(-pair.weight // granularity)  # ceiling division

    values = np.zeros(scaled_budget + 1, dtype=np.float64)
    decisions: list[np.ndarray] = []
    for pair in items:
        weight = scaled_weight(pair)
        taken = np.zeros(scaled_budget + 1, dtype=bool)
        if weight <= scaled_budget:
            shifted = values[: scaled_budget + 1 - weight] + pair.utility
            improved = shifted > values[weight:]
            if improved.any():
                taken[weight:] = improved
                values[weight:] = np.where(improved, shifted, values[weight:])
        decisions.append(np.packbits(taken))
    total_utility = float(values[scaled_budget])

    # Backtrack to recover the selected set.
    selected: set[tuple[int, int]] = set()
    remaining = scaled_budget
    total_weight = 0
    for index in range(len(items) - 1, -1, -1):
        taken_bits = np.unpackbits(decisions[index], count=scaled_budget + 1)
        if taken_bits[remaining]:
            pair = items[index]
            selected.add(pair.key)
            total_weight += pair.weight
            remaining -= scaled_weight(pair)
    return SelectionResult(
        selected=selected,
        total_utility=total_utility,
        total_weight=total_weight,
        method="dp",
        budget=budget,
    )
