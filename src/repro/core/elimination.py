"""Round-batched minimum-degree elimination (the engine behind Algorithms 1-2).

:func:`repro.core.tree_decomposition.decompose` eliminates vertices in
minimum-degree order; eliminating a vertex connects every ordered pair of its
remaining neighbours with a reduced edge (``Compound`` of the two incident
legs, ``minimum`` with an already existing edge, capped by ``simplify``).  The
scalar reference implementation (:func:`eliminate_scalar`) executes one
operator call per fill edge — O(n · w²) Python-level dispatches, the last
scalar hot path of index construction.

:func:`eliminate_batched` removes that dispatch overhead by splitting the
algorithm into a structural pass and a batched numeric pass:

1. **Round assembly** replays the scalar elimination heap *structurally* —
   neighbour sets and integer degrees only, no weight functions touched — so
   the elimination order and every bag are literally the scalar algorithm's.
   Along the way it records one *fill task* per reduced edge (the two leg
   edges, the bridge vertex, and the edge the result merges with) and assigns
   each task a **round**: one more than the latest round among the tasks that
   produced its inputs (original edges count as round zero).  Tasks in the
   same round are mutually independent by construction, so any interleaving
   yields identical fills.  This generalises multiple-minimum-degree style
   rounds of vertices with pairwise-disjoint closed neighbourhoods: those are
   exactly the rounds whose *vertices* share no edges at all, whereas
   dependency rounds also run the independent parts of overlapping reductions
   together, which keeps rounds large even on meshes where minimum-degree
   ties are scarce.
2. **Round execution** then runs each round's fill work as a handful of
   kernel passes over :class:`~repro.functions.batch.PLFBatch` ragged arrays:
   one :func:`~repro.functions.batch.compound_many`, one
   :func:`~repro.functions.batch.simplify_many` cap, and one grouped
   presence-masked :func:`~repro.functions.batch.minimum_many` merge against
   the edges that already existed, capping exactly the merged rows
   (:func:`~repro.functions.batch.minimum_many_masked` packages the same
   merge for callers that need no differential capping).

Because the structural pass *is* the scalar loop minus the numeric work, and
the batch kernels are branch-for-branch equivalents of the scalar operators
fed the same input values (induction over rounds), the elimination order, the
bags and every ``Ws``/``Wd`` function are **bit-identical** to the scalar
path.  ``tests/core/test_elimination.py`` pins this equivalence down.

The working graph stores no function objects at all: weights live in an
append-only :class:`FunctionPool` of chunked ragged arrays, edges resolve to
integer pool rows (known for every task before any numeric work starts), and
gathering a round's legs is a vectorized :meth:`FunctionPool.take` instead of
a walk over dicts of Python objects.
"""

from __future__ import annotations

import heapq
import time
from bisect import bisect_right
from dataclasses import dataclass

import numpy as np

from repro.exceptions import InvalidFunctionError
from repro.functions.batch import (
    PLFBatch,
    _minimum_masked_split,
    compound_many,
    simplify_many,
)
from repro.functions.compound import compound, minimum
from repro.functions.piecewise import PiecewiseLinearFunction
from repro.functions.simplify import simplify
from repro.graph.td_graph import TDGraph

__all__ = [
    "FunctionPool",
    "EliminationStats",
    "eliminate_scalar",
    "eliminate_batched",
]

#: Compact the function pool into a single chunk once it fragments this much.
#: Low on purpose: a single-chunk pool keeps :meth:`FunctionPool.take` on its
#: fast path (one vectorized gather, no per-chunk loop), and compaction is a
#: plain concatenate whose cost amortises over the rounds between compactions.
_MAX_CHUNKS = 8


class FunctionPool:
    """Append-only store of piecewise-linear functions in chunked ragged arrays.

    Rows are stable integer handles: ``append`` assigns consecutive row ids to
    the members of the appended batch and compaction merges chunks in order,
    which preserves every previously handed-out id.  ``take`` gathers any
    row selection into one :class:`PLFBatch` (the vectorized path the round
    executor uses); ``function`` returns a single member as a zero-copy scalar
    view (used once per stored label when the tree nodes are materialised).
    """

    __slots__ = ("_chunks", "_offsets", "_peak_chunks")

    def __init__(self) -> None:
        self._chunks: list[PLFBatch] = []
        self._offsets: list[int] = [0]
        self._peak_chunks = 0

    @property
    def count(self) -> int:
        """Number of functions ever appended (dead rows are kept)."""
        return self._offsets[-1]

    @property
    def peak_chunks(self) -> int:
        """Most chunks ever live at once (fragmentation high-water mark)."""
        return self._peak_chunks

    def append(self, batch: PLFBatch) -> np.ndarray:
        """Store ``batch`` and return the pool rows assigned to its members."""
        start = self._offsets[-1]
        self._chunks.append(batch)
        self._offsets.append(start + batch.count)
        if len(self._chunks) > self._peak_chunks:
            self._peak_chunks = len(self._chunks)
        if len(self._chunks) > _MAX_CHUNKS:
            self._compact()
        return np.arange(start, start + batch.count, dtype=np.int64)

    def _compact(self) -> None:
        chunks = self._chunks
        sizes = np.concatenate([chunk.sizes for chunk in chunks])
        offsets = np.zeros(sizes.size + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        self._chunks = [
            PLFBatch(
                np.concatenate([chunk.times for chunk in chunks]),
                np.concatenate([chunk.costs for chunk in chunks]),
                np.concatenate([chunk.via for chunk in chunks]),
                offsets,
            )
        ]
        self._offsets = [0, int(sizes.size)]

    def take(self, rows: np.ndarray) -> PLFBatch:
        """Gather the given pool rows (in order) into one batch."""
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return PLFBatch(
                np.empty(0), np.empty(0), np.empty(0, np.int64), np.zeros(1, np.int64)
            )
        if rows.min() < 0 or rows.max() >= self.count:
            raise InvalidFunctionError("pool row out of range")
        if len(self._chunks) == 1:
            return self._chunks[0].take(rows)
        offsets = np.asarray(self._offsets, dtype=np.int64)
        chunk_of = np.searchsorted(offsets, rows, side="right") - 1
        parts = []
        for chunk_idx in np.unique(chunk_of):
            sel = np.nonzero(chunk_of == chunk_idx)[0]
            local = rows[sel] - offsets[chunk_idx]
            parts.append((sel, self._chunks[int(chunk_idx)].take(local)))
        return PLFBatch.stitch(parts, rows.size)

    def function(self, row: int) -> PiecewiseLinearFunction:
        """Return one pool member as a scalar function (views, no copy)."""
        row = int(row)
        if row < 0 or row >= self.count:
            raise InvalidFunctionError(f"pool row {row} out of range")
        chunk_idx = bisect_right(self._offsets, row) - 1
        return self._chunks[chunk_idx].function(row - self._offsets[chunk_idx])

    def __len__(self) -> int:  # pragma: no cover - trivial
        return self.count


@dataclass
class EliminationStats:
    """Counters and phase timings of one elimination run."""

    engine: str
    num_vertices: int = 0
    num_fill_edges: int = 0
    #: Number of batched rounds executed (0 for the scalar engine).
    num_rounds: int = 0
    #: Largest number of fill edges computed by a single round.
    largest_round: int = 0
    #: Seconds spent replaying the heap / assembling round task arrays.
    assembly_seconds: float = 0.0
    #: Seconds spent inside the batch kernels (compound/minimum/simplify).
    kernel_seconds: float = 0.0
    #: Functions ever stored in the working :class:`FunctionPool`
    #: (original edges plus every fill result; 0 for the scalar engine).
    pool_functions: int = 0
    #: High-water mark of live pool chunks (fragmentation before compaction;
    #: 0 for the scalar engine).
    pool_peak_chunks: int = 0


#: One eliminated vertex: ``(vertex, bag, ws, wd)`` in elimination order.
_Entry = tuple[
    int,
    tuple[int, ...],
    dict[int, PiecewiseLinearFunction],
    dict[int, PiecewiseLinearFunction],
]


def eliminate_scalar(
    graph: TDGraph,
    *,
    max_points: int | None = 32,
    tolerance: float = 0.0,
) -> tuple[list[_Entry], EliminationStats]:
    """Reference engine: one scalar operator call per fill edge (Algorithm 1)."""
    started = time.perf_counter()
    forward: dict[int, dict[int, PiecewiseLinearFunction]] = {
        v: dict(graph.out_items(v)) for v in graph.vertices()
    }
    backward: dict[int, dict[int, PiecewiseLinearFunction]] = {
        v: dict(graph.in_items(v)) for v in graph.vertices()
    }
    neighbors: dict[int, set[int]] = {
        v: set(forward[v]) | set(backward[v]) for v in graph.vertices()
    }

    def cap(func: PiecewiseLinearFunction) -> PiecewiseLinearFunction:
        # Even in "exact" mode (max_points=None, tolerance=0) collinear points
        # are dropped: that is value-preserving and keeps reduced functions at
        # their true complexity instead of accumulating redundant breakpoints.
        return simplify(func, max_points=max_points, tolerance=tolerance)

    heap: list[tuple[int, int]] = [(len(neighbors[v]), v) for v in neighbors]
    heapq.heapify(heap)
    eliminated: set[int] = set()
    entries: list[_Entry] = []
    stats = EliminationStats(engine="scalar")

    while heap:
        degree, vertex = heapq.heappop(heap)
        if vertex in eliminated:
            continue
        if degree != len(neighbors[vertex]):
            heapq.heappush(heap, (len(neighbors[vertex]), vertex))
            continue

        bag = sorted(neighbors[vertex])
        ws = {u: forward[vertex][u] for u in bag if u in forward[vertex]}
        wd = {u: backward[vertex][u] for u in bag if u in backward[vertex]}
        entries.append((vertex, tuple(bag), ws, wd))
        eliminated.add(vertex)

        # Reduction operator (Algorithm 1): connect every ordered pair of
        # remaining neighbours through ``vertex``.
        for i in bag:
            for j in bag:
                if i == j:
                    continue
                via_first = forward[i].get(vertex)
                via_second = forward[vertex].get(j)
                if via_first is None or via_second is None:
                    continue
                candidate = cap(compound(via_first, via_second, via=vertex))
                existing = forward[i].get(j)
                if existing is None:
                    merged = candidate
                else:
                    merged = cap(minimum(existing, candidate))
                forward[i][j] = merged
                backward[j][i] = merged
                neighbors[i].add(j)
                neighbors[j].add(i)
                stats.num_fill_edges += 1

        # Disconnect ``vertex`` from the working graph and refresh degrees.
        for u in bag:
            forward[u].pop(vertex, None)
            backward[u].pop(vertex, None)
            neighbors[u].discard(vertex)
            heapq.heappush(heap, (len(neighbors[u]), u))
        forward.pop(vertex, None)
        backward.pop(vertex, None)
        neighbors.pop(vertex, None)

    stats.num_vertices = len(entries)
    stats.assembly_seconds = time.perf_counter() - started
    return entries, stats


def eliminate_batched(
    graph: TDGraph,
    *,
    max_points: int | None = 32,
    tolerance: float = 0.0,
) -> tuple[list[_Entry], EliminationStats]:
    """Round-batched engine: identical results, kernel-sized operator calls.

    See the module docstring for the schedule and the equivalence argument.
    """
    stats = EliminationStats(engine="batched")
    started = time.perf_counter()

    # ------------------------------------------------------------------
    # Phase 1 — structural replay of the scalar elimination.
    #
    # Edges resolve to *references*: original edges to their initial pool row
    # (0..E-1), fill results to ``num_original + task id``.  ``writer`` maps a
    # live directed edge to its current reference, ``round_of_ref`` gives the
    # round that produces a reference (0 for originals).
    # ------------------------------------------------------------------
    initial_functions: list[PiecewiseLinearFunction] = []
    writer: dict[tuple[int, int], int] = {}
    out_nbrs: dict[int, set[int]] = {v: set() for v in graph.vertices()}
    in_nbrs: dict[int, set[int]] = {v: set() for v in graph.vertices()}
    for u in graph.vertices():
        for v, func in graph.out_items(u):
            writer[(u, v)] = len(initial_functions)
            initial_functions.append(func)
            out_nbrs[u].add(v)
            in_nbrs[v].add(u)
    num_original = len(initial_functions)
    neighbors: dict[int, set[int]] = {
        v: out_nbrs[v] | in_nbrs[v] for v in graph.vertices()
    }

    heap: list[tuple[int, int]] = [(len(neighbors[v]), v) for v in neighbors]
    heapq.heapify(heap)
    eliminated: set[int] = set()
    #: Per-vertex label references, resolved to functions after execution.
    raw_entries: list[tuple[int, tuple[int, ...], dict[int, int], dict[int, int]]] = []

    task_first: list[int] = []
    task_second: list[int] = []
    task_existing: list[int] = []  # -1 when the fill edge did not exist yet
    task_via: list[int] = []
    task_round: list[int] = []

    while heap:
        degree, vertex = heapq.heappop(heap)
        if vertex in eliminated:
            continue
        if degree != len(neighbors[vertex]):
            heapq.heappush(heap, (len(neighbors[vertex]), vertex))
            continue

        bag = sorted(neighbors[vertex])
        vertex_out = out_nbrs[vertex]
        vertex_in = in_nbrs[vertex]
        ws_refs = {u: writer[(vertex, u)] for u in bag if u in vertex_out}
        wd_refs = {u: writer[(u, vertex)] for u in bag if u in vertex_in}
        raw_entries.append((vertex, tuple(bag), ws_refs, wd_refs))
        eliminated.add(vertex)

        for i in bag:
            if i not in vertex_in:
                continue
            first_ref = writer[(i, vertex)]
            first_round = (
                0 if first_ref < num_original else task_round[first_ref - num_original]
            )
            out_i = out_nbrs[i]
            for j in bag:
                if i == j or j not in vertex_out:
                    continue
                second_ref = writer[(vertex, j)]
                depth = (
                    0
                    if second_ref < num_original
                    else task_round[second_ref - num_original]
                )
                if first_round > depth:
                    depth = first_round
                if j in out_i:
                    existing_ref = writer[(i, j)]
                    existing_round = (
                        0
                        if existing_ref < num_original
                        else task_round[existing_ref - num_original]
                    )
                    if existing_round > depth:
                        depth = existing_round
                else:
                    existing_ref = -1
                task_id = len(task_first)
                task_first.append(first_ref)
                task_second.append(second_ref)
                task_existing.append(existing_ref)
                task_via.append(vertex)
                task_round.append(depth + 1)
                writer[(i, j)] = num_original + task_id
                out_i.add(j)
                in_nbrs[j].add(i)
                neighbors[i].add(j)
                neighbors[j].add(i)

        for u in bag:
            out_nbrs[u].discard(vertex)
            in_nbrs[u].discard(vertex)
            neighbors[u].discard(vertex)
            heapq.heappush(heap, (len(neighbors[u]), u))
        del out_nbrs[vertex]
        del in_nbrs[vertex]
        del neighbors[vertex]

    num_tasks = len(task_first)
    stats.num_fill_edges = num_tasks
    stats.assembly_seconds += time.perf_counter() - started

    # ------------------------------------------------------------------
    # Phase 2 — execute the fill tasks round by round.
    #
    # Tasks are ordered by (round, task id); the pool appends each round's
    # results consecutively, so the final pool row of task ``t`` is
    # ``num_original + rank(t)`` — known before any kernel runs, which lets
    # every input reference be translated to a pool row up front.
    # ------------------------------------------------------------------
    kernel_started = time.perf_counter()
    pool = FunctionPool()
    pool.append(PLFBatch.from_functions(initial_functions))

    if num_tasks:
        rounds_arr = np.asarray(task_round, dtype=np.int64)
        order = np.argsort(rounds_arr, kind="stable")
        row_of_task = np.empty(num_tasks, dtype=np.int64)
        row_of_task[order] = num_original + np.arange(num_tasks, dtype=np.int64)

        def to_rows(refs: np.ndarray) -> np.ndarray:
            rows = refs.copy()
            is_task = refs >= num_original
            rows[is_task] = row_of_task[refs[is_task] - num_original]
            return rows

        first_rows = to_rows(np.asarray(task_first, dtype=np.int64))[order]
        second_rows = to_rows(np.asarray(task_second, dtype=np.int64))[order]
        existing_refs = np.asarray(task_existing, dtype=np.int64)
        has_existing = existing_refs >= 0
        existing_rows = np.where(
            has_existing, to_rows(np.maximum(existing_refs, 0)), -1
        )[order]
        via_arr = np.asarray(task_via, dtype=np.int64)[order]
        sorted_rounds = rounds_arr[order]
        boundaries = np.nonzero(np.r_[True, sorted_rounds[1:] != sorted_rounds[:-1]])[0]
        boundaries = np.r_[boundaries, num_tasks]
        stats.num_rounds = boundaries.size - 1

        for start, end in zip(boundaries[:-1], boundaries[1:]):
            stats.largest_round = max(stats.largest_round, int(end - start))
            first = pool.take(first_rows[start:end])
            second = pool.take(second_rows[start:end])
            candidate = simplify_many(
                compound_many(first, second, via=via_arr[start:end]),
                max_points=max_points,
                tolerance=tolerance,
            )
            existing_slice = existing_rows[start:end]
            present = existing_slice >= 0
            if present.any():
                # Grouped presence-masked minimum-merge against the edges
                # that already exist.  The scalar path caps exactly the rows
                # that went through the minimum (fresh fills keep the
                # already-capped candidate), so the split form of the masked
                # kernel is used and only the merged rows are re-capped.
                present_idx, absent_idx, merged_present = _minimum_masked_split(
                    pool.take(existing_slice[present]), candidate, present
                )
                merged_present = simplify_many(
                    merged_present, max_points=max_points, tolerance=tolerance
                )
                if absent_idx.size:
                    merged = PLFBatch.stitch(
                        [
                            (present_idx, merged_present),
                            (absent_idx, candidate.take(absent_idx)),
                        ],
                        int(present.size),
                    )
                else:
                    merged = merged_present
            else:
                merged = candidate
            pool.append(merged)
    else:
        row_of_task = np.empty(0, dtype=np.int64)
    stats.kernel_seconds += time.perf_counter() - kernel_started
    stats.pool_functions = pool.count
    stats.pool_peak_chunks = pool.peak_chunks

    # ------------------------------------------------------------------
    # Phase 3 — resolve the recorded label references into scalar functions.
    #
    # One vectorized gather copies exactly the label functions out of the
    # pool into a compact batch; the per-node functions are views into that
    # batch, so the pool (which retains every intermediate fill result) is
    # released when this function returns instead of being pinned for the
    # lifetime of the tree.
    # ------------------------------------------------------------------
    resolve_started = time.perf_counter()
    label_refs = np.array(
        [
            ref
            for _, _, ws_refs, wd_refs in raw_entries
            for refs in (ws_refs, wd_refs)
            for ref in refs.values()
        ],
        dtype=np.int64,
    )
    label_rows = label_refs.copy()
    is_task = label_refs >= num_original
    label_rows[is_task] = row_of_task[label_refs[is_task] - num_original]
    labels = pool.take(label_rows)

    entries: list[_Entry] = []
    cursor = 0
    for vertex, bag, ws_refs, wd_refs in raw_entries:
        ws: dict[int, PiecewiseLinearFunction] = {}
        for u in ws_refs:
            ws[u] = labels.function(cursor)
            cursor += 1
        wd: dict[int, PiecewiseLinearFunction] = {}
        for u in wd_refs:
            wd[u] = labels.function(cursor)
            cursor += 1
        entries.append((vertex, bag, ws, wd))
    stats.num_vertices = len(entries)
    stats.assembly_seconds += time.perf_counter() - resolve_started
    return entries, stats
