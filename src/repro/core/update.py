"""Incremental index maintenance under edge-weight updates (Sec. 5.2, Fig. 10).

Traffic conditions change during the day; the paper's update experiment
perturbs the weight functions of a growing number of edges and measures how
long it takes to bring the index back in sync.  Rebuilding from scratch is the
trivial upper bound; the incremental algorithm implemented here exploits two
structural facts of the TFP decomposition:

1. The bag functions stored at ``X(v)`` are exactly the working-graph weights
   between ``v`` and its neighbours at elimination time, and the working-graph
   weight of an edge ``(x, y)`` equals the minimum of the original weight and
   the contributions ``Compound(X(z).Wd_x, X(z).Ws_y)`` over every vertex ``z``
   eliminated before both with ``x, y`` in its bag.  A changed edge therefore
   only dirties bag functions along the *ancestor cone* of its lower endpoint,
   and every dirty function can be recomputed from already-stored material.

2. A selected shortcut of node ``i`` only depends on bag functions of nodes on
   ``i``'s root path, so only descendants of dirty vertices need their
   shortcuts refreshed — and each refresh is a single upward profile sweep.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.exceptions import EdgeNotFoundError, InvalidFunctionError
from repro.functions.compound import compound, minimum_of
from repro.functions.piecewise import PiecewiseLinearFunction
from repro.functions.simplify import simplify
from repro.core.query import _ascending_profiles  # shared upward sweep
from repro.core.shortcuts import ShortcutPair

__all__ = ["UpdateReport", "apply_edge_updates"]


@dataclass
class UpdateReport:
    """What an incremental update touched (returned by ``TDTreeIndex.update_edges``)."""

    num_changed_edges: int
    num_dirty_vertices: int = 0
    num_recomputed_labels: int = 0
    num_refreshed_shortcut_nodes: int = 0
    num_refreshed_shortcut_pairs: int = 0
    seconds: float = 0.0
    details: dict[str, float] = field(default_factory=dict)


def apply_edge_updates(
    index,
    changes: dict[tuple[int, int], PiecewiseLinearFunction],
) -> UpdateReport:
    """Apply edge-weight changes to ``index`` and repair labels and shortcuts.

    Parameters
    ----------
    index:
        A built :class:`~repro.core.index.TDTreeIndex`.
    changes:
        Mapping ``(source, target) -> new weight function``.  Every referenced
        edge must already exist (topology changes are out of scope, as in the
        paper's update experiment).

    Returns
    -------
    UpdateReport
        Counters describing the amount of recomputation performed.
    """
    import time

    started = time.perf_counter()
    report = UpdateReport(num_changed_edges=len(changes))
    if not changes:
        return report

    graph = index.graph
    tree = index.tree

    # Phase 1: apply the changes to the base graph and seed the dirty sets.
    dirty_edges: set[tuple[int, int]] = set()
    dirty_vertices: set[int] = set()
    for (source, target), weight in changes.items():
        if not graph.has_edge(source, target):
            raise EdgeNotFoundError(source, target)
        if not weight.is_nonnegative():
            raise InvalidFunctionError(
                f"new weight for edge ({source}, {target}) has negative costs"
            )
        graph.set_weight(source, target, weight)
        dirty_edges.add((source, target))
        dirty_edges.add((target, source))
        lower = min((source, target), key=lambda v: tree.nodes[v].order)
        dirty_vertices.add(lower)

    # Phase 2: repair bag functions bottom-up in elimination order.  The dirty
    # queue is a heap keyed on elimination order plus a seen-set: bag vertices
    # are always eliminated later than the node that stores them, so each pop
    # is the globally next dirty vertex without re-sorting per insertion.
    contributors = tree.pair_contributors()
    changed_bag_vertices: set[int] = set()
    pending: list[tuple[int, int]] = [
        (tree.nodes[v].order, v) for v in dirty_vertices
    ]
    heapq.heapify(pending)
    queued: set[int] = set(dirty_vertices)
    processed: set[int] = set()
    while pending:
        _, vertex = heapq.heappop(pending)
        if vertex in processed:  # pragma: no cover - queued prevents duplicates
            continue
        processed.add(vertex)
        node = tree.nodes[vertex]
        vertex_changed = False
        for bag_vertex in node.bag:
            for direction, store in (("fwd", node.ws), ("bwd", node.wd)):
                if direction == "fwd":
                    edge = (vertex, bag_vertex)
                else:
                    edge = (bag_vertex, vertex)
                if edge not in dirty_edges:
                    continue
                new_value = _recompute_working_edge(
                    graph, tree, contributors, edge, index.max_points, index.tolerance
                )
                report.num_recomputed_labels += 1
                old_value = store.get(bag_vertex)
                if new_value is None:
                    continue
                if old_value is not None and old_value.allclose(new_value, tolerance=1e-9):
                    continue
                store[bag_vertex] = new_value
                vertex_changed = True
        if vertex_changed:
            changed_bag_vertices.add(vertex)
            # The packed label batches of this node are stale now.
            tree.invalidate_label_batches((vertex,))
            # Every edge this vertex wrote during elimination may now differ.
            for a in node.bag:
                for b in node.bag:
                    if a == b:
                        continue
                    dirty_edges.add((a, b))
            for b in node.bag:
                if b not in processed and b not in queued:
                    heapq.heappush(pending, (tree.nodes[b].order, b))
                    queued.add(b)
    report.num_dirty_vertices = len(processed)

    # Phase 3: refresh the selected shortcuts of every affected node.  A node
    # is affected when a vertex whose bag functions changed lies on its root
    # path.  For localised changes the per-node upward sweep is cheapest; when
    # a large fraction of the tree is affected, re-running the (Fact 1)
    # top-down shortcut construction over the repaired tree is cheaper, so the
    # update degrades gracefully towards the shortcut-construction cost and
    # never towards more than a full rebuild.
    if index.shortcuts and changed_bag_vertices:
        affected_lowers = {
            lower
            for (lower, _upper) in index.shortcuts
            if _chain_intersects(tree, lower, changed_bag_vertices)
        }
        report.num_refreshed_shortcut_nodes = len(affected_lowers)
        distinct_lowers = {lower for (lower, _upper) in index.shortcuts}
        if affected_lowers and len(affected_lowers) > 0.25 * max(len(distinct_lowers), 1):
            report.num_refreshed_shortcut_pairs = _rebuild_selected_shortcuts(index)
        else:
            for lower in affected_lowers:
                refreshed = _refresh_shortcuts_of(index, lower)
                report.num_refreshed_shortcut_pairs += refreshed

    # The batch query engine memoises per-pair shortcut batches; any label or
    # shortcut refresh invalidates them.
    cache = getattr(index, "_batch_query_cache", None)
    if cache is not None:
        cache.clear()
    # External caches (e.g. a QueryService result cache) hang off the index's
    # invalidation hooks; fire them even for no-op-looking updates — a changed
    # edge can alter answers without dirtying any bag function.
    notify = getattr(index, "notify_invalidation", None)
    if notify is not None:
        notify()

    report.seconds = time.perf_counter() - started
    return report


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------
def _recompute_working_edge(
    graph,
    tree,
    contributors: dict[tuple[int, int], list[int]],
    edge: tuple[int, int],
    max_points: int | None,
    tolerance: float,
) -> PiecewiseLinearFunction | None:
    """Recompute the working-graph weight of ``edge`` from stored material."""
    x, y = edge
    candidates: list[PiecewiseLinearFunction] = []
    if graph.has_edge(x, y):
        candidates.append(graph.weight(x, y))
    order_x = tree.nodes[x].order
    order_y = tree.nodes[y].order
    for z in contributors.get(edge, ()):  # z eliminated before both endpoints
        node_z = tree.nodes[z]
        if node_z.order >= min(order_x, order_y):
            continue
        first = node_z.wd.get(x)
        second = node_z.ws.get(y)
        if first is None or second is None:
            continue
        candidates.append(compound(first, second, via=z))
    if not candidates:
        return None
    merged = minimum_of(candidates)
    if max_points is not None or tolerance:
        merged = simplify(merged, max_points=max_points, tolerance=tolerance)
    return merged


def _chain_intersects(tree, vertex: int, dirty: set[int]) -> bool:
    """Whether the root path of ``vertex`` contains any dirty vertex."""
    return any(v in dirty for v in tree.root_path(vertex))


def _rebuild_selected_shortcuts(index) -> int:
    """Recompute the selected shortcut pairs via the Fact-1 top-down pass.

    Used when most of the tree is affected: building the candidate catalog
    over the already-repaired bag functions costs the same as the shortcut
    phase of a fresh build, which is strictly less than a full rebuild
    (no re-decomposition, no re-selection).
    """
    from repro.core.shortcuts import build_shortcut_catalog

    catalog = build_shortcut_catalog(
        index.tree,
        max_points=index.max_points,
        tolerance=index.tolerance,
        compute_utilities=False,
    )
    refreshed = 0
    for key, old_pair in list(index.shortcuts.items()):
        new_pair = catalog.pairs.get(key)
        if new_pair is None:
            continue
        new_pair.utility = old_pair.utility
        index.shortcuts[key] = new_pair
        refreshed += 1
    return refreshed


def _refresh_shortcuts_of(index, lower: int) -> int:
    """Recompute all selected shortcut pairs ``<lower, *>`` with upward sweeps."""
    tree = index.tree
    forward_labels = _ascending_profiles(
        tree, lower, forward=True, max_points=index.max_points
    )
    backward_labels = _ascending_profiles(
        tree, lower, forward=False, max_points=index.max_points
    )
    refreshed = 0
    for (pair_lower, upper), pair in list(index.shortcuts.items()):
        if pair_lower != lower:
            continue
        forward = forward_labels.get(upper, pair.forward)
        backward = backward_labels.get(upper, pair.backward)
        index.shortcuts[(pair_lower, upper)] = ShortcutPair(
            lower=pair_lower,
            upper=upper,
            forward=forward,
            backward=backward,
            utility=pair.utility,
        )
        refreshed += 1
    return refreshed
