"""Generic utilities: LCA queries, timing, deprecation, and the memory model."""

from repro.utils.deprecation import reset_deprecation_warnings, warn_deprecated
from repro.utils.lca import LCAIndex
from repro.utils.memory import DEFAULT_MEMORY_MODEL, MemoryBreakdown, MemoryModel
from repro.utils.timing import Stopwatch, Timer, time_call

__all__ = [
    "LCAIndex",
    "MemoryModel",
    "MemoryBreakdown",
    "DEFAULT_MEMORY_MODEL",
    "Stopwatch",
    "Timer",
    "time_call",
    "warn_deprecated",
    "reset_deprecation_warnings",
]
