"""Generic utilities: LCA queries, timing, deprecation, and the memory model."""

from repro.utils.deprecation import reset_deprecation_warnings, warn_deprecated
from repro.utils.lca import LCAIndex
from repro.utils.memory import DEFAULT_MEMORY_MODEL, MemoryBreakdown, MemoryModel
from repro.utils.timing import (
    SYSTEM_CLOCK,
    Clock,
    FakeClock,
    MonotonicClock,
    Stopwatch,
    Timer,
    time_call,
)

__all__ = [
    "LCAIndex",
    "MemoryModel",
    "MemoryBreakdown",
    "DEFAULT_MEMORY_MODEL",
    "Clock",
    "MonotonicClock",
    "FakeClock",
    "SYSTEM_CLOCK",
    "Stopwatch",
    "Timer",
    "time_call",
    "warn_deprecated",
    "reset_deprecation_warnings",
]
