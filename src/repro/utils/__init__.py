"""Generic utilities: LCA queries, timing, and the analytic memory model."""

from repro.utils.lca import LCAIndex
from repro.utils.memory import DEFAULT_MEMORY_MODEL, MemoryBreakdown, MemoryModel
from repro.utils.timing import Stopwatch, Timer, time_call

__all__ = [
    "LCAIndex",
    "MemoryModel",
    "MemoryBreakdown",
    "DEFAULT_MEMORY_MODEL",
    "Stopwatch",
    "Timer",
    "time_call",
]
