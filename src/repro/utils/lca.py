"""Lowest-common-ancestor queries on rooted trees via binary lifting.

The tree-decomposition query algorithms (Algorithms 3 and 6) need the LCA of
two tree nodes on every query; binary lifting gives ``O(log h)`` per query
after ``O(n log h)`` preprocessing, which is negligible next to the PLF
arithmetic.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import ReproError

__all__ = ["LCAIndex"]


class LCAIndex:
    """Binary-lifting LCA structure over a forest given by parent pointers.

    Parameters
    ----------
    parents:
        Mapping from node to parent node; roots map to ``None`` (or are simply
        absent).  Nodes must be hashable; internally they are relabelled to
        dense integers.
    """

    def __init__(self, parents: Mapping[int, int | None]) -> None:
        nodes = list(parents.keys())
        for parent in parents.values():
            if parent is not None and parent not in parents:
                nodes.append(parent)
        # Deduplicate while keeping order deterministic.
        seen: dict[int, int] = {}
        for node in nodes:
            if node not in seen:
                seen[node] = len(seen)
        self._id_of = seen
        self._node_of = {idx: node for node, idx in seen.items()}
        size = len(seen)

        parent_arr = np.full(size, -1, dtype=np.int64)
        for node, parent in parents.items():
            if parent is not None:
                parent_arr[seen[node]] = seen[parent]

        depth = np.full(size, -1, dtype=np.int64)
        order = self._topological_order(parent_arr)
        for idx in order:
            p = parent_arr[idx]
            depth[idx] = 0 if p < 0 else depth[p] + 1
        self._depth = depth

        max_depth = int(depth.max()) if size else 0
        levels = max(1, int(np.ceil(np.log2(max_depth + 1))) + 1)
        up = np.full((levels, size), -1, dtype=np.int64)
        up[0] = parent_arr
        for level in range(1, levels):
            prev = up[level - 1]
            mask = prev >= 0
            up[level][mask] = prev[prev[mask]]
        self._up = up

    @staticmethod
    def _topological_order(parent_arr: np.ndarray) -> list[int]:
        """Return node ids ordered so parents precede children."""
        size = parent_arr.shape[0]
        children: dict[int, list[int]] = {}
        roots = []
        for idx in range(size):
            parent = int(parent_arr[idx])
            if parent < 0:
                roots.append(idx)
            else:
                children.setdefault(parent, []).append(idx)
        order: list[int] = []
        stack = list(roots)
        visited = 0
        while stack:
            node = stack.pop()
            order.append(node)
            visited += 1
            stack.extend(children.get(node, ()))
        if visited != size:
            raise ReproError("parent pointers contain a cycle")
        return order

    def depth(self, node: int) -> int:
        """Depth of ``node`` (roots have depth 0)."""
        return int(self._depth[self._id_of[node]])

    def lca(self, first: int, second: int) -> int:
        """Return the lowest common ancestor of ``first`` and ``second``."""
        u = self._id_of[first]
        v = self._id_of[second]
        du, dv = int(self._depth[u]), int(self._depth[v])
        if du < dv:
            u, v = v, u
            du, dv = dv, du
        diff = du - dv
        level = 0
        while diff:
            if diff & 1:
                u = int(self._up[level, u])
            diff >>= 1
            level += 1
        if u == v:
            return self._node_of[u]
        for level in range(self._up.shape[0] - 1, -1, -1):
            if self._up[level, u] != self._up[level, v]:
                u = int(self._up[level, u])
                v = int(self._up[level, v])
        parent = int(self._up[0, u])
        if parent < 0:
            raise ReproError(
                f"nodes {first!r} and {second!r} are in different trees"
            )
        return self._node_of[parent]

    def is_ancestor(self, ancestor: int, descendant: int) -> bool:
        """Return whether ``ancestor`` lies on the root path of ``descendant``."""
        try:
            return self.lca(ancestor, descendant) == ancestor
        except ReproError:
            return False
