"""Analytic memory model for index-size reporting.

The paper reports index sizes in gigabytes of resident memory.  A pure-Python
reproduction cannot reproduce C++ struct layouts, so instead the library uses
an analytic model: every stored interpolation point costs a fixed number of
bytes (time + cost as doubles plus the provenance integer) and every stored
function/dictionary entry adds a constant overhead.  Because every compared
index is measured with the *same* model, the relative comparisons — which is
what the paper's memory figures demonstrate — are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MemoryModel", "MemoryBreakdown", "DEFAULT_MEMORY_MODEL"]

#: Bytes per interpolation point: float64 time + float64 cost + int64 via.
_BYTES_PER_POINT = 24
#: Fixed per-function overhead (array headers, dict slot).
_BYTES_PER_FUNCTION = 64
#: Fixed per-structure (tree node / partition node) overhead.
_BYTES_PER_NODE = 96


@dataclass(frozen=True)
class MemoryModel:
    """Parameters of the analytic memory model (bytes)."""

    bytes_per_point: int = _BYTES_PER_POINT
    bytes_per_function: int = _BYTES_PER_FUNCTION
    bytes_per_node: int = _BYTES_PER_NODE

    def functions_bytes(self, total_points: int, num_functions: int) -> int:
        """Bytes needed to store ``num_functions`` PLFs with ``total_points`` points."""
        return total_points * self.bytes_per_point + num_functions * self.bytes_per_function

    def nodes_bytes(self, num_nodes: int) -> int:
        """Bytes of per-node structural overhead."""
        return num_nodes * self.bytes_per_node


DEFAULT_MEMORY_MODEL = MemoryModel()


@dataclass
class MemoryBreakdown:
    """Index memory decomposed into its structural parts (all in bytes)."""

    label_points: int = 0
    label_functions: int = 0
    shortcut_points: int = 0
    shortcut_functions: int = 0
    structure_nodes: int = 0
    model: MemoryModel = DEFAULT_MEMORY_MODEL

    @property
    def label_bytes(self) -> int:
        return self.model.functions_bytes(self.label_points, self.label_functions)

    @property
    def shortcut_bytes(self) -> int:
        return self.model.functions_bytes(self.shortcut_points, self.shortcut_functions)

    @property
    def structure_bytes(self) -> int:
        return self.model.nodes_bytes(self.structure_nodes)

    @property
    def total_bytes(self) -> int:
        return self.label_bytes + self.shortcut_bytes + self.structure_bytes

    @property
    def total_megabytes(self) -> float:
        return self.total_bytes / (1024.0 * 1024.0)

    def __add__(self, other: "MemoryBreakdown") -> "MemoryBreakdown":
        return MemoryBreakdown(
            label_points=self.label_points + other.label_points,
            label_functions=self.label_functions + other.label_functions,
            shortcut_points=self.shortcut_points + other.shortcut_points,
            shortcut_functions=self.shortcut_functions + other.shortcut_functions,
            structure_nodes=self.structure_nodes + other.structure_nodes,
            model=self.model,
        )
