"""Warn-once deprecation helper for the legacy (pre-``repro.api``) surface.

Every deprecated entry point keeps working, but announces its replacement with
**one** :class:`DeprecationWarning` per process — enough to show up in logs
and test runs without drowning a tight query loop in thousands of identical
warnings.
"""

from __future__ import annotations

import warnings

__all__ = ["warn_deprecated", "reset_deprecation_warnings"]

#: Keys that have already warned in this process.
_warned: set[str] = set()


def warn_deprecated(key: str, message: str, *, stacklevel: int = 3) -> None:
    """Emit ``DeprecationWarning(message)`` the first time ``key`` is seen."""
    if key in _warned:
        return
    _warned.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)


def reset_deprecation_warnings() -> None:
    """Forget which keys already warned (used by the deprecation-shim tests)."""
    _warned.clear()
