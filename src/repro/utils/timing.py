"""Lightweight timing helpers used by the experiment harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["Stopwatch", "Timer", "time_call"]


@dataclass
class Stopwatch:
    """Accumulates wall-clock time across multiple start/stop cycles."""

    elapsed: float = 0.0
    _started_at: float | None = field(default=None, repr=False)

    def start(self) -> None:
        if self._started_at is not None:
            raise RuntimeError("stopwatch is already running")
        self._started_at = time.perf_counter()

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("stopwatch is not running")
        delta = time.perf_counter() - self._started_at
        self.elapsed += delta
        self._started_at = None
        return delta

    def reset(self) -> None:
        self.elapsed = 0.0
        self._started_at = None

    @property
    def running(self) -> bool:
        return self._started_at is not None


class Timer:
    """Named timer registry, e.g. to split index construction into phases."""

    def __init__(self) -> None:
        self._watches: dict[str, Stopwatch] = {}

    @contextmanager
    def measure(self, name: str):
        watch = self._watches.setdefault(name, Stopwatch())
        watch.start()
        try:
            yield watch
        finally:
            watch.stop()

    def elapsed(self, name: str) -> float:
        """Total seconds accumulated under ``name`` (0.0 if never measured)."""
        watch = self._watches.get(name)
        return watch.elapsed if watch else 0.0

    def as_dict(self) -> dict[str, float]:
        return {name: watch.elapsed for name, watch in self._watches.items()}


def time_call(func, *args, repeat: int = 1, **kwargs) -> tuple[float, object]:
    """Call ``func`` ``repeat`` times and return (average seconds, last result)."""
    if repeat < 1:
        raise ValueError("repeat must be at least 1")
    result = None
    started = time.perf_counter()
    for _ in range(repeat):
        result = func(*args, **kwargs)
    elapsed = (time.perf_counter() - started) / repeat
    return elapsed, result
