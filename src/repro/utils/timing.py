"""Timing helpers: an injectable monotonic clock plus stopwatch utilities.

Everything in the library that measures or compares durations — build-phase
timers, serving deadlines, span tracing, supervision aging, retry backoff —
goes through one :class:`Clock` protocol instead of calling
:func:`time.perf_counter` directly.  Production code uses the process-wide
:data:`SYSTEM_CLOCK`; tests inject a :class:`FakeClock` and *advance time by
assertion* instead of sleeping, which keeps chaos and trace tests both fast
and deterministic.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Protocol, runtime_checkable

__all__ = [
    "Clock",
    "FakeClock",
    "MonotonicClock",
    "SYSTEM_CLOCK",
    "Stopwatch",
    "Timer",
    "time_call",
]


@runtime_checkable
class Clock(Protocol):
    """A monotonic time source (seconds; origin is arbitrary)."""

    def monotonic(self) -> float:
        """Current monotonic time in seconds."""
        ...

    def sleep(self, seconds: float) -> None:
        """Pause the caller for ``seconds`` (fake clocks advance instead)."""
        ...


class MonotonicClock:
    """The real clock: :func:`time.perf_counter` + :func:`time.sleep`.

    ``monotonic`` is :func:`time.perf_counter` itself (a staticmethod), so
    hot paths that bind ``clock.monotonic`` once call straight into C with
    no Python wrapper frame — the serving layer reads the clock several
    times per query.
    """

    __slots__ = ()

    monotonic = staticmethod(time.perf_counter)

    def sleep(self, seconds: float) -> None:
        if seconds > 0.0:
            time.sleep(seconds)

    def __repr__(self) -> str:
        return "MonotonicClock()"


class FakeClock:
    """A manually-advanced clock for deterministic tests.

    ``sleep`` advances the fake time instead of blocking, so code paths with
    backoff sleeps run instantly under test; ``advance`` ages pending work
    (deadlines, wedge detection, span durations) without a real wait.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def monotonic(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        self.advance(seconds)

    def advance(self, seconds: float) -> float:
        """Move the clock forward; returns the new time."""
        if seconds < 0:
            raise ValueError("cannot advance a monotonic clock backwards")
        self._now += float(seconds)
        return self._now

    def __repr__(self) -> str:
        return f"FakeClock(now={self._now:g})"


#: Process-wide default clock; inject a :class:`FakeClock` in tests instead
#: of monkeypatching this.
SYSTEM_CLOCK: Clock = MonotonicClock()


@dataclass
class Stopwatch:
    """Accumulates wall-clock time across multiple start/stop cycles."""

    elapsed: float = 0.0
    clock: Clock = field(default=SYSTEM_CLOCK, repr=False)
    _started_at: float | None = field(default=None, repr=False)

    def start(self) -> None:
        if self._started_at is not None:
            raise RuntimeError("stopwatch is already running")
        self._started_at = self.clock.monotonic()

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("stopwatch is not running")
        delta = self.clock.monotonic() - self._started_at
        self.elapsed += delta
        self._started_at = None
        return delta

    def reset(self) -> None:
        self.elapsed = 0.0
        self._started_at = None

    @property
    def running(self) -> bool:
        return self._started_at is not None


class Timer:
    """Named timer registry, e.g. to split index construction into phases."""

    def __init__(self, clock: Clock = SYSTEM_CLOCK) -> None:
        self._clock = clock
        self._watches: dict[str, Stopwatch] = {}

    @contextmanager
    def measure(self, name: str) -> Iterator[Stopwatch]:
        watch = self._watches.setdefault(name, Stopwatch(clock=self._clock))
        watch.start()
        try:
            yield watch
        finally:
            watch.stop()

    def elapsed(self, name: str) -> float:
        """Total seconds accumulated under ``name`` (0.0 if never measured)."""
        watch = self._watches.get(name)
        return watch.elapsed if watch else 0.0

    def as_dict(self) -> dict[str, float]:
        return {name: watch.elapsed for name, watch in self._watches.items()}


def time_call(
    func: Callable[..., object], *args: object, repeat: int = 1, **kwargs: object
) -> tuple[float, object]:
    """Call ``func`` ``repeat`` times and return (average seconds, last result)."""
    if repeat < 1:
        raise ValueError("repeat must be at least 1")
    result = None
    started = time.perf_counter()
    for _ in range(repeat):
        result = func(*args, **kwargs)
    elapsed = (time.perf_counter() - started) / repeat
    return elapsed, result
