"""Experiment runners — one function per table/figure of the paper.

Every runner returns a list of plain dict rows (easy to assert on, print, or
dump to CSV) and accepts knobs that trade fidelity for wall-clock time:

* ``num_pairs`` / ``num_intervals`` — workload size (paper: 1 000 × 10),
* ``profile_pairs`` — how many pairs get the expensive cost-*function* query,
* ``c_values`` — the interpolation-point sweep (paper: 2..6),
* ``datasets`` — which catalog entries to run.

Built indexes are cached per ``(dataset, c, method)`` within the process so
that e.g. the Fig. 8 (query time) and Fig. 9 (construction cost) runners reuse
the same builds, exactly like a single experimental campaign would.

Method names are the paper's (``TD-appro``, ``TD-G-tree``, ...), resolved
through :data:`repro.experiments.metrics.METHODS` — which is derived from the
:mod:`repro.api` engine registry, so a newly registered engine with a
``paper_name`` shows up in these runners without touching this module.  Each
built method is a :class:`repro.api.Engine`; optional measurements (profile,
batch) are gated on its capability flags instead of ``hasattr`` probing.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.datasets.catalog import get_spec, load_dataset
from repro.datasets.queries import generate_pairs, generate_queries
from repro.experiments.metrics import (
    BuildMeasurement,
    engine_supports,
    measure_build,
    measure_cost_queries,
    measure_cost_queries_batch,
    measure_profile_queries,
)

__all__ = [
    "clear_build_cache",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "run_fig11",
    "run_utility_ablation",
    "run_simplification_ablation",
]

#: Cache of BuildMeasurement keyed by (dataset, c, method, budget_fraction).
_BUILD_CACHE: dict[tuple[str, int, str, float | None], BuildMeasurement] = {}


def clear_build_cache() -> None:
    """Drop all cached index builds (used between test sessions)."""
    _BUILD_CACHE.clear()


def _built(
    method: str,
    dataset: str,
    num_points: int,
    *,
    budget_fraction: float | None = None,
    **kwargs,
) -> BuildMeasurement:
    key = (dataset, num_points, method, budget_fraction)
    if key not in _BUILD_CACHE:
        graph = load_dataset(dataset, num_points=num_points)
        build_kwargs = dict(kwargs)
        if budget_fraction is not None and method in ("TD-dp", "TD-appro"):
            build_kwargs["budget_fraction"] = budget_fraction
        _BUILD_CACHE[key] = measure_build(
            method, graph, dataset=dataset, num_points=num_points, **build_kwargs
        )
    return _BUILD_CACHE[key]


def _default_fraction(dataset: str) -> float:
    return get_spec(dataset).default_budget_fraction


# ----------------------------------------------------------------------
# Table 2 — dataset statistics
# ----------------------------------------------------------------------
def run_table2(
    datasets: Sequence[str] = ("CAL", "SF", "COL", "FLA", "W-USA"),
    *,
    num_points: int = 3,
) -> list[dict]:
    """Dataset statistics: vertices, edges, treeheight, treewidth, default N.

    The paper's columns are reported twice: once for the original road network
    (from Table 2 verbatim) and once for the scaled stand-in actually used.
    """
    rows = []
    for name in datasets:
        spec = get_spec(name)
        build = _built("TD-basic", name, num_points)
        index = build.index
        stats = index.statistics()
        catalog_build = _built(
            "TD-appro", name, num_points, budget_fraction=_default_fraction(name)
        )
        rows.append(
            {
                "dataset": name,
                "paper_vertices": spec.paper_vertices,
                "paper_edges": spec.paper_edges,
                "paper_budget_N": spec.paper_budget,
                "scaled_vertices": stats.num_vertices,
                "scaled_edges": stats.num_edges,
                "treeheight": stats.treeheight,
                "treewidth": stats.treewidth,
                "scaled_budget_N": catalog_build.index.selection.budget,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Tables 3 and 4 — query cost / construction / memory on CAL and W-USA
# ----------------------------------------------------------------------
def _method_summary_rows(
    dataset: str,
    methods: Sequence[str],
    *,
    num_points: int,
    num_pairs: int,
    num_intervals: int,
    profile_pairs: int,
    skip: Iterable[str] = (),
) -> list[dict]:
    graph = load_dataset(dataset, num_points=num_points)
    workload = generate_queries(
        graph,
        num_pairs=num_pairs,
        num_intervals=num_intervals,
        seed=get_spec(dataset).seed,
        dataset=dataset,
    )
    pairs = workload.pairs()[:profile_pairs]
    rows = []
    for method in methods:
        if method in skip:
            rows.append(
                {
                    "method": method,
                    "dataset": dataset,
                    "cost_query_ms": "N/A",
                    "profile_query_ms": "N/A",
                    "construction_s": "N/A",
                    "memory_mb": "N/A",
                }
            )
            continue
        build = _built(
            method,
            dataset,
            num_points,
            budget_fraction=_default_fraction(dataset),
        )
        cost = measure_cost_queries(
            build.index, workload, method=method, dataset=dataset, num_points=num_points
        )
        if engine_supports(build.index, "profile"):
            profile = measure_profile_queries(
                build.index, pairs, method=method, dataset=dataset, num_points=num_points
            )
            profile_ms: float | str = profile.mean_ms
        else:
            profile_ms = "N/A"
        rows.append(
            {
                "method": method,
                "dataset": dataset,
                "cost_query_ms": cost.mean_ms,
                "profile_query_ms": profile_ms,
                "construction_s": build.build_seconds,
                "memory_mb": build.memory_mb,
            }
        )
    return rows


def run_table3(
    *,
    num_points: int = 3,
    num_pairs: int = 60,
    num_intervals: int = 5,
    profile_pairs: int = 10,
    methods: Sequence[str] = ("TD-G-tree", "TD-H2H", "TD-basic"),
) -> list[dict]:
    """Table 3: query cost, construction time and memory of the baselines on CAL."""
    return _method_summary_rows(
        "CAL",
        methods,
        num_points=num_points,
        num_pairs=num_pairs,
        num_intervals=num_intervals,
        profile_pairs=profile_pairs,
    )


def run_table4(
    *,
    num_points: int = 2,
    num_pairs: int = 40,
    num_intervals: int = 5,
    profile_pairs: int = 6,
    methods: Sequence[str] = ("TD-G-tree", "TD-H2H", "TD-basic"),
    include_h2h: bool = False,
) -> list[dict]:
    """Table 4: the same comparison on the largest dataset (W-USA, c=2).

    The paper reports TD-H2H as N/A on W-USA because its index exceeds memory;
    at reduced scale it *can* be built, so by default it is skipped to mirror
    the paper (pass ``include_h2h=True`` to measure it anyway).
    """
    skip = () if include_h2h else ("TD-H2H",)
    return _method_summary_rows(
        "W-USA",
        methods,
        num_points=num_points,
        num_pairs=num_pairs,
        num_intervals=num_intervals,
        profile_pairs=profile_pairs,
        skip=skip,
    )


# ----------------------------------------------------------------------
# Fig. 8 — query efficiency vs c
# ----------------------------------------------------------------------
def run_fig8(
    datasets: Sequence[str] = ("CAL", "SF", "COL", "FLA"),
    c_values: Sequence[int] = (2, 3, 4, 5, 6),
    *,
    num_pairs: int = 40,
    num_intervals: int = 5,
    profile_pairs: int = 8,
    methods: Sequence[str] | None = None,
) -> list[dict]:
    """Fig. 8: travel-cost and cost-function query time vs ``c``.

    On CAL the paper compares TD-G-tree / TD-basic / TD-H2H (panels a-b); on
    the larger datasets it compares TD-G-tree / TD-appro / TD-dp (panels c-h).
    ``methods=None`` applies that same split automatically.

    Methods exposing the batch API additionally serve the same workload
    through one :meth:`TDTreeIndex.batch_query` call; the amortised per-query
    latency and the speedup over the per-call loop are reported in the
    ``batch_cost_query_ms`` / ``batch_speedup`` columns.
    """
    rows = []
    for dataset in datasets:
        dataset_methods = methods
        if dataset_methods is None:
            dataset_methods = (
                ("TD-G-tree", "TD-basic", "TD-H2H")
                if dataset == "CAL"
                else ("TD-G-tree", "TD-appro", "TD-dp")
            )
        for c in c_values:
            graph = load_dataset(dataset, num_points=c)
            workload = generate_queries(
                graph,
                num_pairs=num_pairs,
                num_intervals=num_intervals,
                seed=get_spec(dataset).seed + c,
                dataset=dataset,
            )
            pairs = workload.pairs()[:profile_pairs]
            for method in dataset_methods:
                build = _built(
                    method,
                    dataset,
                    c,
                    budget_fraction=_default_fraction(dataset),
                )
                cost = measure_cost_queries(build.index, workload)
                batch_ms: float | str = "N/A"
                speedup: float | str = "N/A"
                if engine_supports(build.index, "batch"):
                    batch = measure_cost_queries_batch(build.index, workload)
                    batch_ms = batch.mean_ms
                    if batch.mean_ms > 0:
                        speedup = cost.mean_ms / batch.mean_ms
                profile_ms: float | str = "N/A"
                if engine_supports(build.index, "profile"):
                    profile_ms = measure_profile_queries(build.index, pairs).mean_ms
                rows.append(
                    {
                        "dataset": dataset,
                        "method": method,
                        "c": c,
                        "cost_query_ms": cost.mean_ms,
                        "batch_cost_query_ms": batch_ms,
                        "batch_speedup": speedup,
                        "profile_query_ms": profile_ms,
                    }
                )
    return rows


# ----------------------------------------------------------------------
# Fig. 9 — construction time and memory vs c
# ----------------------------------------------------------------------
def run_fig9(
    datasets: Sequence[str] = ("SF", "COL", "FLA"),
    c_values: Sequence[int] = (2, 3, 4, 5, 6),
    *,
    methods: Sequence[str] = ("TD-G-tree", "TD-appro", "TD-dp"),
) -> list[dict]:
    """Fig. 9: index construction time and memory footprint vs ``c``."""
    rows = []
    for dataset in datasets:
        for c in c_values:
            for method in methods:
                build = _built(
                    method,
                    dataset,
                    c,
                    budget_fraction=_default_fraction(dataset),
                )
                rows.append(
                    {
                        "dataset": dataset,
                        "method": method,
                        "c": c,
                        "construction_s": build.build_seconds,
                        "memory_mb": build.memory_mb,
                    }
                )
    return rows


# ----------------------------------------------------------------------
# Fig. 10 — index update cost
# ----------------------------------------------------------------------
def run_fig10(
    dataset: str = "SF",
    update_counts: Sequence[int] = (2, 10, 50, 200, 500),
    *,
    num_points: int = 3,
    seed: int = 7,
) -> list[dict]:
    """Fig. 10: incremental update cost of TD-appro vs number of changed edges.

    The paper updates 10 … 100 000 edges of SF; the counts are scaled to the
    stand-in network (its edge count is ~3 orders of magnitude smaller).
    """
    import numpy as np

    from repro.graph.weights import WeightGenerator

    rows = []
    for count in update_counts:
        graph = load_dataset(dataset, num_points=num_points)
        build = measure_build(
            "TD-appro",
            graph,
            dataset=dataset,
            num_points=num_points,
            budget_fraction=_default_fraction(dataset),
        )
        index = build.index
        rng = np.random.default_rng(seed + count)
        perturber = WeightGenerator(num_points, seed=seed + count)
        edges = list(graph.edges())
        chosen = rng.choice(len(edges), size=min(count, len(edges)), replace=False)
        changes = {}
        for edge_idx in chosen:
            u, v, weight = edges[int(edge_idx)]
            changes[(u, v)] = perturber.perturbed(weight)
        report = index.update_edges(changes)
        rows.append(
            {
                "dataset": dataset,
                "num_updated_edges": int(len(changes)),
                "update_seconds": report.seconds,
                "dirty_vertices": report.num_dirty_vertices,
                "refreshed_shortcut_nodes": report.num_refreshed_shortcut_nodes,
                "full_rebuild_seconds": build.build_seconds,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Fig. 11 — effect of the budget N
# ----------------------------------------------------------------------
def run_fig11(
    dataset: str = "FLA",
    budget_fractions: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5),
    *,
    num_points: int = 3,
    num_pairs: int = 40,
    num_intervals: int = 5,
    profile_pairs: int = 8,
) -> list[dict]:
    """Fig. 11: query time and memory of TD-appro as the budget ``N`` grows."""
    rows = []
    graph = load_dataset(dataset, num_points=num_points)
    workload = generate_queries(
        graph,
        num_pairs=num_pairs,
        num_intervals=num_intervals,
        seed=get_spec(dataset).seed,
        dataset=dataset,
    )
    pairs = workload.pairs()[:profile_pairs]
    for fraction in budget_fractions:
        build = _built(
            "TD-appro",
            dataset,
            num_points,
            budget_fraction=fraction,
        )
        cost = measure_cost_queries(build.index, workload)
        profile = measure_profile_queries(build.index, pairs)
        rows.append(
            {
                "dataset": dataset,
                "budget_fraction": fraction,
                "budget_N": build.index.selection.budget,
                "cost_query_ms": cost.mean_ms,
                "profile_query_ms": profile.mean_ms,
                "memory_mb": build.memory_mb,
                "selected_pairs": len(build.index.shortcuts),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Ablations (design choices called out in DESIGN.md)
# ----------------------------------------------------------------------
def run_utility_ablation(
    dataset: str = "CAL",
    *,
    num_points: int = 3,
    budget_fraction: float = 0.3,
    num_pairs: int = 40,
    num_intervals: int = 5,
) -> list[dict]:
    """Ablation: how much the utility definition (Def. 7) matters.

    Compares the paper's utility (height gap × treewidth × coverage
    probability) against two strawmen — coverage-only and uniform utilities —
    by re-running the greedy selection with rewritten utilities and measuring
    the resulting query time under the same budget.
    """
    from repro.api import TDTreeEngine
    from repro.core.index import TDTreeIndex
    from repro.core.selection import budget_from_fraction, select_greedy
    from repro.core.shortcuts import build_shortcut_catalog
    from repro.core.tree_decomposition import decompose

    graph = load_dataset(dataset, num_points=num_points)
    workload = generate_queries(
        graph,
        num_pairs=num_pairs,
        num_intervals=num_intervals,
        seed=get_spec(dataset).seed,
        dataset=dataset,
    )
    tree = decompose(graph, max_points=16)
    catalog = build_shortcut_catalog(tree, max_points=16)
    budget = budget_from_fraction(catalog, budget_fraction)

    def index_with(utilities: dict[tuple[int, int], float], label: str) -> dict:
        for pair in catalog:
            pair.utility = utilities[pair.key]
        selection = select_greedy(catalog, budget)
        shortcuts = {key: catalog.pairs[key] for key in selection.selected}
        index = TDTreeIndex(
            graph,
            tree,
            shortcuts,
            strategy="approx",
            selection=selection,
            catalog_size=len(catalog),
            max_points=16,
        )
        cost = measure_cost_queries(TDTreeEngine(index, name="td-appro"), workload)
        return {
            "dataset": dataset,
            "utility": label,
            "budget_N": budget,
            "selected_pairs": len(shortcuts),
            "cost_query_ms": cost.mean_ms,
        }

    paper_utilities = {pair.key: pair.utility for pair in catalog}
    coverage_only = {
        pair.key: pair.utility / max(tree.height(pair.lower) - tree.height(pair.upper), 1)
        for pair in catalog
    }
    uniform = {pair.key: 1.0 for pair in catalog}

    rows = [
        index_with(paper_utilities, "paper (height-gap x coverage)"),
        index_with(coverage_only, "coverage only"),
        index_with(uniform, "uniform"),
    ]
    # Restore the paper utilities so the cached catalog stays consistent.
    for pair in catalog:
        pair.utility = paper_utilities[pair.key]
    return rows


def run_simplification_ablation(
    dataset: str = "CAL",
    max_points_values: Sequence[int | None] = (8, 16, 32, None),
    *,
    num_points: int = 3,
    num_pairs: int = 30,
    num_intervals: int = 4,
    accuracy_pairs: int = 15,
) -> list[dict]:
    """Ablation: PLF simplification cap vs index size, speed and accuracy."""
    from repro.api import create_engine
    from repro.baselines.td_dijkstra import earliest_arrival

    graph = load_dataset(dataset, num_points=num_points)
    workload = generate_queries(
        graph,
        num_pairs=num_pairs,
        num_intervals=num_intervals,
        seed=get_spec(dataset).seed,
        dataset=dataset,
    )
    accuracy_queries = list(workload)[: accuracy_pairs]
    references = {
        (q.source, q.target, q.departure): earliest_arrival(
            graph, q.source, q.target, q.departure
        ).cost
        for q in accuracy_queries
    }
    rows = []
    for cap in max_points_values:
        import time

        started = time.perf_counter()
        engine = create_engine(
            "td-appro", graph, budget_fraction=0.3, max_points=cap
        )
        build_seconds = time.perf_counter() - started
        cost = measure_cost_queries(engine, workload)
        max_rel_error = 0.0
        for query in accuracy_queries:
            got = engine.query(query.source, query.target, query.departure).cost
            reference = references[(query.source, query.target, query.departure)]
            if reference > 0:
                max_rel_error = max(max_rel_error, abs(got - reference) / reference)
        rows.append(
            {
                "dataset": dataset,
                "max_points": "exact" if cap is None else cap,
                "construction_s": build_seconds,
                "memory_mb": engine.memory_breakdown().total_megabytes,
                "cost_query_ms": cost.mean_ms,
                "max_relative_error": max_rel_error,
            }
        )
    return rows
