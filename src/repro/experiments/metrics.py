"""Measurement helpers shared by all experiment runners.

The compared methods are no longer declared here: :data:`METHODS` is derived
from the :mod:`repro.api` engine registry — every registered engine that
carries a ``paper_name`` (the name used in the paper's evaluation tables)
becomes a row source for the runners.  Registering a third-party engine with
``register_engine(..., paper_name="My-method")`` is therefore enough to get
it measured by every table/figure runner next to the built-in nine.

Builders returned by :func:`build_method` are :class:`repro.api.Engine`
adapters: one typed ``query`` / ``profile`` / ``batch_query`` surface across
the index configurations and the index-free baselines, with capability flags
replacing the old ``hasattr`` probing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.api import (
    Engine,
    EngineEntry,
    create_engine,
    engine_supports,
    registered_engines,
)
from repro.datasets.queries import Query
from repro.exceptions import DatasetError
from repro.graph.td_graph import TDGraph

__all__ = [
    "METHODS",
    "BuildMeasurement",
    "QueryMeasurement",
    "build_method",
    "engine_supports",
    "measure_build",
    "measure_cost_queries",
    "measure_cost_queries_batch",
    "measure_profile_queries",
]

#: The experiment campaign caps stored functions at 16 interpolation points
#: (the historical harness default) unless a runner overrides it.
_EXPERIMENT_DEFAULTS: dict[str, object] = {"max_points": 16}


def _registry_factory(entry: EngineEntry) -> Callable[..., Engine]:
    """Wrap a registry entry as a tolerant experiment builder.

    The runners pass one uniform kwargs dict to every method (budget
    fractions included); options an engine does not take are dropped here —
    the *strict* surface is :func:`repro.api.create_engine`, this wrapper
    mirrors how the paper's harness applies each knob only where it exists.
    A ``**options`` factory accepts everything, so nothing is dropped for it.
    """
    takes_anything = entry.accepts_any_option()
    accepted = set(entry.accepted_options())

    def factory(graph: TDGraph, **kwargs) -> Engine:
        options = dict(_EXPERIMENT_DEFAULTS)
        options.update(kwargs)
        if not takes_anything:
            options = {k: v for k, v in options.items() if k in accepted}
        return create_engine(entry.name, graph, **options)

    factory.__name__ = f"build_{entry.name.replace('-', '_')}"
    return factory


class _MethodTable(Mapping[str, Callable[..., Engine]]):
    """Live paper-name -> builder view of the engine registry.

    Reading through to the registry (rather than snapshotting at import
    time) means an engine registered *after* this module was imported —
    directly or via a ``repro.engines`` entry point — shows up in the
    experiment runners immediately, as the docs promise.  The built table is
    cached against the registry's mutation counter, so the signature
    inspection only re-runs when the registry actually changed.
    """

    def __init__(self) -> None:
        self._cache: tuple[int, dict[str, Callable[..., Engine]]] | None = None

    def _snapshot(self) -> dict[str, Callable[..., Engine]]:
        from repro.api.registry import registry_version

        cached = self._cache
        if cached is not None and cached[0] == registry_version():
            return cached[1]
        table = {
            entry.paper_name: _registry_factory(entry)
            for entry in registered_engines()
            if entry.paper_name is not None
        }
        # Read the version *after* building: registered_engines() may have
        # scanned entry points and registered more engines along the way.
        self._cache = (registry_version(), table)
        return table

    def __getitem__(self, name: str) -> Callable[..., Engine]:
        return self._snapshot()[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._snapshot())

    def __len__(self) -> int:
        return len(self._snapshot())

    def __repr__(self) -> str:
        return f"_MethodTable({list(self._snapshot())})"


#: Paper-table method name -> engine builder, derived live from the registry.
METHODS: Mapping[str, Callable[..., Engine]] = _MethodTable()


# engine_supports is imported above and re-exported via __all__: the
# implementation lives next to the Engine protocol (repro.api.engine) so the
# serving layer and the experiment runners share one capability probe.


@dataclass
class BuildMeasurement:
    """Construction time and memory of one built index."""

    method: str
    dataset: str
    num_points: int
    build_seconds: float
    memory_mb: float
    index: object = field(repr=False, default=None)


@dataclass
class QueryMeasurement:
    """Average latency over a query batch."""

    method: str
    dataset: str
    num_points: int
    kind: str  # "cost" or "profile"
    num_queries: int
    mean_ms: float
    total_seconds: float


def build_method(name: str, graph: TDGraph, **kwargs):
    """Build the method registered under ``name`` over ``graph``."""
    if name not in METHODS:
        raise DatasetError(f"unknown method {name!r}; available: {', '.join(METHODS)}")
    return METHODS[name](graph, **kwargs)


def measure_build(
    name: str,
    graph: TDGraph,
    *,
    dataset: str = "",
    num_points: int = 3,
    **kwargs,
) -> BuildMeasurement:
    """Build a method and record wall-clock time plus modelled memory."""
    started = time.perf_counter()
    index = build_method(name, graph, **kwargs)
    seconds = time.perf_counter() - started
    memory = index.memory_breakdown().total_megabytes if hasattr(index, "memory_breakdown") else 0.0
    return BuildMeasurement(
        method=name,
        dataset=dataset,
        num_points=num_points,
        build_seconds=seconds,
        memory_mb=memory,
        index=index,
    )


def measure_cost_queries(
    index,
    queries: Iterable[Query],
    *,
    method: str = "",
    dataset: str = "",
    num_points: int = 3,
) -> QueryMeasurement:
    """Average latency of scalar travel-cost queries over a workload."""
    batch = list(queries)
    started = time.perf_counter()
    for query in batch:
        index.query(query.source, query.target, query.departure)
    total = time.perf_counter() - started
    return QueryMeasurement(
        method=method,
        dataset=dataset,
        num_points=num_points,
        kind="cost",
        num_queries=len(batch),
        mean_ms=total * 1000.0 / max(len(batch), 1),
        total_seconds=total,
    )


def measure_cost_queries_batch(
    index,
    queries: Iterable[Query],
    *,
    method: str = "",
    dataset: str = "",
    num_points: int = 3,
) -> QueryMeasurement:
    """Latency of the same scalar workload served through the batch API.

    The whole workload is submitted as one :meth:`TDTreeIndex.batch_query`
    call (the serving pattern the batch engine exists for); the reported
    ``mean_ms`` is the amortised per-query latency, directly comparable to
    :func:`measure_cost_queries`.  A warm-up call is made first so the
    one-time label packing/plan building is excluded — the scalar loop's
    numbers equally benefit from caches warmed by earlier measurements.
    """
    batch = list(queries)
    sources = np.array([q.source for q in batch], dtype=np.int64)
    targets = np.array([q.target for q in batch], dtype=np.int64)
    departures = np.array([q.departure for q in batch], dtype=np.float64)
    index.batch_query(sources, targets, departures)  # warm-up
    started = time.perf_counter()
    index.batch_query(sources, targets, departures)
    total = time.perf_counter() - started
    return QueryMeasurement(
        method=method,
        dataset=dataset,
        num_points=num_points,
        kind="cost-batch",
        num_queries=len(batch),
        mean_ms=total * 1000.0 / max(len(batch), 1),
        total_seconds=total,
    )


def measure_profile_queries(
    index,
    pairs: Sequence[tuple[int, int]],
    *,
    method: str = "",
    dataset: str = "",
    num_points: int = 3,
) -> QueryMeasurement:
    """Average latency of shortest-travel-cost-function queries over pairs."""
    started = time.perf_counter()
    for source, target in pairs:
        index.profile(source, target)
    total = time.perf_counter() - started
    return QueryMeasurement(
        method=method,
        dataset=dataset,
        num_points=num_points,
        kind="profile",
        num_queries=len(pairs),
        mean_ms=total * 1000.0 / max(len(pairs), 1),
        total_seconds=total,
    )
