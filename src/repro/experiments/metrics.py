"""Measurement helpers shared by all experiment runners.

Each compared method is registered here with a uniform ``build`` signature so
the per-table runners can loop over method names exactly like the paper's
evaluation loops over its five algorithms:

======================= ======================================================
paper name               implementation
======================= ======================================================
``TD-G-tree``            :class:`repro.baselines.TDGTree`
``TD-H2H``               :class:`repro.baselines.TDH2H` (full shortcuts)
``TD-basic``             :class:`repro.core.TDTreeIndex` with ``strategy="basic"``
``TD-dp``                :class:`repro.core.TDTreeIndex` with ``strategy="dp"``
``TD-appro``             :class:`repro.core.TDTreeIndex` with ``strategy="approx"``
``TD-Dijkstra``          :class:`repro.baselines.TDDijkstra` (no index)
``TD-A*``                :class:`repro.baselines.TDAStar` (no index)
======================= ======================================================
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.baselines.td_astar import TDAStar
from repro.baselines.td_dijkstra import TDDijkstra
from repro.baselines.td_h2h import TDH2H
from repro.baselines.tdg_tree import TDGTree
from repro.core.index import TDTreeIndex
from repro.datasets.queries import Query
from repro.exceptions import DatasetError
from repro.graph.td_graph import TDGraph

__all__ = [
    "METHODS",
    "BuildMeasurement",
    "QueryMeasurement",
    "build_method",
    "measure_build",
    "measure_cost_queries",
    "measure_cost_queries_batch",
    "measure_profile_queries",
]


def _build_td_tree(strategy: str) -> Callable[..., TDTreeIndex]:
    def factory(graph: TDGraph, **kwargs) -> TDTreeIndex:
        kwargs.setdefault("max_points", 16)
        return TDTreeIndex.build(graph, strategy=strategy, **kwargs)

    return factory


def _build_gtree(graph: TDGraph, **kwargs) -> TDGTree:
    kwargs.pop("budget_fraction", None)
    kwargs.pop("budget", None)
    kwargs.setdefault("max_points", 16)
    return TDGTree.build(graph, **kwargs)


def _build_h2h(graph: TDGraph, **kwargs) -> TDH2H:
    kwargs.pop("budget_fraction", None)
    kwargs.pop("budget", None)
    kwargs.setdefault("max_points", 16)
    return TDH2H.build(graph, **kwargs)


def _build_dijkstra(graph: TDGraph, **kwargs) -> TDDijkstra:
    return TDDijkstra.build(graph)


def _build_astar(graph: TDGraph, **kwargs) -> TDAStar:
    return TDAStar.build(graph)


#: Registry of method name -> build callable.
METHODS: dict[str, Callable[..., object]] = {
    "TD-G-tree": _build_gtree,
    "TD-H2H": _build_h2h,
    "TD-basic": _build_td_tree("basic"),
    "TD-dp": _build_td_tree("dp"),
    "TD-appro": _build_td_tree("approx"),
    "TD-Dijkstra": _build_dijkstra,
    "TD-A*": _build_astar,
}


@dataclass
class BuildMeasurement:
    """Construction time and memory of one built index."""

    method: str
    dataset: str
    num_points: int
    build_seconds: float
    memory_mb: float
    index: object = field(repr=False, default=None)


@dataclass
class QueryMeasurement:
    """Average latency over a query batch."""

    method: str
    dataset: str
    num_points: int
    kind: str  # "cost" or "profile"
    num_queries: int
    mean_ms: float
    total_seconds: float


def build_method(name: str, graph: TDGraph, **kwargs):
    """Build the method registered under ``name`` over ``graph``."""
    if name not in METHODS:
        raise DatasetError(f"unknown method {name!r}; available: {', '.join(METHODS)}")
    return METHODS[name](graph, **kwargs)


def measure_build(
    name: str,
    graph: TDGraph,
    *,
    dataset: str = "",
    num_points: int = 3,
    **kwargs,
) -> BuildMeasurement:
    """Build a method and record wall-clock time plus modelled memory."""
    started = time.perf_counter()
    index = build_method(name, graph, **kwargs)
    seconds = time.perf_counter() - started
    memory = index.memory_breakdown().total_megabytes if hasattr(index, "memory_breakdown") else 0.0
    return BuildMeasurement(
        method=name,
        dataset=dataset,
        num_points=num_points,
        build_seconds=seconds,
        memory_mb=memory,
        index=index,
    )


def measure_cost_queries(
    index,
    queries: Iterable[Query],
    *,
    method: str = "",
    dataset: str = "",
    num_points: int = 3,
) -> QueryMeasurement:
    """Average latency of scalar travel-cost queries over a workload."""
    batch = list(queries)
    started = time.perf_counter()
    for query in batch:
        index.query(query.source, query.target, query.departure)
    total = time.perf_counter() - started
    return QueryMeasurement(
        method=method,
        dataset=dataset,
        num_points=num_points,
        kind="cost",
        num_queries=len(batch),
        mean_ms=total * 1000.0 / max(len(batch), 1),
        total_seconds=total,
    )


def measure_cost_queries_batch(
    index,
    queries: Iterable[Query],
    *,
    method: str = "",
    dataset: str = "",
    num_points: int = 3,
) -> QueryMeasurement:
    """Latency of the same scalar workload served through the batch API.

    The whole workload is submitted as one :meth:`TDTreeIndex.batch_query`
    call (the serving pattern the batch engine exists for); the reported
    ``mean_ms`` is the amortised per-query latency, directly comparable to
    :func:`measure_cost_queries`.  A warm-up call is made first so the
    one-time label packing/plan building is excluded — the scalar loop's
    numbers equally benefit from caches warmed by earlier measurements.
    """
    batch = list(queries)
    sources = np.array([q.source for q in batch], dtype=np.int64)
    targets = np.array([q.target for q in batch], dtype=np.int64)
    departures = np.array([q.departure for q in batch], dtype=np.float64)
    index.batch_query(sources, targets, departures)  # warm-up
    started = time.perf_counter()
    index.batch_query(sources, targets, departures)
    total = time.perf_counter() - started
    return QueryMeasurement(
        method=method,
        dataset=dataset,
        num_points=num_points,
        kind="cost-batch",
        num_queries=len(batch),
        mean_ms=total * 1000.0 / max(len(batch), 1),
        total_seconds=total,
    )


def measure_profile_queries(
    index,
    pairs: Sequence[tuple[int, int]],
    *,
    method: str = "",
    dataset: str = "",
    num_points: int = 3,
) -> QueryMeasurement:
    """Average latency of shortest-travel-cost-function queries over pairs."""
    started = time.perf_counter()
    for source, target in pairs:
        index.profile(source, target)
    total = time.perf_counter() - started
    return QueryMeasurement(
        method=method,
        dataset=dataset,
        num_points=num_points,
        kind="profile",
        num_queries=len(pairs),
        mean_ms=total * 1000.0 / max(len(pairs), 1),
        total_seconds=total,
    )
