"""Plain-text and CSV rendering of experiment results.

The paper reports results as tables (Tables 2-4) and line charts (Figs 8-11).
A terminal reproduction cannot draw the charts, so every figure is rendered as
the table of series it plots: one row per (dataset, method, x-value) with the
measured y-value — which is also the most convenient form for regression
checks and for re-plotting with any external tool.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, Mapping, Sequence

__all__ = ["format_table", "rows_to_csv", "write_csv", "format_series"]


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    *,
    title: str = "",
    float_format: str = "{:.3f}",
) -> str:
    """Render a list of dict rows as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    table = [[render(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), *(len(line[i]) for line in table))
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for line in table:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)))
    return "\n".join(lines)


def rows_to_csv(
    rows: Sequence[Mapping[str, object]], columns: Sequence[str] | None = None
) -> str:
    """Serialise dict rows as CSV text."""
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(columns), extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow(dict(row))
    return buffer.getvalue()


def write_csv(
    rows: Sequence[Mapping[str, object]],
    path: str | Path,
    columns: Sequence[str] | None = None,
) -> None:
    """Write dict rows to a CSV file."""
    Path(path).write_text(rows_to_csv(rows, columns), encoding="utf-8")


def format_series(
    rows: Iterable[Mapping[str, object]],
    *,
    x: str,
    y: str,
    series: str,
    float_format: str = "{:.3f}",
) -> str:
    """Render figure data as one line per series: ``name: y@x1, y@x2, ...``."""
    grouped: dict[str, list[tuple[object, object]]] = {}
    for row in rows:
        grouped.setdefault(str(row[series]), []).append((row[x], row[y]))
    lines = []
    for name in sorted(grouped):
        points = ", ".join(
            f"{float_format.format(value) if isinstance(value, float) else value}@{key}"
            for key, value in grouped[name]
        )
        lines.append(f"{name}: {points}")
    return "\n".join(lines)
