"""Experiment harness: one runner per table/figure of the paper's evaluation."""

from repro.experiments.metrics import (
    METHODS,
    BuildMeasurement,
    QueryMeasurement,
    build_method,
    engine_supports,
    measure_build,
    measure_cost_queries,
    measure_cost_queries_batch,
    measure_profile_queries,
)
from repro.experiments.reporting import format_series, format_table, rows_to_csv, write_csv
from repro.experiments.runner import (
    clear_build_cache,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
    run_simplification_ablation,
    run_table2,
    run_table3,
    run_table4,
    run_utility_ablation,
)

__all__ = [
    "METHODS",
    "BuildMeasurement",
    "QueryMeasurement",
    "build_method",
    "engine_supports",
    "measure_build",
    "measure_cost_queries",
    "measure_cost_queries_batch",
    "measure_profile_queries",
    "format_table",
    "format_series",
    "rows_to_csv",
    "write_csv",
    "clear_build_cache",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "run_fig11",
    "run_utility_ablation",
    "run_simplification_ablation",
]
