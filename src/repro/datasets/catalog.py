"""Scaled dataset catalog mirroring the paper's Table 2.

The paper evaluates on five DIMACS road networks (California, San Francisco,
Colorado, Florida, Western USA) with 21k to 6.2M vertices.  Building
tree-decomposition indexes over graphs of that size is infeasible in pure
Python, so the catalog ships *scaled* synthetic stand-ins: planar road-like
networks whose relative sizes, and therefore the relative behaviour of the
compared methods, mirror the originals.  Every entry records the paper's
original statistics next to the scaled ones so the generated Table 2 can show
both side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import DatasetError
from repro.graph.generators import (
    grid_network,
    random_geometric_network,
    ring_radial_network,
)
from repro.graph.td_graph import TDGraph

__all__ = ["DatasetSpec", "CATALOG", "dataset_names", "load_dataset", "get_spec"]


@dataclass(frozen=True)
class DatasetSpec:
    """One entry of the dataset catalog."""

    #: Short name used throughout the experiments (matches the paper).
    name: str
    #: Human-readable description of the original dataset.
    description: str
    #: Topology generator: "grid", "delaunay" or "ring".
    kind: str
    #: Size parameter passed to the generator (grid side / vertex count / rings).
    size: int
    #: Seed making the dataset deterministic.
    seed: int
    #: Fraction of the total candidate-shortcut weight used as the default
    #: budget ``N`` (the paper states absolute interpolation-point budgets).
    default_budget_fraction: float
    #: Vertex / edge counts of the *original* road network (Table 2).
    paper_vertices: int
    paper_edges: int
    #: Budget the paper used for this dataset (interpolation points).
    paper_budget: str

    def generate(self, *, num_points: int = 3, seed_offset: int = 0) -> TDGraph:
        """Instantiate the scaled time-dependent road network."""
        seed = self.seed + seed_offset
        if self.kind == "grid":
            return grid_network(self.size, self.size, num_points=num_points, seed=seed)
        if self.kind == "delaunay":
            return random_geometric_network(
                self.size, num_points=num_points, seed=seed
            )
        if self.kind == "ring":
            return ring_radial_network(
                self.size, 3 * self.size, num_points=num_points, seed=seed
            )
        raise DatasetError(f"unknown dataset kind {self.kind!r}")


#: The five datasets of Table 2, scaled for a pure-Python reproduction.
CATALOG: dict[str, DatasetSpec] = {
    "CAL": DatasetSpec(
        name="CAL",
        description="California highway network (scaled stand-in: 10x10 grid city)",
        kind="grid",
        size=10,
        seed=101,
        default_budget_fraction=0.35,
        paper_vertices=21_048,
        paper_edges=43_386,
        paper_budget="10M",
    ),
    "SF": DatasetSpec(
        name="SF",
        description="San Francisco road network (scaled stand-in: 170-vertex planar net)",
        kind="delaunay",
        size=170,
        seed=202,
        default_budget_fraction=0.30,
        paper_vertices=321_270,
        paper_edges=800_172,
        paper_budget="20M",
    ),
    "COL": DatasetSpec(
        name="COL",
        description="Colorado road network (scaled stand-in: 230-vertex planar net)",
        kind="delaunay",
        size=230,
        seed=303,
        default_budget_fraction=0.30,
        paper_vertices=435_666,
        paper_edges=1_057_066,
        paper_budget="50M",
    ),
    "FLA": DatasetSpec(
        name="FLA",
        description="Florida road network (scaled stand-in: 300-vertex planar net)",
        kind="delaunay",
        size=300,
        seed=404,
        default_budget_fraction=0.30,
        paper_vertices=1_070_376,
        paper_edges=2_712_798,
        paper_budget="100M",
    ),
    "W-USA": DatasetSpec(
        name="W-USA",
        description="Western USA road network (scaled stand-in: 450-vertex planar net)",
        kind="delaunay",
        size=450,
        seed=505,
        default_budget_fraction=0.25,
        paper_vertices=6_262_104,
        paper_edges=15_248_146,
        paper_budget="200M",
    ),
}


def dataset_names() -> list[str]:
    """Names of all catalog datasets, in the paper's order."""
    return list(CATALOG)


def get_spec(name: str) -> DatasetSpec:
    """Look up a dataset spec by (case-insensitive) name."""
    key = name.upper()
    if key not in CATALOG:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {', '.join(CATALOG)}"
        )
    return CATALOG[key]


def load_dataset(name: str, *, num_points: int = 3, seed_offset: int = 0) -> TDGraph:
    """Generate the scaled stand-in network for dataset ``name``.

    Parameters
    ----------
    name:
        One of ``CAL``, ``SF``, ``COL``, ``FLA``, ``W-USA`` (case-insensitive).
    num_points:
        Interpolation points per edge (the paper's ``c`` parameter, 2-6).
    seed_offset:
        Added to the spec seed; lets tests instantiate independent copies.
    """
    if num_points < 1:
        raise DatasetError("num_points (the paper's c parameter) must be >= 1")
    return get_spec(name).generate(num_points=num_points, seed_offset=seed_offset)
