"""Query-workload generation (Section 5, "Datasets" paragraph).

The paper generates, per dataset, 1 000 random vertex pairs and replicates
each pair at 10 departure times drawn uniformly from 10 equal intervals of the
day, yielding 10 000 queries; the reported query times are averages over that
workload.  :func:`generate_queries` reproduces that scheme (with configurable
counts, because the scaled datasets use smaller workloads by default).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DatasetError
from repro.functions.profile import DAY_SECONDS
from repro.graph.td_graph import TDGraph

__all__ = ["Query", "QueryWorkload", "generate_queries", "generate_pairs"]


@dataclass(frozen=True)
class Query:
    """One shortest-path query ``Q(s, d, t)``."""

    source: int
    target: int
    departure: float


@dataclass
class QueryWorkload:
    """A reproducible batch of queries over one dataset."""

    dataset: str
    queries: list[Query]
    seed: int

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    def pairs(self) -> list[tuple[int, int]]:
        """Distinct (source, target) pairs in workload order."""
        seen: dict[tuple[int, int], None] = {}
        for query in self.queries:
            seen.setdefault((query.source, query.target), None)
        return list(seen)


def generate_pairs(
    graph: TDGraph, num_pairs: int, *, seed: int = 0
) -> list[tuple[int, int]]:
    """Draw ``num_pairs`` random distinct source/target pairs."""
    if num_pairs < 1:
        raise DatasetError("num_pairs must be positive")
    vertices = np.asarray(sorted(graph.vertices()))
    if vertices.size < 2:
        raise DatasetError("the graph needs at least two vertices to form queries")
    rng = np.random.default_rng(seed)
    pairs: list[tuple[int, int]] = []
    while len(pairs) < num_pairs:
        source, target = rng.choice(vertices, size=2, replace=False)
        pairs.append((int(source), int(target)))
    return pairs


def generate_queries(
    graph: TDGraph,
    *,
    num_pairs: int = 1000,
    num_intervals: int = 10,
    horizon: float = DAY_SECONDS,
    seed: int = 0,
    dataset: str = "",
) -> QueryWorkload:
    """Generate the paper's query workload over ``graph``.

    Each of the ``num_pairs`` random pairs is issued once per departure
    interval, with the departure time drawn uniformly inside the interval —
    exactly the construction described in Section 5 (1 000 pairs × 10
    intervals = 10 000 queries at full scale).
    """
    if num_intervals < 1:
        raise DatasetError("num_intervals must be positive")
    pairs = generate_pairs(graph, num_pairs, seed=seed)
    rng = np.random.default_rng(seed + 1)
    interval_length = horizon / num_intervals
    queries: list[Query] = []
    for source, target in pairs:
        for interval in range(num_intervals):
            departure = float(
                rng.uniform(interval * interval_length, (interval + 1) * interval_length)
            )
            queries.append(Query(source, target, departure))
    return QueryWorkload(dataset=dataset, queries=queries, seed=seed)
