"""Scaled dataset catalog (Table 2) and query-workload generation (Sec. 5)."""

from repro.datasets.catalog import (
    CATALOG,
    DatasetSpec,
    dataset_names,
    get_spec,
    load_dataset,
)
from repro.datasets.queries import Query, QueryWorkload, generate_pairs, generate_queries

__all__ = [
    "CATALOG",
    "DatasetSpec",
    "dataset_names",
    "get_spec",
    "load_dataset",
    "Query",
    "QueryWorkload",
    "generate_pairs",
    "generate_queries",
]
