"""Serving layer: micro-batching workers plus the deployment control plane.

Three levels:

* :class:`QueryService` — one micro-batching, caching worker over one engine
  (see :mod:`repro.serving.service` for the batching/caching semantics and
  :mod:`repro.serving.stats` for the exported counters), with bounded
  admission and per-query deadlines (:mod:`repro.serving.admission`);
* :class:`EngineHost` — named deployments above the workers, with
  zero-downtime hot swap, snapshot-backed provisioning and an async facade
  (see :mod:`repro.serving.host`);
* the resilience layer — supervised recovery of dead/wedged workers with
  health reporting and fallback routing (:mod:`repro.serving.supervision`),
  plus deterministic fault injection to prove it works
  (:mod:`repro.serving.faults`);
* :class:`ReplicaPool` — multi-process scale-out under a deployment: ``N``
  worker processes each rehydrate the deployment's snapshot with
  ``mmap_mode="r"`` so they share one physical copy of the index arrays,
  and micro-batches spread over them by least load
  (:mod:`repro.serving.replica`; enable with
  ``host.deploy(name, spec, replicas=N)``).

The whole stack reports into the unified observability layer
(:mod:`repro.obs`): ``host.metrics_text()`` exposes a Prometheus scrape
surface, ``service.recent_traces()`` returns per-query span trees, and
supervision/swap/shed/fault events land in one :class:`~repro.obs.EventLog`
timeline.  Pass ``obs=Observability.disabled()`` to run with zero telemetry.

Typical deployment shape::

    host = EngineHost(
        max_batch_size=256,
        max_wait_ms=2.0,
        max_pending=4096,                     # bounded admission queue
        default_deadline_ms=250.0,            # no caller blocks forever
        supervision=SupervisionConfig(),      # background health checks
    )
    host.deploy("prod", "snapshot:/var/indexes/cal",      # load, don't build
                fallback="td-dijkstra")                   # degraded-mode standby
    cost = host.query("prod", source, target, departure)
    host.swap("prod", "td-appro?budget_fraction=0.3")     # zero downtime
    print(host.stats()["prod"])
    print(host.health("prod").state)
"""

from repro.serving.admission import (
    ADMISSION_POLICIES,
    ADMIT_BLOCK,
    ADMIT_SHED,
    aretry_submit,
    backoff_delays,
    retry_submit,
)
from repro.serving.faults import (
    FaultPlan,
    FaultyEngine,
    InjectedFaultError,
    TransientInjectedFaultError,
)
from repro.serving.host import DeploymentInfo, EngineHost, SwapReport
from repro.serving.replica import ReplicaInfo, ReplicaPool, ReplicaRecovery
from repro.serving.service import QueryService, ServiceFuture, ServiceProbe
from repro.serving.stats import LatencyReservoir, ServiceStats
from repro.serving.supervision import (
    HealthReport,
    HealthState,
    RecoveryReport,
    Supervisor,
    SupervisionConfig,
)

__all__ = [
    "EngineHost",
    "DeploymentInfo",
    "SwapReport",
    "QueryService",
    "ServiceFuture",
    "ServiceProbe",
    "ServiceStats",
    "LatencyReservoir",
    # admission / retry
    "ADMISSION_POLICIES",
    "ADMIT_BLOCK",
    "ADMIT_SHED",
    "aretry_submit",
    "backoff_delays",
    "retry_submit",
    # fault injection
    "FaultPlan",
    "FaultyEngine",
    "InjectedFaultError",
    "TransientInjectedFaultError",
    # supervision
    "HealthState",
    "HealthReport",
    "RecoveryReport",
    "SupervisionConfig",
    "Supervisor",
    # multi-process replicas
    "ReplicaPool",
    "ReplicaInfo",
    "ReplicaRecovery",
]
