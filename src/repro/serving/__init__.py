"""Serving layer: micro-batching workers plus the deployment control plane.

Two levels:

* :class:`QueryService` — one micro-batching, caching worker over one engine
  (see :mod:`repro.serving.service` for the batching/caching semantics and
  :mod:`repro.serving.stats` for the exported counters);
* :class:`EngineHost` — named deployments above the workers, with
  zero-downtime hot swap, snapshot-backed provisioning and an async facade
  (see :mod:`repro.serving.host`).

Typical deployment shape::

    host = EngineHost(max_batch_size=256, max_wait_ms=2.0)
    host.deploy("prod", "snapshot:/var/indexes/cal")      # load, don't build
    cost = host.query("prod", source, target, departure)
    host.swap("prod", "td-appro?budget_fraction=0.3")     # zero downtime
    print(host.stats()["prod"])
"""

from repro.serving.host import DeploymentInfo, EngineHost, SwapReport
from repro.serving.service import QueryService, ServiceFuture
from repro.serving.stats import LatencyReservoir, ServiceStats

__all__ = [
    "EngineHost",
    "DeploymentInfo",
    "SwapReport",
    "QueryService",
    "ServiceFuture",
    "ServiceStats",
    "LatencyReservoir",
]
