"""Serving layer: micro-batching query service over a built (or loaded) index.

Typical deployment shape::

    index = TDTreeIndex.load("snapshots/cal.index")      # repro.persistence
    with QueryService(index, max_batch_size=256) as service:
        future = service.submit(source, target, departure)
        cost = future.result()
        print(service.stats())

See :mod:`repro.serving.service` for the batching/caching semantics and
:mod:`repro.serving.stats` for the exported counters.
"""

from repro.serving.service import QueryService, ServiceFuture
from repro.serving.stats import LatencyReservoir, ServiceStats

__all__ = ["QueryService", "ServiceFuture", "ServiceStats", "LatencyReservoir"]
