"""Admission control and retry policy for the serving layer.

Two pieces live here:

* the admission *policy* names shared by :class:`~repro.serving.QueryService`
  and :class:`~repro.serving.EngineHost` — a bounded admission queue in front
  of ``submit`` either **blocks** the submitter (backpressure: the producer
  slows to the consumer's pace) or **sheds** the query with a typed
  :class:`~repro.exceptions.AdmissionRejectedError` (load shedding: overload
  costs the marginal query an immediate retryable error instead of costing
  every query a latency cliff);
* :func:`retry_submit`, the one retry loop for transient serving errors
  (``ServiceClosedError`` from a racing hot swap or worker restart, a shed
  under a momentary spike) with bounded exponential backoff and
  *deterministic* jitter — retries behave identically across runs, so chaos
  tests and benchmarks stay reproducible.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Optional, Tuple, Type, TypeVar

from repro.exceptions import ServiceClosedError
from repro.utils.timing import SYSTEM_CLOCK, Clock

__all__ = [
    "ADMISSION_POLICIES",
    "ADMIT_BLOCK",
    "ADMIT_SHED",
    "aretry_submit",
    "backoff_delays",
    "retry_submit",
]

#: Block the submitter until capacity frees up (backpressure).
ADMIT_BLOCK = "block"
#: Reject over-capacity submits with :class:`AdmissionRejectedError`.
ADMIT_SHED = "shed"
#: Every valid ``admission_policy`` value.
ADMISSION_POLICIES = (ADMIT_BLOCK, ADMIT_SHED)

T = TypeVar("T")

#: Knuth's multiplicative-hash constant; spreads (seed, attempt) pairs over
#: the jitter range without pulling in the ``random`` module.
_HASH_MULTIPLIER = 2654435761


def _jitter_fraction(seed: int, attempt: int) -> float:
    """A deterministic pseudo-random fraction in [0, 1) for one retry."""
    mixed = (seed * _HASH_MULTIPLIER + attempt * 40503 + 12345) & 0xFFFFFFFF
    return (mixed >> 8) / float(1 << 24)


def backoff_delays(
    attempts: int,
    *,
    base_delay_ms: float = 0.5,
    max_delay_ms: float = 50.0,
    seed: int = 0,
) -> Tuple[float, ...]:
    """The exact sleep schedule (seconds) :func:`retry_submit` would use.

    Exposed so tests and capacity planning can inspect the schedule: delays
    double from ``base_delay_ms`` up to ``max_delay_ms``, each scaled by a
    deterministic jitter factor in [0.5, 1.0) derived from ``seed`` and the
    attempt number — no shared RNG state, identical across processes.
    """
    delays = []
    delay_ms = base_delay_ms
    for attempt in range(max(attempts - 1, 0)):
        jittered = delay_ms * (0.5 + 0.5 * _jitter_fraction(seed, attempt))
        delays.append(jittered / 1000.0)
        delay_ms = min(delay_ms * 2.0, max_delay_ms)
    return tuple(delays)


def retry_submit(
    submit: Callable[[], T],
    *,
    attempts: int = 8,
    base_delay_ms: float = 0.5,
    max_delay_ms: float = 50.0,
    retry_on: Tuple[Type[BaseException], ...] = (ServiceClosedError,),
    seed: int = 0,
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
    clock: Clock = SYSTEM_CLOCK,
) -> T:
    """Call ``submit()``, retrying transient serving errors with backoff.

    The shared replacement for every hand-rolled ``ServiceClosedError`` retry
    loop: ``submit`` must be a zero-argument closure that *re-resolves* its
    target on every call (e.g. ``lambda: host_service().submit(s, t, d)``) so
    a retry lands on the replacement service, not the retired one.

    Retries only the exception types in ``retry_on`` (default: the hot-swap
    race, :class:`~repro.exceptions.ServiceClosedError`; add
    :class:`~repro.exceptions.AdmissionRejectedError` to also back off from
    load shedding).  Sleeps follow bounded exponential backoff with
    deterministic jitter (see :func:`backoff_delays`); after ``attempts``
    tries the last error is re-raised.  ``on_retry(attempt, error)`` fires
    before each sleep — the :class:`~repro.serving.EngineHost` uses it to
    count retries into :class:`~repro.serving.ServiceStats`.  Backoff sleeps
    go through ``clock`` — inject a :class:`~repro.utils.timing.FakeClock`
    to test the retry schedule without real waiting.
    """
    if attempts < 1:
        raise ValueError("attempts must be at least 1")
    delays = backoff_delays(
        attempts, base_delay_ms=base_delay_ms, max_delay_ms=max_delay_ms, seed=seed
    )
    last: BaseException | None = None
    for attempt in range(attempts):
        try:
            return submit()
        except retry_on as exc:
            last = exc
            if attempt < len(delays):
                if on_retry is not None:
                    on_retry(attempt, exc)
                if delays[attempt] > 0.0:
                    clock.sleep(delays[attempt])
    assert last is not None  # the loop either returned or recorded an error
    raise last


async def aretry_submit(
    submit: Callable[[], Awaitable[T]],
    *,
    attempts: int = 8,
    base_delay_ms: float = 0.5,
    max_delay_ms: float = 50.0,
    retry_on: Tuple[Type[BaseException], ...] = (ServiceClosedError,),
    seed: int = 0,
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
    sleep: Optional[Callable[[float], Awaitable[None]]] = None,
) -> T:
    """Await ``submit()``, retrying transient serving errors with backoff.

    The asyncio twin of :func:`retry_submit`, for callers already on the
    event loop (the HTTP gateway, ``EngineHost.aquery`` wrappers): identical
    schedule (:func:`backoff_delays`, same deterministic jitter for the same
    ``seed``), but backoff waits are ``await``-ed instead of blocking the
    thread, so one slow retry never stalls unrelated in-flight requests.
    ``submit`` must be a zero-argument coroutine factory that re-resolves its
    target on every call, exactly like the sync variant.  ``sleep`` defaults
    to :func:`asyncio.sleep`; inject a recording fake to test the schedule
    without real waiting.
    """
    if attempts < 1:
        raise ValueError("attempts must be at least 1")
    do_sleep = asyncio.sleep if sleep is None else sleep
    delays = backoff_delays(
        attempts, base_delay_ms=base_delay_ms, max_delay_ms=max_delay_ms, seed=seed
    )
    last: BaseException | None = None
    for attempt in range(attempts):
        try:
            return await submit()
        except retry_on as exc:
            last = exc
            if attempt < len(delays):
                if on_retry is not None:
                    on_retry(attempt, exc)
                if delays[attempt] > 0.0:
                    await do_sleep(delays[attempt])
    assert last is not None  # the loop either returned or recorded an error
    raise last
