"""Serving control plane: named engine deployments with zero-downtime swaps.

:class:`~repro.serving.QueryService` is one worker over one engine; a live
road network needs more — indexes are rebuilt or patched as traffic functions
change while queries keep arriving.  :class:`EngineHost` is the deployment
layer above the workers:

* :meth:`~EngineHost.deploy` provisions a named deployment from a registry
  spec string (``"td-appro?budget_fraction=0.3"``), a snapshot
  (``"snapshot:/var/indexes/cal"`` — no graph needed, the snapshot embeds
  one) or a ready :class:`~repro.api.Engine`, and fronts it with the
  micro-batching machinery;
* :meth:`~EngineHost.swap` replaces a deployment's engine with **zero
  downtime**: the replacement builds (or loads) while the old engine keeps
  answering, the active service pointer flips atomically, the retired
  service drains its in-flight batches, and the replacement starts with a
  fresh result cache — so a traffic update becomes "patch a clone, swap"
  instead of "mutate the index under readers";
* :meth:`~EngineHost.aquery` / :meth:`~EngineHost.asubmit` bridge the
  service's thread-world futures into ``asyncio``, and
  :meth:`~EngineHost.stats` aggregates :class:`~repro.serving.ServiceStats`
  per deployment **across** swap generations.

How the swap stays downtime-free
--------------------------------
Submitters never hold a service reference across calls: each
:meth:`~EngineHost.submit` re-resolves the deployment's live service.  The
flip is a single pointer assignment under the host lock; a submitter that
grabbed the outgoing service just before the flip either gets its query into
the final drain (answered by the old engine — it was submitted before the
swap completed) or receives the dedicated
:class:`~repro.exceptions.ServiceClosedError` and transparently retries
against the replacement.  No error escapes to the caller, no future is
dropped, and every answer delivered after :meth:`~EngineHost.swap` returns
is bit-identical to the replacement engine's own scalar ``query``.

Example
-------
>>> host = EngineHost()
>>> host.deploy("prod", "td-appro?budget_fraction=0.3", graph)
>>> cost = host.query("prod", 3, 17, 8 * 3600.0)
>>> patched = graph.copy()          # apply the incident to a clone ...
>>> host.swap("prod", create_engine("td-appro", patched))   # ... and swap
>>> host.stats()["prod"].queries_answered
"""

from __future__ import annotations

import asyncio
import shutil
import tempfile
import threading
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Mapping, Optional, Union, overload

from repro.exceptions import (
    DuplicateDeploymentError,
    HostError,
    ServiceClosedError,
    UnknownDeploymentError,
    UnsupportedCapabilityError,
    WorkerCrashedError,
)
from repro.obs import (
    EVENT_DEPLOY,
    EVENT_HEALTH,
    EVENT_RECOVERY,
    EVENT_SWAP,
    EVENT_UNDEPLOY,
    EVENT_UPDATE,
    Observability,
    get_observability,
)
from repro.serving.admission import retry_submit
from repro.serving.service import QueryService, ServiceFuture
from repro.serving.stats import ServiceStats
from repro.serving.supervision import (
    HealthReport,
    HealthState,
    RecoveryReport,
    Supervisor,
    SupervisionConfig,
)
from repro.utils.timing import Clock

__all__ = ["EngineHost", "DeploymentInfo", "SwapReport"]

#: What deploy/swap accept: a registry spec string or a ready engine object.
EngineOrSpec = Union[str, Any]


@dataclass(frozen=True)
class DeploymentInfo:
    """Read-only description of one deployment at the time it was asked for."""

    #: Deployment name (the routing key of ``submit``/``query``/``swap``).
    name: str
    #: Spec the live engine was provisioned from (an engine's ``name`` when
    #: it was handed in as an object).
    spec: str
    #: The live engine itself (handle for profile queries, snapshots, ...).
    engine: Any
    #: How many hot swaps this deployment has been through.
    swap_count: int
    #: Spec of the configured fallback engine, if any.
    fallback_spec: Optional[str] = None
    #: Health at the time of the description.
    health: HealthState = HealthState.HEALTHY
    #: Replica worker processes serving this deployment (0 means the engine
    #: runs in-process, the pre-replica default).
    replicas: int = 0


@dataclass(frozen=True)
class SwapReport:
    """What one :meth:`EngineHost.swap` did, and what it cost.

    ``build_seconds`` dominates and is paid while the old engine still
    serves; ``switch_seconds`` is the atomic pointer flip (the only moment
    the deployment is "between" engines — submitters racing it retry, they
    never fail); ``drain_seconds`` is the retired service flushing its last
    in-flight batch.
    """

    deployment: str
    old_spec: str
    new_spec: str
    build_seconds: float
    switch_seconds: float
    drain_seconds: float
    #: Queries that were still pending in the retired service at flip time
    #: and were answered by the old engine during the drain.
    drained_queries: int

    @property
    def total_seconds(self) -> float:
        """End-to-end wall time of the swap call."""
        return self.build_seconds + self.switch_seconds + self.drain_seconds


class _Deployment:
    """Mutable state of one named deployment (internal)."""

    __slots__ = (
        "name",
        "spec",
        "engine",
        "service",
        "service_options",
        "swap_lock",
        "swap_count",
        "retired_stats",
        "health",
        "health_cause",
        "clean_checks",
        "restarts_since_healthy",
        "worker_restarts",
        "degraded_answers",
        "retries",
        "fallback_spec",
        "fallback_service",
        "last_snapshot",
        "replica_pool",
        "owned_snapshot_dir",
    )

    def __init__(
        self,
        name: str,
        spec: str,
        engine: Any,
        service: QueryService,
        service_options: dict[str, Any],
    ) -> None:
        self.name = name
        self.spec = spec
        self.engine = engine
        self.service = service
        self.service_options = service_options
        #: Serializes swaps (and recoveries) per deployment; submits never
        #: take it.
        self.swap_lock = threading.Lock()
        self.swap_count = 0
        #: Final stats of every retired service generation (for stats()).
        self.retired_stats: list[ServiceStats] = []
        # Supervision state (mutated under the host lock).
        self.health = HealthState.HEALTHY
        self.health_cause: str | None = None
        #: Clean supervision passes since the last incident (DEGRADED only).
        self.clean_checks = 0
        #: Recovery restarts since the deployment was last HEALTHY; past
        #: ``max_restarts`` the engine is presumed poisoned and recovery
        #: escalates.
        self.restarts_since_healthy = 0
        self.worker_restarts = 0
        self.degraded_answers = 0
        self.retries = 0
        self.fallback_spec: str | None = None
        self.fallback_service: QueryService | None = None
        #: Where host.snapshot() last saved this deployment's index; the
        #: rehydration source when the live engine is poisoned.
        self.last_snapshot: Path | None = None
        #: The multi-process worker pool when the deployment was provisioned
        #: with ``replicas=N`` (the pool doubles as ``engine``); None for
        #: ordinary in-process deployments.
        self.replica_pool: Any = None
        #: Snapshot directory the host materialised for the pool (owned:
        #: deleted on undeploy/swap/close).  None when the deployment was
        #: provisioned from a caller-supplied ``snapshot:<dir>`` spec.
        self.owned_snapshot_dir: Path | None = None


def _bridge_future(
    future: ServiceFuture, loop: asyncio.AbstractEventLoop
) -> "asyncio.Future[float]":
    """Mirror a thread-world :class:`ServiceFuture` into an asyncio future."""
    target: "asyncio.Future[float]" = loop.create_future()

    def _transfer(settled: ServiceFuture) -> None:
        def _deliver() -> None:
            if target.cancelled():
                return
            error = settled.exception()
            if error is not None:
                target.set_exception(error)
            else:
                target.set_result(settled.result())

        # The batch settles on a service thread; hand the value over on the
        # loop thread.  A closed loop swallows the delivery (the awaiter is
        # gone with it).
        loop.call_soon_threadsafe(_deliver)

    future.add_done_callback(_transfer)
    return target


class EngineHost:
    """Owns named deployments and routes traffic to them without downtime.

    Parameters are the default :class:`~repro.serving.QueryService` knobs
    applied to every deployment; :meth:`deploy` accepts per-deployment
    overrides, and a swap reuses the deployment's knobs so operational
    tuning survives engine replacements.  ``obs`` is the
    :class:`~repro.obs.Observability` bundle shared by the host and every
    deployment (default: the process-wide bundle) — each deployment's
    service publishes metrics under its deployment name, swaps and
    recoveries land in the bundle's event log, and :meth:`metrics_text`
    serves the whole registry in Prometheus exposition format.

    Thread-safe throughout: any number of submitter threads (or one asyncio
    loop via the ``a*`` facade) may race deploys, swaps and undeploys.
    """

    def __init__(
        self,
        *,
        max_batch_size: int = 256,
        max_wait_ms: float = 2.0,
        cache_size: int = 65_536,
        bucket_seconds: float = 0.0,
        max_pending: int | None = None,
        admission_policy: str = "block",
        admission_timeout_ms: float | None = None,
        default_deadline_ms: float | None = None,
        supervision: SupervisionConfig | None = None,
        obs: Observability | None = None,
        clock: Clock | None = None,
    ) -> None:
        self._obs = obs if obs is not None else get_observability()
        self._clock: Clock = clock if clock is not None else self._obs.clock
        self._defaults: dict[str, Any] = {
            "max_batch_size": max_batch_size,
            "max_wait_ms": max_wait_ms,
            "cache_size": cache_size,
            "bucket_seconds": bucket_seconds,
            "max_pending": max_pending,
            "admission_policy": admission_policy,
            "admission_timeout_ms": admission_timeout_ms,
            "default_deadline_ms": default_deadline_ms,
            "obs": self._obs,
            "clock": self._clock,
        }
        if self._obs.enabled:
            registry = self._obs.registry
            self._m_swaps = registry.counter(
                "repro_host_swaps_total",
                "Completed zero-downtime engine swaps.",
                ("deployment",),
            )
            self._m_recoveries = registry.counter(
                "repro_host_recoveries_total",
                "Supervision recoveries, by escalation action.",
                ("deployment", "action"),
            )
            self._m_retries = registry.counter(
                "repro_host_retries_total",
                "Submits retried across a swap or worker restart.",
                ("deployment",),
            )
            self._m_degraded = registry.counter(
                "repro_host_degraded_answers_total",
                "Answers served by a fallback engine while the primary was "
                "unhealthy.",
                ("deployment",),
            )
            self._m_health = registry.gauge(
                "repro_host_health_state",
                "Deployment health: 0=healthy, 1=degraded, 2=unhealthy.",
                ("deployment",),
            )
            self._m_updates = registry.counter(
                "repro_host_updates_total",
                "Edge-weight changes patched into live engines in place.",
                ("deployment",),
            )
        else:
            self._m_swaps = None
            self._m_recoveries = None
            self._m_retries = None
            self._m_degraded = None
            self._m_health = None
            self._m_updates = None
        self._lock = threading.Lock()
        self._deployments: dict[str, _Deployment] = {}
        self._closed = False
        #: Detection thresholds for check(); defaults apply even without the
        #: background loop, so manual check() calls behave identically.
        self._supervision = supervision or SupervisionConfig()
        self._supervisor: Supervisor | None = None
        if supervision is not None:
            self._supervisor = Supervisor(self, supervision)
            self._supervisor.start()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run (the supervisor loop checks it)."""
        return self._closed

    # ------------------------------------------------------------------
    # Observability surface
    # ------------------------------------------------------------------
    @property
    def obs(self) -> Observability:
        """The observability bundle every deployment publishes into."""
        return self._obs

    def metrics_text(self) -> str:
        """Every registry metric in Prometheus text exposition format.

        Exactly what a ``/metrics`` route would serve::

            >>> print(host.metrics_text())
            # HELP repro_service_queries_total Queries accepted by submit()...
            # TYPE repro_service_queries_total counter
            repro_service_queries_total{service="prod"} 1024
            ...
        """
        return self._obs.metrics_text()

    def metrics_json(self) -> dict[str, object]:
        """The same registry contents as a JSON-serialisable snapshot."""
        return self._obs.metrics_json()

    _HEALTH_LEVEL = {
        HealthState.HEALTHY: 0.0,
        HealthState.DEGRADED: 1.0,
        HealthState.UNHEALTHY: 2.0,
    }

    def _emit(self, kind: str, subject: str, **fields: Any) -> None:
        if self._obs.enabled:
            self._obs.events.emit(kind, subject, **fields)

    def _note_health(
        self, name: str, state: HealthState, cause: str | None = None
    ) -> None:
        """Record one health *transition* (gauge + structured event)."""
        if self._m_health is not None:
            self._m_health.set(self._HEALTH_LEVEL[state], deployment=name)
        self._emit(EVENT_HEALTH, name, state=state.name.lower(), cause=cause)

    def _wire_engine(self, engine: Any) -> None:
        """Point fault-injection wrappers at the host's event sink."""
        attach = getattr(engine, "attach_event_log", None)
        if attach is not None and self._obs.enabled:
            attach(self._obs.events)

    # ------------------------------------------------------------------
    # Provisioning
    # ------------------------------------------------------------------
    def deploy(
        self,
        name: str,
        engine: EngineOrSpec,
        graph: Any = None,
        *,
        fallback: Optional[EngineOrSpec] = None,
        replicas: Optional[int] = None,
        mmap_mode: str = "r",
        **service_options: Any,
    ) -> DeploymentInfo:
        """Provision a deployment ``name`` serving ``engine``.

        ``engine`` is a registry spec string (built via
        :func:`repro.api.create_engine` — ``"snapshot:<dir>"`` rehydrates a
        saved index and needs no ``graph``) or a ready engine object.
        ``service_options`` override the host's default ``QueryService``
        knobs for this deployment only.  Building happens before any lock is
        taken, so deploying a slow engine never stalls live deployments.

        ``fallback`` (a spec string or ready engine, e.g. the index-free
        ``"td-dijkstra"``) provisions a standby the host routes to while the
        primary is ``UNHEALTHY`` — answers served this way are counted as
        ``degraded_answers`` in the deployment's stats.

        ``replicas=N`` serves the deployment from ``N`` worker *processes*
        instead of the in-process engine: each replica rehydrates the
        deployment's snapshot with ``mmap_mode`` (default ``"r"``), so all
        replicas share one physical copy of the index arrays through the
        page cache, and micro-batches are spread over the pool by least
        load.  A ``"snapshot:<dir>"`` spec is handed to the workers as-is
        (nothing is built in this process); any other spec or engine object
        is built once, spilled to a host-owned snapshot directory, and
        mapped from there.  Replica liveness is folded into :meth:`check` /
        :meth:`health`; a dead replica is respawned from the snapshot.
        """
        self._check_open()
        with self._lock:
            if name in self._deployments:
                raise DuplicateDeploymentError(name)
        pool: Any = None
        owned_dir: Path | None = None
        snapshot_dir: Path | None = None
        if replicas is not None:
            pool, spec, snapshot_dir, owned_dir = self._provision_replicas(
                name, engine, graph, replicas, mmap_mode
            )
            built = pool
        else:
            built, spec = self._resolve_engine(engine, graph)
            self._wire_engine(built)
        try:
            options = {**self._defaults, "name": name, **service_options}
            service = QueryService(built, **options)
            deployment = _Deployment(name, spec, built, service, options)
            deployment.replica_pool = pool
            deployment.owned_snapshot_dir = owned_dir
            if snapshot_dir is not None:
                # The pool's snapshot is also the rehydration source.
                deployment.last_snapshot = snapshot_dir
            if fallback is not None:
                fallback_built, fallback_spec = self._resolve_engine(
                    fallback, graph, fallback_graph=getattr(built, "graph", None)
                )
                self._wire_engine(fallback_built)
                deployment.fallback_spec = fallback_spec
                deployment.fallback_service = QueryService(
                    fallback_built, **{**options, "name": f"{options['name']}-fallback"}
                )
            with self._lock:
                if self._closed or name in self._deployments:
                    service.close()
                    if deployment.fallback_service is not None:
                        deployment.fallback_service.close()
                    if self._closed:
                        raise HostError("EngineHost is closed")
                    raise DuplicateDeploymentError(name)
                self._deployments[name] = deployment
        except BaseException:
            self._dispose_pool(pool, owned_dir)
            raise
        if self._m_health is not None:
            self._m_health.set(0.0, deployment=name)
        self._emit(
            EVENT_DEPLOY,
            name,
            spec=spec,
            fallback=deployment.fallback_spec,
            replicas=replicas or 0,
        )
        return self._info(deployment)

    def swap(
        self,
        name: str,
        engine: EngineOrSpec,
        graph: Any = None,
        *,
        spec: Optional[str] = None,
    ) -> SwapReport:
        """Replace deployment ``name``'s engine with zero downtime.

        The replacement is built (or loaded) while the old engine keeps
        serving — pass a spec string to rebuild (``graph`` defaults to the
        current engine's graph; ``"snapshot:<dir>"`` specs load their own),
        or a ready engine to make the flip the only work left.  When the
        replacement is a ready engine, ``spec`` records its originating
        build spec; without it the deployment's recorded spec degrades to
        the engine's bare name, silently dropping options such as
        ``?max_points=none`` from later rebuilds and snapshot manifests.  Traffic is
        then atomically re-pointed, the retired service drains its in-flight
        batches through the *old* engine (those queries were submitted
        before the swap completed), and the replacement starts with a fresh
        result cache, so no answer computed against the old network
        survives.  Swaps on the same deployment serialize; swaps on
        different deployments run concurrently.

        A deployment provisioned with ``replicas=N`` stays multi-process
        across the swap: the replacement is snapshotted and a fresh pool of
        the same size (and ``mmap_mode``) spawns over it while the old pool
        keeps answering; the old pool and its host-owned snapshot directory
        are torn down only after the drain.
        """
        deployment = self._get(name)
        recorded_spec = spec
        with deployment.swap_lock:
            old_engine = deployment.engine
            old_pool = deployment.replica_pool
            new_pool: Any = None
            new_owned: Path | None = None
            new_snapshot: Path | None = None
            build_started = self._clock.monotonic()
            if old_pool is not None:
                new_pool, spec, new_snapshot, new_owned = self._provision_replicas(
                    name,
                    engine,
                    graph,
                    old_pool.size,
                    old_pool.mmap_mode,
                    fallback_graph=getattr(old_engine, "graph", None),
                )
                built = new_pool
            else:
                built, spec = self._resolve_engine(
                    engine, graph, fallback_graph=getattr(old_engine, "graph", None)
                )
                self._wire_engine(built)
            if recorded_spec is not None:
                spec = str(recorded_spec)
            try:
                new_service = QueryService(built, **deployment.service_options)
            except BaseException:
                self._dispose_pool(new_pool, new_owned)
                raise
            build_seconds = self._clock.monotonic() - build_started

            switch_started = self._clock.monotonic()
            was_healthy = True
            with self._lock:
                if self._closed or self._deployments.get(name) is not deployment:
                    new_service.close()
                    self._dispose_pool(new_pool, new_owned)
                    if self._closed:
                        raise HostError("EngineHost is closed")
                    raise UnknownDeploymentError(name, tuple(self._deployments))
                old_service = deployment.service
                old_spec = deployment.spec
                old_owned = deployment.owned_snapshot_dir
                deployment.service = new_service
                deployment.engine = built
                deployment.spec = spec
                deployment.replica_pool = new_pool
                deployment.owned_snapshot_dir = new_owned
                if new_snapshot is not None:
                    deployment.last_snapshot = new_snapshot
                elif old_owned is not None and deployment.last_snapshot == old_owned:
                    # The old host-owned snapshot dies with the drain below;
                    # it must not linger as a rehydration source.
                    deployment.last_snapshot = None
                deployment.swap_count += 1
                # A swap installs a known-good engine: the deployment starts
                # its health history over (an UNHEALTHY primary parked on a
                # fallback returns to primary serving here).
                was_healthy = deployment.health is HealthState.HEALTHY
                deployment.health = HealthState.HEALTHY
                deployment.health_cause = None
                deployment.clean_checks = 0
                deployment.restarts_since_healthy = 0
                # Retire the outgoing generation's counters in the same
                # critical section as the flip, so a concurrent stats()
                # never sees the deployment's totals dip (the pre-drain
                # snapshot is replaced with the final one below).
                deployment.retired_stats.append(old_service.stats())
                retired_index = len(deployment.retired_stats) - 1
            switch_seconds = self._clock.monotonic() - switch_started

            drain_started = self._clock.monotonic()
            drained = old_service.close()
            drain_seconds = self._clock.monotonic() - drain_started
            with self._lock:
                deployment.retired_stats[retired_index] = old_service.stats()
            # The drain is done: nothing routes to the old pool any more.
            self._dispose_pool(old_pool, old_owned)
        if self._m_swaps is not None:
            self._m_swaps.inc(1.0, deployment=name)
        if not was_healthy:
            self._note_health(name, HealthState.HEALTHY, "swap installed a fresh engine")
        elif self._m_health is not None:
            self._m_health.set(0.0, deployment=name)
        self._emit(
            EVENT_SWAP,
            name,
            old_spec=old_spec,
            new_spec=spec,
            drained_queries=drained,
            build_seconds=build_seconds,
        )
        return SwapReport(
            deployment=name,
            old_spec=old_spec,
            new_spec=spec,
            build_seconds=build_seconds,
            switch_seconds=switch_seconds,
            drain_seconds=drain_seconds,
            drained_queries=drained,
        )

    def apply_updates(
        self,
        name: str,
        changes: Mapping[tuple[int, int], Any],
    ) -> Any:
        """Patch deployment ``name``'s live engine **in place** (no swap).

        The cheap end of the update spectrum: for a handful of changed edges
        the incremental repair (:func:`repro.core.update.apply_edge_updates`,
        reached through the engine's ``update_edges`` capability) costs far
        less than cloning and swapping, at the price of transiently mixed
        answers while the repair runs — queries in flight during the patch
        may reflect either the old or the new weights, so callers gate this
        on low traffic (see :class:`repro.traffic.TrafficController`).  Once
        the call returns, every subsequent answer reflects the new weights
        and the result cache has been invalidated.

        Holds the deployment's swap lock for the duration: a patch can never
        race :meth:`swap` and land on a retired engine, and the end-of-update
        invalidation always fires into the *live* generation's cache.
        Returns the engine's :class:`~repro.core.update.UpdateReport`.

        Raises
        ------
        UnsupportedCapabilityError
            When the live engine does not advertise the ``update``
            capability (e.g. a multi-process replica pool — patch a clone
            and :meth:`swap` instead).
        """
        from repro.api import engine_supports

        deployment = self._get(name)
        with deployment.swap_lock:
            with self._lock:
                self._check_open()
                if self._deployments.get(name) is not deployment:
                    raise UnknownDeploymentError(name, tuple(self._deployments))
                engine = deployment.engine
            if not engine_supports(engine, "update"):
                raise UnsupportedCapabilityError(
                    str(getattr(engine, "name", deployment.spec)), "update"
                )
            report = engine.update_edges(dict(changes))
        if self._m_updates is not None:
            self._m_updates.inc(float(len(changes)), deployment=name)
        self._emit(
            EVENT_UPDATE,
            name,
            changed_edges=len(changes),
            dirty_vertices=int(getattr(report, "num_dirty_vertices", 0)),
            seconds=float(getattr(report, "seconds", 0.0)),
        )
        return report

    def undeploy(self, name: str) -> ServiceStats:
        """Retire a deployment; returns its final aggregated stats."""
        with self._lock:
            deployment = self._deployments.pop(name, None)
            if deployment is None:
                raise UnknownDeploymentError(name, tuple(self._deployments))
        deployment.service.close()
        if deployment.fallback_service is not None:
            deployment.fallback_service.close()
        stats = self._merged_stats(deployment)
        self._dispose_pool(deployment.replica_pool, deployment.owned_snapshot_dir)
        self._emit(EVENT_UNDEPLOY, name, spec=deployment.spec)
        return stats

    # ------------------------------------------------------------------
    # Traffic
    # ------------------------------------------------------------------
    def submit(
        self,
        deployment: str,
        source: int,
        target: int,
        departure: float,
        *,
        deadline_ms: float | None = None,
    ) -> ServiceFuture:
        """Enqueue one scalar query on ``deployment``; resolves to the cost.

        Swap-safe and recovery-safe: a submit racing a hot swap (or a
        supervisor restart) retries against the replacement service via
        :func:`~repro.serving.retry_submit` instead of surfacing the retired
        service's :class:`~repro.exceptions.ServiceClosedError`; each retry
        is counted into the deployment's stats.  On an ``UNHEALTHY``
        deployment traffic routes to the configured fallback engine (the
        answer counts as degraded), or fails fast with
        :class:`~repro.exceptions.WorkerCrashedError` when there is none.
        """
        return retry_submit(
            lambda: self._route_submit(deployment, source, target, departure, deadline_ms),
            on_retry=lambda attempt, exc: self._count_retry(deployment),
        )

    def _route_submit(
        self,
        deployment: str,
        source: int,
        target: int,
        departure: float,
        deadline_ms: float | None,
    ) -> ServiceFuture:
        """One routing attempt: health-aware service resolution + submit."""
        entry = self._get(deployment)
        if entry.health is HealthState.UNHEALTHY:
            fallback = entry.fallback_service
            if fallback is None:
                raise WorkerCrashedError(
                    deployment, entry.health_cause or "deployment is unhealthy"
                )
            future = fallback.submit(source, target, departure, deadline_ms=deadline_ms)
            with self._lock:
                entry.degraded_answers += 1
            if self._m_degraded is not None:
                self._m_degraded.inc(1.0, deployment=deployment)
            return future
        return entry.service.submit(source, target, departure, deadline_ms=deadline_ms)

    def _count_retry(self, deployment: str) -> None:
        with self._lock:
            entry = self._deployments.get(deployment)
            if entry is not None:
                entry.retries += 1
        if self._m_retries is not None:
            self._m_retries.inc(1.0, deployment=deployment)

    def query(
        self,
        deployment: str,
        source: int,
        target: int,
        departure: float,
        *,
        deadline_ms: float | None = None,
    ) -> float:
        """Blocking convenience wrapper: ``submit(...).result()``."""
        return self.submit(
            deployment, source, target, departure, deadline_ms=deadline_ms
        ).result()

    def flush(self, deployment: Optional[str] = None) -> int:
        """Flush pending micro-batches (one deployment, or all of them).

        ``UNHEALTHY`` deployments flush their fallback service (the one
        carrying their traffic); deployments without one are skipped — their
        primary is parked and holds nothing flushable.
        """
        names = (deployment,) if deployment is not None else self.deployments()
        flushed = 0
        for name in names:
            try:
                flushed += retry_submit(lambda: self._route_flush(name))
            except UnknownDeploymentError:
                if deployment is not None:
                    raise
                # undeployed between listing and flushing: fine
        return flushed

    def _route_flush(self, name: str) -> int:
        entry = self._get(name)
        if entry.health is HealthState.UNHEALTHY:
            fallback = entry.fallback_service
            return fallback.flush() if fallback is not None else 0
        return entry.service.flush()

    # ------------------------------------------------------------------
    # Async facade
    # ------------------------------------------------------------------
    def asubmit(
        self,
        deployment: str,
        source: int,
        target: int,
        departure: float,
        *,
        deadline_ms: float | None = None,
    ) -> "asyncio.Future[float]":
        """:meth:`submit`, bridged to the running event loop.

        Must be called from a coroutine (it binds to the running loop).  The
        enqueue itself runs inline — cheap unless this very submit fills the
        batch, in which case the flush computes on the loop thread; size
        ``max_batch_size``/``max_wait_ms`` accordingly or keep heavy swaps
        on :meth:`aswap`.
        """
        loop = asyncio.get_running_loop()
        return _bridge_future(
            self.submit(deployment, source, target, departure, deadline_ms=deadline_ms),
            loop,
        )

    async def aquery(
        self,
        deployment: str,
        source: int,
        target: int,
        departure: float,
        *,
        deadline_ms: float | None = None,
    ) -> float:
        """Awaitable scalar query: ``await host.aquery("prod", s, t, d)``."""
        return await self.asubmit(
            deployment, source, target, departure, deadline_ms=deadline_ms
        )

    async def aswap(
        self,
        name: str,
        engine: EngineOrSpec,
        graph: Any = None,
        *,
        spec: Optional[str] = None,
    ) -> SwapReport:
        """:meth:`swap`, off the event loop (the build runs in a thread)."""
        return await asyncio.to_thread(
            lambda: self.swap(name, engine, graph, spec=spec)
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def deployments(self) -> tuple[str, ...]:
        """Active deployment names, in deployment order."""
        with self._lock:
            return tuple(self._deployments)

    def deployment(self, name: str) -> DeploymentInfo:
        """Describe one deployment (spec, live engine, swap count)."""
        return self._info(self._get(name))

    @overload
    def stats(self, deployment: str) -> ServiceStats: ...

    @overload
    def stats(self, deployment: None = None) -> dict[str, ServiceStats]: ...

    def stats(
        self, deployment: Optional[str] = None
    ) -> Union[ServiceStats, dict[str, ServiceStats]]:
        """Aggregated per-deployment stats (across swap generations).

        Counters from retired service generations are folded into the live
        service's via :meth:`ServiceStats.merged`, so a deployment's
        throughput and hit-rate history survives its hot swaps.  Pass a name
        for one deployment's stats, nothing for a ``{name: stats}`` map.
        """
        if deployment is not None:
            return self._deployment_stats(self._get(deployment))
        with self._lock:
            live = list(self._deployments.values())
        return {d.name: self._deployment_stats(d) for d in live}

    def replica_stats(self, deployment: str) -> list[ServiceStats]:
        """Per-replica worker stats of a ``replicas=N`` deployment.

        One :class:`ServiceStats` per worker process (dead workers report
        :meth:`ServiceStats.empty`), mergeable with
        :meth:`ServiceStats.merged`.  These describe the *backend* workers;
        :meth:`stats` already counts every query at the front service, so
        the two views must not be added together.  Raises
        :class:`~repro.exceptions.HostError` on a deployment without
        replicas.
        """
        entry = self._get(deployment)
        pool = entry.replica_pool
        if pool is None:
            raise HostError(
                f"deployment {deployment!r} has no replica pool "
                "(deploy it with replicas=N)"
            )
        return list(pool.stats())

    def replicas(self, deployment: str) -> list[Any]:
        """Liveness/identity of each replica worker (``ReplicaInfo`` list).

        Empty for deployments without a replica pool.
        """
        entry = self._get(deployment)
        pool = entry.replica_pool
        if pool is None:
            return []
        return list(pool.replicas())

    def snapshot(self, deployment: str, path: Any) -> Path:
        """Snapshot a deployment's engine, recording its originating spec.

        The written manifest carries ``engine_spec``, so the directory is
        immediately servable elsewhere via
        ``host.deploy(name, f"snapshot:{path}")``.  A deployment that was
        itself provisioned from a snapshot records the engine's resolved
        name (``"td-appro"``), not the old ``snapshot:<path>`` spec —
        re-snapshotting must not chain stale paths or lose the name.  A
        ``faulty:`` deployment records its *inner* engine's name: the
        snapshot holds the real index, not the fault wrapper.

        The written path is also remembered as the deployment's rehydration
        source: if the live engine is later declared poisoned, recovery
        rebuilds from this snapshot (see :meth:`check`).
        """
        from repro.api import parse_engine_spec
        from repro.persistence import load_index, read_manifest, save_index

        entry = self._get(deployment)
        spec = entry.spec
        engine = entry.engine
        pool = entry.replica_pool
        if pool is not None:
            # The pool is not an index; its snapshot directory holds the
            # authoritative copy.  Round-trip it so the written snapshot is
            # a fresh, self-contained directory with current manifest.
            manifest = read_manifest(pool.snapshot_path)
            engine_spec = manifest.get("engine_spec") or None
            written = save_index(
                load_index(pool.snapshot_path), path, engine_spec=engine_spec
            )
            with self._lock:
                entry.last_snapshot = written
            return written
        scheme = parse_engine_spec(spec)[0]
        if scheme == "faulty":
            inner = getattr(engine, "inner", None)
            if inner is not None:
                engine = inner
                spec = str(getattr(inner, "name", spec))
        elif scheme == "snapshot":
            spec = str(getattr(engine, "name", spec))
        index = getattr(engine, "index", engine)
        written = save_index(index, path, engine_spec=spec)
        with self._lock:
            entry.last_snapshot = written
        return written

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------
    @overload
    def health(self, deployment: str) -> HealthReport: ...

    @overload
    def health(self, deployment: None = None) -> dict[str, HealthReport]: ...

    def health(
        self, deployment: Optional[str] = None
    ) -> Union[HealthReport, dict[str, HealthReport]]:
        """Current health per deployment (no probing side effects).

        Reflects the state as of the last :meth:`check` pass (manual or from
        the background :class:`~repro.serving.Supervisor`), enriched with a
        fresh :class:`~repro.serving.ServiceProbe` of the live service.
        """
        if deployment is not None:
            return self._health_report(self._get(deployment))
        with self._lock:
            live = list(self._deployments.values())
        return {d.name: self._health_report(d) for d in live}

    def _health_report(self, entry: _Deployment) -> HealthReport:
        with self._lock:
            state = entry.health
            cause = entry.health_cause
            restarts = entry.worker_restarts
            pool = entry.replica_pool
        probe = None
        if state is not HealthState.UNHEALTHY:
            probe = entry.service.probe()
        return HealthReport(
            deployment=entry.name,
            state=state,
            cause=cause,
            worker_restarts=restarts,
            probe=probe,
            replicas=pool.size if pool is not None else 0,
            replicas_alive=pool.alive_count if pool is not None else None,
        )

    def check(self, deployment: Optional[str] = None) -> dict[str, RecoveryReport]:
        """One synchronous supervision pass; returns recoveries performed.

        For each (or one) deployment: probe the live service, detect
        incidents against the host's :class:`~repro.serving.SupervisionConfig`
        thresholds, and recover — abort the worker (failing its in-flight
        futures with :class:`~repro.exceptions.WorkerCrashedError`), then
        restart it from the live engine, rehydrate the last
        :meth:`snapshot` if the engine itself is presumed poisoned, or park
        the deployment on its fallback.  Clean passes walk ``DEGRADED``
        deployments back to ``HEALTHY``.  The background supervisor calls
        exactly this; tests call it directly for deterministic recovery.
        """
        names = (deployment,) if deployment is not None else self.deployments()
        reports: dict[str, RecoveryReport] = {}
        for name in names:
            try:
                entry = self._get(name)
            except (UnknownDeploymentError, HostError):
                if deployment is not None:
                    raise
                continue
            report = self._check_one(entry)
            if report is not None:
                reports[name] = report
        return reports

    def _check_one(self, entry: _Deployment) -> Optional[RecoveryReport]:
        config = self._supervision
        with self._lock:
            state = entry.health
        if state is HealthState.UNHEALTHY:
            return None  # parked: only swap() brings the primary back
        pool_report = self._check_pool(entry)
        if pool_report is not None:
            return pool_report
        probe = entry.service.probe()
        cause: str | None = None
        if not probe.closed:
            wedge_seconds = config.wedge_timeout_ms / 1000.0
            if not probe.flusher_alive:
                cause = "deadline-flusher thread died"
            elif probe.flushing_seconds > wedge_seconds:
                cause = (
                    f"batch wedged in the engine for "
                    f"{probe.flushing_seconds * 1000.0:.0f} ms"
                )
            elif probe.oldest_pending_seconds > wedge_seconds:
                cause = (
                    f"oldest pending query aged "
                    f"{probe.oldest_pending_seconds * 1000.0:.0f} ms without a flush"
                )
            elif probe.consecutive_batch_failures >= config.failure_threshold:
                cause = (
                    f"{probe.consecutive_batch_failures} consecutive "
                    "whole-batch failures"
                )
        if cause is None:
            recovered = False
            with self._lock:
                if entry.health is HealthState.DEGRADED:
                    entry.clean_checks += 1
                    if entry.clean_checks >= config.recovery_checks:
                        entry.health = HealthState.HEALTHY
                        entry.health_cause = None
                        entry.clean_checks = 0
                        entry.restarts_since_healthy = 0
                        recovered = True
            if recovered:
                self._note_health(
                    entry.name,
                    HealthState.HEALTHY,
                    f"{config.recovery_checks} clean supervision passes",
                )
            return None
        return self._recover(entry, cause)

    def _check_pool(self, entry: _Deployment) -> Optional[RecoveryReport]:
        """Fold replica liveness into one supervision pass.

        The pool respawns its own dead workers from the deployment's
        snapshot; the host folds the outcome into the deployment's health
        ladder: a respawn marks the deployment ``DEGRADED`` (clean passes
        promote it back, exactly like a service restart), while a pool with
        no live replica left escalates through the ordinary recovery rungs
        — skipping ``"restart"``, which would only re-front the dead pool —
        to rehydrate in-process from the last snapshot, fall back, or park.
        """
        pool = entry.replica_pool
        if pool is None or pool.closed:
            return None
        recoveries = pool.check()
        if not recoveries:
            return None
        respawned = sum(1 for r in recoveries if r.action == "respawn")
        failed = sum(r.failed_requests for r in recoveries)
        cause = recoveries[0].cause
        if respawned:
            with self._lock:
                entry.worker_restarts += respawned
        if pool.alive_count == 0:
            with self._lock:
                entry.restarts_since_healthy = max(
                    entry.restarts_since_healthy, self._supervision.max_restarts
                )
            return self._recover(
                entry,
                f"all {pool.size} replica workers are dead and could not be "
                f"respawned ({cause})",
            )
        with self._lock:
            if entry.health is HealthState.HEALTHY:
                entry.health = HealthState.DEGRADED
            entry.health_cause = f"replica worker died: {cause}"
            entry.clean_checks = 0
        self._note_health(entry.name, HealthState.DEGRADED, cause)
        self._note_recovery(entry.name, "respawn", cause, failed)
        return RecoveryReport(
            deployment=entry.name,
            action="respawn",
            cause=cause,
            failed_futures=failed,
        )

    def _recover(self, entry: _Deployment, cause: str) -> Optional[RecoveryReport]:
        """Abort the failed worker and bring the deployment back (or park it)."""
        config = self._supervision
        if not entry.swap_lock.acquire(blocking=False):
            # A swap is installing a fresh engine right now; it supersedes
            # any recovery this pass could do.
            return None
        try:
            error = WorkerCrashedError(entry.name, cause)
            with self._lock:
                restarts = entry.restarts_since_healthy
            if restarts < config.max_restarts:
                action, engine, spec = "restart", entry.engine, entry.spec
            elif entry.last_snapshot is not None:
                # The live engine keeps killing its workers: presume it is
                # poisoned and rebuild from the last known-good snapshot.
                from repro.api import create_engine

                action = "rehydrate"
                spec = f"snapshot:{entry.last_snapshot}"
                engine = create_engine(spec)
                self._wire_engine(engine)
            elif entry.fallback_service is not None:
                action, engine, spec = "fallback", None, entry.spec
            else:
                action, engine, spec = "park", None, entry.spec

            if engine is None:
                # No recovery path for the primary: park it UNHEALTHY.
                if entry.replica_pool is not None:
                    # Workers are already dead; free queues and stragglers.
                    # References (and the owned snapshot dir) stay so a
                    # later swap() re-provisions the pool at full size.
                    entry.replica_pool.close()
                with self._lock:
                    entry.health = HealthState.UNHEALTHY
                    entry.health_cause = cause
                self._note_health(entry.name, HealthState.UNHEALTHY, cause)
                old_service = entry.service
                failed = old_service.abort(error)
                with self._lock:
                    entry.retired_stats.append(old_service.stats())
                self._note_recovery(entry.name, action, cause, failed)
                return RecoveryReport(
                    deployment=entry.name,
                    action=action,
                    cause=cause,
                    failed_futures=failed,
                )

            # Build the replacement worker first, then flip: submitters never
            # observe a window with no live service.
            new_service = QueryService(engine, **entry.service_options)
            dead_pool = None
            with self._lock:
                old_service = entry.service
                entry.service = new_service
                entry.engine = engine
                entry.spec = spec
                if action == "rehydrate" and entry.replica_pool is not None:
                    # The replacement serves in-process; the dead pool is
                    # done.  Its owned snapshot dir survives — it *is* the
                    # deployment's last_snapshot — until undeploy/close.
                    dead_pool = entry.replica_pool
                    entry.replica_pool = None
                entry.health = HealthState.DEGRADED
                entry.health_cause = cause
                entry.clean_checks = 0
                entry.worker_restarts += 1
                if action == "rehydrate":
                    # Fresh engine: it gets a fresh restart budget.
                    entry.restarts_since_healthy = 0
                else:
                    entry.restarts_since_healthy += 1
            self._note_health(entry.name, HealthState.DEGRADED, cause)
            failed = old_service.abort(error)
            if dead_pool is not None:
                dead_pool.close()
            with self._lock:
                entry.retired_stats.append(old_service.stats())
            self._note_recovery(entry.name, action, cause, failed)
            return RecoveryReport(
                deployment=entry.name,
                action=action,
                cause=cause,
                failed_futures=failed,
            )
        finally:
            entry.swap_lock.release()

    def _note_recovery(
        self, name: str, action: str, cause: str, failed: int
    ) -> None:
        """Record one completed recovery (counter + structured event)."""
        if self._m_recoveries is not None:
            self._m_recoveries.inc(1.0, deployment=name, action=action)
        self._emit(
            EVENT_RECOVERY, name, action=action, cause=cause, failed_futures=failed
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Retire every deployment and refuse further work.

        Idempotent and safe under concurrent calls: exactly one caller
        performs the teardown (stopping the supervisor and draining every
        deployment and fallback); the rest return immediately.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            retired = list(self._deployments.values())
            self._deployments.clear()
        if self._supervisor is not None:
            self._supervisor.stop()
        for deployment in retired:
            deployment.service.close()
            if deployment.fallback_service is not None:
                deployment.fallback_service.close()
            self._dispose_pool(
                deployment.replica_pool, deployment.owned_snapshot_dir
            )

    def __enter__(self) -> "EngineHost":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    def __repr__(self) -> str:
        with self._lock:
            names = ", ".join(self._deployments) or "none"
        return f"EngineHost(deployments=[{names}])"

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise HostError("EngineHost is closed")

    def _get(self, name: str) -> _Deployment:
        with self._lock:
            if self._closed:
                raise HostError("EngineHost is closed")
            deployment = self._deployments.get(name)
            if deployment is None:
                raise UnknownDeploymentError(name, tuple(self._deployments))
            return deployment

    def _service(self, name: str) -> QueryService:
        return self._get(name).service

    def _info(self, deployment: _Deployment) -> DeploymentInfo:
        pool = deployment.replica_pool
        return DeploymentInfo(
            name=deployment.name,
            spec=deployment.spec,
            engine=deployment.engine,
            swap_count=deployment.swap_count,
            fallback_spec=deployment.fallback_spec,
            health=deployment.health,
            replicas=pool.size if pool is not None else 0,
        )

    def _deployment_stats(self, deployment: _Deployment) -> ServiceStats:
        return self._merged_stats(deployment)

    def _merged_stats(self, deployment: _Deployment) -> ServiceStats:
        """Fold retired generations, the live service, the fallback, and the
        host-level resilience counters into one deployment view."""
        with self._lock:
            retired = list(deployment.retired_stats)
            retries = deployment.retries
            degraded = deployment.degraded_answers
            restarts = deployment.worker_restarts
        parts = [*retired, deployment.service.stats()]
        if deployment.fallback_service is not None:
            parts.append(deployment.fallback_service.stats())
        merged = ServiceStats.merged(parts)
        return replace(
            merged,
            retries=merged.retries + retries,
            degraded_answers=merged.degraded_answers + degraded,
            worker_restarts=merged.worker_restarts + restarts,
        )

    def _resolve_engine(
        self,
        engine: EngineOrSpec,
        graph: Any,
        *,
        fallback_graph: Any = None,
    ) -> tuple[Any, str]:
        """Build a spec string into an engine; pass engine objects through."""
        if isinstance(engine, str):
            from repro.api import create_engine, engine_entry, parse_engine_spec

            name, _ = parse_engine_spec(engine)
            if graph is None and not engine_entry(name).graph_optional:
                graph = fallback_graph
            return create_engine(engine, graph), engine
        if graph is not None:
            raise HostError(
                "pass a graph only with a spec string; a ready engine "
                "already carries its own"
            )
        return engine, str(getattr(engine, "name", type(engine).__name__))

    def _provision_replicas(
        self,
        name: str,
        engine: EngineOrSpec,
        graph: Any,
        replicas: int,
        mmap_mode: str,
        *,
        fallback_graph: Any = None,
    ) -> tuple[Any, str, Path, Optional[Path]]:
        """Materialise a snapshot for ``engine`` and spawn a pool over it.

        Returns ``(pool, spec, snapshot_dir, owned_dir)``; ``owned_dir`` is
        the temp directory the host must delete when the pool retires (None
        when the caller's own ``snapshot:<dir>`` was used directly — that
        path stays shared and untouched, preserving page-cache sharing with
        anything else mapping it).
        """
        from repro.serving.replica import ReplicaPool

        if replicas < 1:
            raise HostError("replicas must be >= 1")
        owned_dir: Optional[Path] = None
        if isinstance(engine, str):
            from repro.api import parse_engine_spec

            scheme, spec_options = parse_engine_spec(engine)
            if scheme == "snapshot":
                # The snapshot already exists on disk: hand the directory to
                # the workers as-is — nothing is built (or even loaded) in
                # this process.
                snapshot_dir = Path(spec_options["path"])
                spec = engine
            else:
                built, spec = self._resolve_engine(
                    engine, graph, fallback_graph=fallback_graph
                )
                snapshot_dir = owned_dir = self._spill_snapshot(name, built, spec)
        else:
            built, spec = self._resolve_engine(engine, graph)
            snapshot_dir = owned_dir = self._spill_snapshot(name, built, spec)
        try:
            pool = ReplicaPool(
                snapshot_dir,
                replicas,
                mmap_mode=mmap_mode,
                name=name,
                obs=self._obs,
            )
        except BaseException:
            if owned_dir is not None:
                shutil.rmtree(owned_dir, ignore_errors=True)
            raise
        return pool, spec, snapshot_dir, owned_dir

    def _spill_snapshot(self, name: str, built: Any, spec: str) -> Path:
        """Persist a freshly built engine's index for replicas to map.

        The directory is host-owned (``tempfile.mkdtemp``) and deleted when
        the deployment (or the swapped-out generation) retires.
        """
        from repro.persistence import save_index

        index = getattr(built, "index", built)
        target = Path(tempfile.mkdtemp(prefix=f"repro-replicas-{name}-"))
        try:
            return save_index(index, target, engine_spec=spec)
        except BaseException:
            shutil.rmtree(target, ignore_errors=True)
            raise

    @staticmethod
    def _dispose_pool(pool: Any, owned_dir: Optional[Path]) -> None:
        """Tear down a retired replica pool and its host-owned snapshot.

        Both halves are optional (a rehydrated deployment has an owned dir
        but no pool any more) and idempotent.
        """
        if pool is not None:
            pool.close()
        if owned_dir is not None:
            shutil.rmtree(owned_dir, ignore_errors=True)
