"""Serving control plane: named engine deployments with zero-downtime swaps.

:class:`~repro.serving.QueryService` is one worker over one engine; a live
road network needs more — indexes are rebuilt or patched as traffic functions
change while queries keep arriving.  :class:`EngineHost` is the deployment
layer above the workers:

* :meth:`~EngineHost.deploy` provisions a named deployment from a registry
  spec string (``"td-appro?budget_fraction=0.3"``), a snapshot
  (``"snapshot:/var/indexes/cal"`` — no graph needed, the snapshot embeds
  one) or a ready :class:`~repro.api.Engine`, and fronts it with the
  micro-batching machinery;
* :meth:`~EngineHost.swap` replaces a deployment's engine with **zero
  downtime**: the replacement builds (or loads) while the old engine keeps
  answering, the active service pointer flips atomically, the retired
  service drains its in-flight batches, and the replacement starts with a
  fresh result cache — so a traffic update becomes "patch a clone, swap"
  instead of "mutate the index under readers";
* :meth:`~EngineHost.aquery` / :meth:`~EngineHost.asubmit` bridge the
  service's thread-world futures into ``asyncio``, and
  :meth:`~EngineHost.stats` aggregates :class:`~repro.serving.ServiceStats`
  per deployment **across** swap generations.

How the swap stays downtime-free
--------------------------------
Submitters never hold a service reference across calls: each
:meth:`~EngineHost.submit` re-resolves the deployment's live service.  The
flip is a single pointer assignment under the host lock; a submitter that
grabbed the outgoing service just before the flip either gets its query into
the final drain (answered by the old engine — it was submitted before the
swap completed) or receives the dedicated
:class:`~repro.exceptions.ServiceClosedError` and transparently retries
against the replacement.  No error escapes to the caller, no future is
dropped, and every answer delivered after :meth:`~EngineHost.swap` returns
is bit-identical to the replacement engine's own scalar ``query``.

Example
-------
>>> host = EngineHost()
>>> host.deploy("prod", "td-appro?budget_fraction=0.3", graph)
>>> cost = host.query("prod", 3, 17, 8 * 3600.0)
>>> patched = graph.copy()          # apply the incident to a clone ...
>>> host.swap("prod", create_engine("td-appro", patched))   # ... and swap
>>> host.stats()["prod"].queries_answered
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional, Union, overload

from repro.exceptions import (
    DuplicateDeploymentError,
    HostError,
    ServiceClosedError,
    UnknownDeploymentError,
)
from repro.serving.service import QueryService, ServiceFuture
from repro.serving.stats import ServiceStats

__all__ = ["EngineHost", "DeploymentInfo", "SwapReport"]

#: What deploy/swap accept: a registry spec string or a ready engine object.
EngineOrSpec = Union[str, Any]


@dataclass(frozen=True)
class DeploymentInfo:
    """Read-only description of one deployment at the time it was asked for."""

    #: Deployment name (the routing key of ``submit``/``query``/``swap``).
    name: str
    #: Spec the live engine was provisioned from (an engine's ``name`` when
    #: it was handed in as an object).
    spec: str
    #: The live engine itself (handle for profile queries, snapshots, ...).
    engine: Any
    #: How many hot swaps this deployment has been through.
    swap_count: int


@dataclass(frozen=True)
class SwapReport:
    """What one :meth:`EngineHost.swap` did, and what it cost.

    ``build_seconds`` dominates and is paid while the old engine still
    serves; ``switch_seconds`` is the atomic pointer flip (the only moment
    the deployment is "between" engines — submitters racing it retry, they
    never fail); ``drain_seconds`` is the retired service flushing its last
    in-flight batch.
    """

    deployment: str
    old_spec: str
    new_spec: str
    build_seconds: float
    switch_seconds: float
    drain_seconds: float
    #: Queries that were still pending in the retired service at flip time
    #: and were answered by the old engine during the drain.
    drained_queries: int

    @property
    def total_seconds(self) -> float:
        """End-to-end wall time of the swap call."""
        return self.build_seconds + self.switch_seconds + self.drain_seconds


class _Deployment:
    """Mutable state of one named deployment (internal)."""

    __slots__ = (
        "name",
        "spec",
        "engine",
        "service",
        "service_options",
        "swap_lock",
        "swap_count",
        "retired_stats",
    )

    def __init__(
        self,
        name: str,
        spec: str,
        engine: Any,
        service: QueryService,
        service_options: dict[str, Any],
    ) -> None:
        self.name = name
        self.spec = spec
        self.engine = engine
        self.service = service
        self.service_options = service_options
        #: Serializes swaps per deployment; submits never take it.
        self.swap_lock = threading.Lock()
        self.swap_count = 0
        #: Final stats of every retired service generation (for stats()).
        self.retired_stats: list[ServiceStats] = []


def _bridge_future(
    future: ServiceFuture, loop: asyncio.AbstractEventLoop
) -> "asyncio.Future[float]":
    """Mirror a thread-world :class:`ServiceFuture` into an asyncio future."""
    target: "asyncio.Future[float]" = loop.create_future()

    def _transfer(settled: ServiceFuture) -> None:
        def _deliver() -> None:
            if target.cancelled():
                return
            error = settled.exception()
            if error is not None:
                target.set_exception(error)
            else:
                target.set_result(settled.result())

        # The batch settles on a service thread; hand the value over on the
        # loop thread.  A closed loop swallows the delivery (the awaiter is
        # gone with it).
        loop.call_soon_threadsafe(_deliver)

    future.add_done_callback(_transfer)
    return target


class EngineHost:
    """Owns named deployments and routes traffic to them without downtime.

    Parameters are the default :class:`~repro.serving.QueryService` knobs
    applied to every deployment; :meth:`deploy` accepts per-deployment
    overrides, and a swap reuses the deployment's knobs so operational
    tuning survives engine replacements.

    Thread-safe throughout: any number of submitter threads (or one asyncio
    loop via the ``a*`` facade) may race deploys, swaps and undeploys.
    """

    def __init__(
        self,
        *,
        max_batch_size: int = 256,
        max_wait_ms: float = 2.0,
        cache_size: int = 65_536,
        bucket_seconds: float = 0.0,
    ) -> None:
        self._defaults: dict[str, Any] = {
            "max_batch_size": max_batch_size,
            "max_wait_ms": max_wait_ms,
            "cache_size": cache_size,
            "bucket_seconds": bucket_seconds,
        }
        self._lock = threading.Lock()
        self._deployments: dict[str, _Deployment] = {}
        self._closed = False

    # ------------------------------------------------------------------
    # Provisioning
    # ------------------------------------------------------------------
    def deploy(
        self,
        name: str,
        engine: EngineOrSpec,
        graph: Any = None,
        **service_options: Any,
    ) -> DeploymentInfo:
        """Provision a deployment ``name`` serving ``engine``.

        ``engine`` is a registry spec string (built via
        :func:`repro.api.create_engine` — ``"snapshot:<dir>"`` rehydrates a
        saved index and needs no ``graph``) or a ready engine object.
        ``service_options`` override the host's default ``QueryService``
        knobs for this deployment only.  Building happens before any lock is
        taken, so deploying a slow engine never stalls live deployments.
        """
        self._check_open()
        with self._lock:
            if name in self._deployments:
                raise DuplicateDeploymentError(name)
        built, spec = self._resolve_engine(engine, graph)
        options = {**self._defaults, **service_options}
        service = QueryService(built, **options)
        deployment = _Deployment(name, spec, built, service, options)
        with self._lock:
            if self._closed or name in self._deployments:
                service.close()
                if self._closed:
                    raise HostError("EngineHost is closed")
                raise DuplicateDeploymentError(name)
            self._deployments[name] = deployment
        return self._info(deployment)

    def swap(
        self,
        name: str,
        engine: EngineOrSpec,
        graph: Any = None,
    ) -> SwapReport:
        """Replace deployment ``name``'s engine with zero downtime.

        The replacement is built (or loaded) while the old engine keeps
        serving — pass a spec string to rebuild (``graph`` defaults to the
        current engine's graph; ``"snapshot:<dir>"`` specs load their own),
        or a ready engine to make the flip the only work left.  Traffic is
        then atomically re-pointed, the retired service drains its in-flight
        batches through the *old* engine (those queries were submitted
        before the swap completed), and the replacement starts with a fresh
        result cache, so no answer computed against the old network
        survives.  Swaps on the same deployment serialize; swaps on
        different deployments run concurrently.
        """
        deployment = self._get(name)
        with deployment.swap_lock:
            old_engine = deployment.engine
            build_started = time.perf_counter()
            built, spec = self._resolve_engine(
                engine, graph, fallback_graph=getattr(old_engine, "graph", None)
            )
            new_service = QueryService(built, **deployment.service_options)
            build_seconds = time.perf_counter() - build_started

            switch_started = time.perf_counter()
            with self._lock:
                if self._closed or self._deployments.get(name) is not deployment:
                    new_service.close()
                    if self._closed:
                        raise HostError("EngineHost is closed")
                    raise UnknownDeploymentError(name, tuple(self._deployments))
                old_service = deployment.service
                old_spec = deployment.spec
                deployment.service = new_service
                deployment.engine = built
                deployment.spec = spec
                deployment.swap_count += 1
                # Retire the outgoing generation's counters in the same
                # critical section as the flip, so a concurrent stats()
                # never sees the deployment's totals dip (the pre-drain
                # snapshot is replaced with the final one below).
                deployment.retired_stats.append(old_service.stats())
                retired_index = len(deployment.retired_stats) - 1
            switch_seconds = time.perf_counter() - switch_started

            drain_started = time.perf_counter()
            drained = old_service.close()
            drain_seconds = time.perf_counter() - drain_started
            with self._lock:
                deployment.retired_stats[retired_index] = old_service.stats()
        return SwapReport(
            deployment=name,
            old_spec=old_spec,
            new_spec=spec,
            build_seconds=build_seconds,
            switch_seconds=switch_seconds,
            drain_seconds=drain_seconds,
            drained_queries=drained,
        )

    def undeploy(self, name: str) -> ServiceStats:
        """Retire a deployment; returns its final aggregated stats."""
        with self._lock:
            deployment = self._deployments.pop(name, None)
            if deployment is None:
                raise UnknownDeploymentError(name, tuple(self._deployments))
        deployment.service.close()
        return ServiceStats.merged(
            [*deployment.retired_stats, deployment.service.stats()]
        )

    # ------------------------------------------------------------------
    # Traffic
    # ------------------------------------------------------------------
    def submit(
        self, deployment: str, source: int, target: int, departure: float
    ) -> ServiceFuture:
        """Enqueue one scalar query on ``deployment``; resolves to the cost.

        Swap-safe: a submit racing a hot swap retries against the
        replacement service instead of surfacing the retired service's
        :class:`~repro.exceptions.ServiceClosedError`.
        """
        while True:
            service = self._service(deployment)
            try:
                return service.submit(source, target, departure)
            except ServiceClosedError:
                continue  # lost the race with a swap; re-resolve and retry

    def query(
        self, deployment: str, source: int, target: int, departure: float
    ) -> float:
        """Blocking convenience wrapper: ``submit(...).result()``."""
        return self.submit(deployment, source, target, departure).result()

    def flush(self, deployment: Optional[str] = None) -> int:
        """Flush pending micro-batches (one deployment, or all of them)."""
        names = (deployment,) if deployment is not None else self.deployments()
        flushed = 0
        for name in names:
            while True:
                try:
                    flushed += self._service(name).flush()
                    break
                except ServiceClosedError:
                    continue  # racing a swap; flush the replacement instead
                except UnknownDeploymentError:
                    if deployment is not None:
                        raise
                    break  # undeployed between listing and flushing: fine
        return flushed

    # ------------------------------------------------------------------
    # Async facade
    # ------------------------------------------------------------------
    def asubmit(
        self, deployment: str, source: int, target: int, departure: float
    ) -> "asyncio.Future[float]":
        """:meth:`submit`, bridged to the running event loop.

        Must be called from a coroutine (it binds to the running loop).  The
        enqueue itself runs inline — cheap unless this very submit fills the
        batch, in which case the flush computes on the loop thread; size
        ``max_batch_size``/``max_wait_ms`` accordingly or keep heavy swaps
        on :meth:`aswap`.
        """
        loop = asyncio.get_running_loop()
        return _bridge_future(
            self.submit(deployment, source, target, departure), loop
        )

    async def aquery(
        self, deployment: str, source: int, target: int, departure: float
    ) -> float:
        """Awaitable scalar query: ``await host.aquery("prod", s, t, d)``."""
        return await self.asubmit(deployment, source, target, departure)

    async def aswap(
        self, name: str, engine: EngineOrSpec, graph: Any = None
    ) -> SwapReport:
        """:meth:`swap`, off the event loop (the build runs in a thread)."""
        return await asyncio.to_thread(self.swap, name, engine, graph)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def deployments(self) -> tuple[str, ...]:
        """Active deployment names, in deployment order."""
        with self._lock:
            return tuple(self._deployments)

    def deployment(self, name: str) -> DeploymentInfo:
        """Describe one deployment (spec, live engine, swap count)."""
        return self._info(self._get(name))

    @overload
    def stats(self, deployment: str) -> ServiceStats: ...

    @overload
    def stats(self, deployment: None = None) -> dict[str, ServiceStats]: ...

    def stats(
        self, deployment: Optional[str] = None
    ) -> Union[ServiceStats, dict[str, ServiceStats]]:
        """Aggregated per-deployment stats (across swap generations).

        Counters from retired service generations are folded into the live
        service's via :meth:`ServiceStats.merged`, so a deployment's
        throughput and hit-rate history survives its hot swaps.  Pass a name
        for one deployment's stats, nothing for a ``{name: stats}`` map.
        """
        if deployment is not None:
            return self._deployment_stats(self._get(deployment))
        with self._lock:
            live = list(self._deployments.values())
        return {d.name: self._deployment_stats(d) for d in live}

    def snapshot(self, deployment: str, path: Any) -> Path:
        """Snapshot a deployment's engine, recording its originating spec.

        The written manifest carries ``engine_spec``, so the directory is
        immediately servable elsewhere via
        ``host.deploy(name, f"snapshot:{path}")``.  A deployment that was
        itself provisioned from a snapshot records the engine's resolved
        name (``"td-appro"``), not the old ``snapshot:<path>`` spec —
        re-snapshotting must not chain stale paths or lose the name.
        """
        from repro.api import parse_engine_spec
        from repro.persistence import save_index

        info = self._get(deployment)
        spec = info.spec
        if parse_engine_spec(spec)[0] == "snapshot":
            spec = str(getattr(info.engine, "name", spec))
        index = getattr(info.engine, "index", info.engine)
        return save_index(index, path, engine_spec=spec)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Retire every deployment and refuse further work (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            retired = list(self._deployments.values())
            self._deployments.clear()
        for deployment in retired:
            deployment.service.close()

    def __enter__(self) -> "EngineHost":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    def __repr__(self) -> str:
        with self._lock:
            names = ", ".join(self._deployments) or "none"
        return f"EngineHost(deployments=[{names}])"

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise HostError("EngineHost is closed")

    def _get(self, name: str) -> _Deployment:
        with self._lock:
            if self._closed:
                raise HostError("EngineHost is closed")
            deployment = self._deployments.get(name)
            if deployment is None:
                raise UnknownDeploymentError(name, tuple(self._deployments))
            return deployment

    def _service(self, name: str) -> QueryService:
        return self._get(name).service

    def _info(self, deployment: _Deployment) -> DeploymentInfo:
        return DeploymentInfo(
            name=deployment.name,
            spec=deployment.spec,
            engine=deployment.engine,
            swap_count=deployment.swap_count,
        )

    def _deployment_stats(self, deployment: _Deployment) -> ServiceStats:
        with self._lock:
            retired = list(deployment.retired_stats)
        return ServiceStats.merged([*retired, deployment.service.stats()])

    def _resolve_engine(
        self,
        engine: EngineOrSpec,
        graph: Any,
        *,
        fallback_graph: Any = None,
    ) -> tuple[Any, str]:
        """Build a spec string into an engine; pass engine objects through."""
        if isinstance(engine, str):
            from repro.api import create_engine, engine_entry, parse_engine_spec

            name, _ = parse_engine_spec(engine)
            if graph is None and not engine_entry(name).graph_optional:
                graph = fallback_graph
            return create_engine(engine, graph), engine
        if graph is not None:
            raise HostError(
                "pass a graph only with a spec string; a ready engine "
                "already carries its own"
            )
        return engine, str(getattr(engine, "name", type(engine).__name__))
