"""A thread-safe micro-batching query service over any engine.

The vectorized batch path is several times faster than a per-call loop — but
only for callers that already hold whole arrays of queries.  Serving traffic
arrives one ``(source, target, departure)`` at a time, from many threads.
:class:`QueryService` bridges the two worlds with the classic micro-batching
pattern:

* :meth:`submit` enqueues one scalar query and returns a lightweight
  :class:`ServiceFuture` immediately;
* pending queries are flushed through **one** ``batch_query`` call as soon as
  ``max_batch_size`` of them have accumulated, or when the oldest has waited
  ``max_wait_ms`` (a background flusher enforces the deadline, so a lone
  query is never stranded);
* a bounded LRU result cache with optional departure-time bucketing fronts
  the whole pipeline, and is dropped automatically whenever
  :func:`repro.core.update.apply_edge_updates` rewrites the index (via the
  index's invalidation hooks).

The service fronts any :class:`repro.api.Engine`.  Engines advertising
``capabilities().batch`` flush through one vectorized call; for the others
(e.g. the ``td-dijkstra`` / ``tdg-tree`` baselines) each flush degrades to a
scalar-query loop, so the same micro-batching front-end — same futures,
cache, invalidation and stats — can A/B-compare a baseline against the index
under identical traffic.  Either way answers are bit-identical to calling the
engine's scalar ``query`` per request — micro-batching changes throughput and
latency, never results.  A bare :class:`~repro.core.index.TDTreeIndex` (the
legacy surface) is still accepted.  With ``bucket_seconds > 0`` a cache hit
may return the cost of an earlier departure from the same bucket; pick the
bucket width from the answer tolerance your traffic allows (0 keeps the
service exact).
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Optional

import numpy as np

from repro.exceptions import (
    AdmissionRejectedError,
    DeadlineExceededError,
    ReproError,
    ServiceClosedError,
    WorkerCrashedError,
)
from repro.obs import (
    EVENT_ABORT,
    EVENT_DEADLINE,
    EVENT_SHED,
    STATUS_ERROR,
    STATUS_OK,
    EventLog,
    MetricsRegistry,
    Observability,
    PipelineTrace,
    TraceLike,
    Tracer,
    get_observability,
)
from repro.serving.admission import ADMISSION_POLICIES, ADMIT_SHED
from repro.serving.stats import LatencyReservoir, ServiceStats
from repro.utils.timing import SYSTEM_CLOCK, Clock

__all__ = ["QueryService", "ServiceFuture", "ServiceProbe"]

#: One vectorized flush: ``(sources, targets, departures) -> costs``.
BatchCompute = Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]
#: One scalar query: ``(source, target, departure) -> cost``.
ScalarCompute = Callable[[int, int, float], float]
#: Result-cache key: ``(source, target, departure-or-bucket)``.
CacheKey = tuple[int, int, float]

#: Guards the lazy allocation of a waiter event in :class:`ServiceFuture`.
#: Shared across futures: the slow path (blocking before the batch flushed)
#: is rare and short, and sharing keeps the per-query allocation at one
#: plain object instead of one lock-carrying Future.
_waiter_lock = threading.Lock()


class ServiceFuture:
    """A minimal future: ``result(timeout)`` / ``done()`` / ``exception()``.

    A drop-in subset of :class:`concurrent.futures.Future` tuned for the
    submit hot path: creating one allocates no lock — the wait event only
    materialises if a consumer blocks before the micro-batch has flushed, and
    the callback list only if someone bridges the future (e.g. the
    :class:`~repro.serving.EngineHost` async facade hands results to an
    ``asyncio`` loop through :meth:`add_done_callback`).

    Settlement is **first-wins**: once a result, an exception, or a deadline
    expiry has settled the future, later settlements are ignored — so a
    wedged batch that finally finishes cannot overwrite the
    :class:`~repro.exceptions.DeadlineExceededError` already delivered to the
    caller, and a racing ``set_exception`` runs the callbacks exactly once.
    """

    __slots__ = (
        "_done",
        "_value",
        "_error",
        "_event",
        "_callbacks",
        "_deadline",
        "_deadline_ms",
        "_expire_hook",
        "_clock",
        "_trace",
    )

    def __init__(self, clock: Clock = SYSTEM_CLOCK) -> None:
        self._done = False
        self._value: float | None = None
        self._error: BaseException | None = None
        self._event: threading.Event | None = None
        self._callbacks: list[Callable[["ServiceFuture"], None]] | None = None
        #: Absolute monotonic-clock deadline (None = no deadline).
        self._deadline: float | None = None
        self._deadline_ms: float | None = None
        #: Called once if the future settles by deadline expiry (the service
        #: wires its ``deadline_expired`` counter here).
        self._expire_hook: Callable[[float], None] | None = None
        self._clock = clock
        #: The query's trace; whichever settlement wins finishes it, so even
        #: a crash-failed or deadline-expired future yields a complete trace.
        self._trace: TraceLike | None = None

    def set_result(self, value: float) -> None:
        self._settle(value=value)

    def set_exception(self, error: BaseException) -> None:
        self._settle(error=error)

    def _settle(
        self, *, value: float | None = None, error: BaseException | None = None
    ) -> bool:
        """Settle once; returns False when another settlement won the race."""
        with _waiter_lock:
            if self._done:
                return False
            self._value = value
            self._error = error
            self._done = True
            event = self._event
            callbacks = self._callbacks
            self._callbacks = None
        if event is not None:
            event.set()
        trace = self._trace
        if trace is not None:
            self._trace = None  # only the settlement winner reaches here
            if error is not None:
                trace.finish(STATUS_ERROR, type(error).__name__)
            else:
                trace.finish(STATUS_OK)
        if callbacks:
            for fn in callbacks:
                self._invoke(fn)
        return True

    def done(self) -> bool:
        return self._done

    def add_done_callback(self, fn: Callable[["ServiceFuture"], None]) -> None:
        """Run ``fn(self)`` once the future settles (immediately if it has).

        Called from whichever thread settles the batch; exceptions raised by
        ``fn`` are swallowed so a broken callback cannot poison the other
        futures settled by the same flush.
        """
        with _waiter_lock:
            if not self._done:
                if self._callbacks is None:
                    self._callbacks = []
                self._callbacks.append(fn)
                return
        self._invoke(fn)

    def _invoke(self, fn: Callable[["ServiceFuture"], None]) -> None:
        try:
            fn(self)
        except Exception:  # noqa: BLE001 - see add_done_callback docstring
            pass

    def _arm_deadline(
        self, deadline: float, deadline_ms: float, expire_hook: Callable[[float], None]
    ) -> None:
        """Attach an absolute deadline (service-internal, set before publish)."""
        self._deadline = deadline
        self._deadline_ms = deadline_ms
        self._expire_hook = expire_hook

    def _expire(self) -> bool:
        """Settle with :class:`DeadlineExceededError`; False if already done."""
        deadline_ms = self._deadline_ms
        settled = self._settle(error=DeadlineExceededError(deadline_ms))
        if settled and self._expire_hook is not None:
            try:
                self._expire_hook(deadline_ms if deadline_ms is not None else 0.0)
            finally:
                self._expire_hook = None
        return settled

    def exception(self, timeout: float | None = None) -> BaseException | None:
        self._wait(timeout)
        return self._error

    def result(self, timeout: float | None = None) -> float:
        self._wait(timeout)
        if self._error is not None:
            raise self._error
        assert self._value is not None  # settled futures carry value or error
        return self._value

    def _wait(self, timeout: float | None) -> None:
        if self._done:
            return
        with _waiter_lock:
            if self._event is None:
                self._event = threading.Event()
        # Publish-then-recheck: if the setter raced us it either saw the
        # event (and set it) or completed before our recheck below.
        end = None if timeout is None else self._clock.monotonic() + timeout
        while not self._done:
            now = self._clock.monotonic()
            if self._deadline is not None and self._deadline - now <= 0.0:
                # The consumer enforces its own deadline: a wedged worker can
                # delay the answer, never the caller's unblocking.
                self._expire()
                return
            waits = []
            if end is not None:
                waits.append(end - now)
            if self._deadline is not None:
                waits.append(self._deadline - now)
            wait_for = min(waits) if waits else None
            if wait_for is not None and wait_for <= 0.0:
                break
            self._event.wait(wait_for)
            if end is not None and self._clock.monotonic() >= end:
                break
        if not self._done:
            raise TimeoutError("query result not available yet")


def _settle_batch_ok(batch: "list[_Pending]", costs: list[float]) -> None:
    """Settle a whole error-free batch under one ``_waiter_lock`` hold.

    Semantically identical to calling ``set_result`` per future — first-wins
    against racing deadline expiries, events set and traces finished outside
    the lock, callbacks run exactly once — but the flushed batch pays a
    single lock round-trip instead of one per query.  The lock is only held
    for plain slot writes, so the hold stays in the tens of microseconds even
    for a full 512-query batch.
    """
    events: list[threading.Event] = []
    traces: list[TraceLike] = []
    callback_runs: list[tuple[ServiceFuture, list[Callable[[ServiceFuture], None]]]] = []
    with _waiter_lock:
        for entry, value in zip(batch, costs):
            future = entry.future
            if future._done:
                continue  # a deadline expiry won the race; leave it be
            future._value = value
            future._done = True
            if future._event is not None:
                events.append(future._event)
            if future._callbacks:
                callback_runs.append((future, future._callbacks))
            future._callbacks = None
            trace = future._trace
            if trace is not None:
                future._trace = None
                traces.append(trace)
    for event in events:
        event.set()
    for trace in traces:
        trace.finish(STATUS_OK)
    for future, callbacks in callback_runs:
        for fn in callbacks:
            future._invoke(fn)


class _WeakInvalidationHook:
    """Index invalidation hook that does not keep the service alive.

    Registered on the index instead of a bound method: a service dropped
    without :meth:`QueryService.close` must still become garbage — the hook
    holds only weak references and unregisters itself once the service died.
    """

    __slots__ = ("_service_ref", "_index_ref")

    def __init__(self, service: "QueryService", index: Any) -> None:
        self._service_ref = weakref.ref(service)
        self._index_ref = weakref.ref(index)

    def __call__(self) -> None:
        service = self._service_ref()
        if service is not None:
            service.invalidate_cache()
            return
        index = self._index_ref()
        if index is not None:
            unregister = getattr(index, "unregister_invalidation_hook", None)
            if unregister is not None:
                unregister(self)


class _WeakRefreshHook:
    """Registry refresh hook that does not keep the service alive.

    Registered on the metrics registry so exports always see fresh counters
    (the service publishes deltas batch-wise, not per submit).  Weak for the
    same reason as :class:`_WeakInvalidationHook`: the process-wide registry
    outlives every service, and must not pin dropped ones.
    """

    __slots__ = ("_service_ref", "_registry_ref")

    def __init__(self, service: "QueryService", registry: MetricsRegistry) -> None:
        self._service_ref = weakref.ref(service)
        self._registry_ref = weakref.ref(registry)

    def __call__(self) -> None:
        service = self._service_ref()
        if service is not None:
            service._publish_metrics()
            return
        registry = self._registry_ref()
        if registry is not None:
            registry.unregister_refresh_hook(self)


class _ServiceInstruments:
    """Pre-bound registry children for one service's label set.

    Bound once at construction (label resolution off the hot path); the
    service mirrors its internal counters into these in batch-sized deltas
    via :meth:`QueryService._publish_metrics`.
    """

    __slots__ = (
        "submitted",
        "answered",
        "cache_hits",
        "batches",
        "shed",
        "deadline_expired",
        "in_flight",
        "cache_entries",
        "latency_ms",
    )

    def __init__(self, registry: MetricsRegistry, service: str) -> None:
        self.submitted = registry.counter(
            "repro_service_queries_total",
            "Queries accepted by submit(), including still-pending ones.",
            ("service",),
        ).labels(service=service)
        self.answered = registry.counter(
            "repro_service_answered_total",
            "Queries whose result or error has been delivered.",
            ("service",),
        ).labels(service=service)
        self.cache_hits = registry.counter(
            "repro_service_cache_hits_total",
            "Queries answered straight from the result cache.",
            ("service",),
        ).labels(service=service)
        self.batches = registry.counter(
            "repro_service_batches_total",
            "Micro-batches flushed through the engine.",
            ("service",),
        ).labels(service=service)
        self.shed = registry.counter(
            "repro_service_shed_total",
            "Queries rejected at admission (shed policy or block timeout).",
            ("service",),
        ).labels(service=service)
        self.deadline_expired = registry.counter(
            "repro_service_deadline_expired_total",
            "Futures settled with DeadlineExceededError.",
            ("service",),
        ).labels(service=service)
        self.in_flight = registry.gauge(
            "repro_service_in_flight",
            "Queries admitted but not yet answered (pending + executing).",
            ("service",),
        ).labels(service=service)
        self.cache_entries = registry.gauge(
            "repro_service_cache_entries",
            "Entries currently held by the result cache.",
            ("service",),
        ).labels(service=service)
        self.latency_ms = registry.histogram(
            "repro_service_latency_ms",
            "Submit-to-answer latency in milliseconds (log-scale buckets).",
            ("service",),
        ).labels(service=service)


def _flusher_main(service_ref: "weakref.ref[QueryService]") -> None:
    """Deadline-flusher thread body; holds the service only between waits.

    Each :meth:`QueryService._flusher_step` waits a bounded interval, so the
    strong reference taken here is dropped regularly and an abandoned service
    gets collected instead of being pinned by its own thread forever.
    """
    while True:
        service = service_ref()
        if service is None or service._flusher_step():
            return
        del service


def _resolve_compute(index: Any) -> tuple[Optional[BatchCompute], ScalarCompute]:
    """Pick the batch/scalar cost paths for whatever was handed in.

    Returns ``(batch_fn, scalar_fn)`` where ``batch_fn(sources, targets,
    departures) -> costs`` is ``None`` when the engine advertises no batch
    capability (the service then loop-flushes through ``scalar_fn``).  The
    engine-vs-legacy detection is :func:`repro.api.engine_supports`, shared
    with the experiment runners.
    """
    from repro.api import engine_supports

    scalar = lambda s, t, d: float(index.query(s, t, d).cost)  # noqa: E731
    if not engine_supports(index, "batch"):
        return None, scalar
    return (lambda s, t, d: index.batch_query(s, t, d).costs), scalar


class _Pending:
    """One enqueued query: inputs, cache key, future, and its submit time."""

    __slots__ = (
        "source",
        "target",
        "departure",
        "key",
        "future",
        "submitted",
        "deadline",
        "trace",
    )

    def __init__(
        self,
        source: int,
        target: int,
        departure: float,
        key: CacheKey | None,
        submitted: float,
        clock: Clock = SYSTEM_CLOCK,
    ) -> None:
        self.source = source
        self.target = target
        self.departure = departure
        self.key = key
        self.future = ServiceFuture(clock)
        self.submitted = submitted
        #: Absolute monotonic-clock deadline, or None (no deadline).
        self.deadline: float | None = None
        #: The query's trace (None when tracing is disabled).  Carried on the
        #: entry — not thread-local — because the query hops threads: submit
        #: thread → flusher thread → whichever thread settles the batch.
        self.trace: PipelineTrace | None = None


@dataclass(frozen=True)
class ServiceProbe:
    """One liveness/health observation of a :class:`QueryService`.

    Produced by :meth:`QueryService.probe` for the supervisor: everything a
    health check needs to distinguish *healthy*, *wedged* (a batch stuck
    inside the engine, or pending queries aging with a dead flusher), and
    *failing* (consecutive whole-batch errors) — without touching the
    engine itself.
    """

    #: ``close()`` or ``abort()`` has run.
    closed: bool
    #: The deadline-flusher daemon thread is still running.
    flusher_alive: bool
    #: Age (seconds) of the oldest enqueued-but-unflushed query; 0.0 if none.
    oldest_pending_seconds: float
    #: How long the current ``batch_query`` call has been executing; 0.0 when
    #: no flush is in progress.
    flushing_seconds: float
    #: Consecutive flushes in which *every* query failed (reset by any
    #: success); a proxy for a poisoned engine.
    consecutive_batch_failures: int
    #: Queries enqueued and waiting to be flushed.
    pending: int
    #: Queries admitted but not yet answered (pending + executing).
    in_flight: int


class QueryService:
    """Micro-batching, caching front-end for one engine.

    Parameters
    ----------
    index:
        Any :class:`repro.api.Engine` (batched or not — engines without the
        ``batch`` capability are served through a scalar-query loop per
        flush), or a bare built :class:`~repro.core.index.TDTreeIndex`
        (legacy surface).  When the engine exposes the invalidation-hook
        registry the result cache is wired into index updates.
    max_batch_size:
        Flush as soon as this many queries are pending.  The submitting
        thread that fills the batch performs the flush itself (no thread
        hand-off on the hot path).
    max_wait_ms:
        Upper bound on how long a pending query may wait for co-travellers;
        enforced by a daemon flusher thread.
    cache_size:
        Maximum number of cached results (LRU eviction); 0 disables caching.
    bucket_seconds:
        Width of the departure-time cache buckets.  0 (default) caches on the
        exact departure only, keeping the service's answers exact; a positive
        width trades bounded staleness within a bucket for a higher hit rate.
    max_pending:
        Admission bound: at most this many queries may be in flight
        (enqueued or executing) at once.  ``None`` (default) keeps the
        pre-resilience behaviour of an unbounded queue.  Cache hits bypass
        admission — they consume no worker capacity.
    admission_policy:
        What an over-capacity ``submit`` does: ``"block"`` (default) waits
        for capacity (backpressure), ``"shed"`` raises
        :class:`~repro.exceptions.AdmissionRejectedError` immediately.
    admission_timeout_ms:
        Upper bound on a ``"block"`` wait; past it the query is shed with
        :class:`~repro.exceptions.AdmissionRejectedError`.  ``None`` waits
        indefinitely (until capacity frees or the service closes).
    default_deadline_ms:
        Deadline applied to every submit that does not pass its own
        ``deadline_ms``.  A query whose deadline elapses before its answer
        settles with :class:`~repro.exceptions.DeadlineExceededError` — the
        caller is never blocked past the deadline, even by a wedged engine.
    name:
        The value of the ``service`` label on every metric this service
        publishes, and the ``subject`` of its structured events.
    obs:
        The :class:`~repro.obs.Observability` bundle to publish into
        (default: the process-wide bundle).  Pass
        ``Observability.disabled()`` to strip every trace/metric/event —
        the baseline the obs overhead benchmark compares against.
    clock:
        Monotonic time source for latencies, deadlines, and batch-age
        bookkeeping (default: the bundle's clock).  Inject a
        :class:`~repro.utils.timing.FakeClock` for deterministic
        deadline/aging tests.

    Examples
    --------
    >>> service = QueryService(index, max_batch_size=128, max_wait_ms=2.0)
    >>> futures = [service.submit(s, t, d) for s, t, d in workload]
    >>> costs = [f.result() for f in futures]
    >>> service.stats().batch_occupancy
    """

    def __init__(
        self,
        index: Any,
        *,
        max_batch_size: int = 256,
        max_wait_ms: float = 2.0,
        cache_size: int = 65_536,
        bucket_seconds: float = 0.0,
        max_pending: int | None = None,
        admission_policy: str = "block",
        admission_timeout_ms: float | None = None,
        default_deadline_ms: float | None = None,
        name: str = "service",
        obs: Observability | None = None,
        clock: Clock | None = None,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be at least 1")
        if max_wait_ms < 0 or cache_size < 0 or bucket_seconds < 0:
            raise ValueError("max_wait_ms, cache_size and bucket_seconds must be >= 0")
        if admission_policy not in ADMISSION_POLICIES:
            raise ValueError(
                f"admission_policy must be one of {ADMISSION_POLICIES}, "
                f"got {admission_policy!r}"
            )
        if max_pending is not None and max_pending < 1:
            raise ValueError("max_pending must be at least 1 (or None for unbounded)")
        if admission_timeout_ms is not None and admission_timeout_ms < 0:
            raise ValueError("admission_timeout_ms must be >= 0")
        if default_deadline_ms is not None and default_deadline_ms <= 0:
            raise ValueError("default_deadline_ms must be > 0")
        self._index = index
        self._batch_compute, self._scalar_compute = _resolve_compute(index)
        self.max_batch_size = int(max_batch_size)
        self.max_wait = float(max_wait_ms) / 1000.0
        self.cache_size = int(cache_size)
        self.bucket_seconds = float(bucket_seconds)
        self.max_pending = None if max_pending is None else int(max_pending)
        self.admission_policy = admission_policy
        self.admission_timeout = (
            None if admission_timeout_ms is None else float(admission_timeout_ms) / 1000.0
        )
        self.default_deadline_ms = (
            None if default_deadline_ms is None else float(default_deadline_ms)
        )
        self.name = str(name)
        self._obs = obs if obs is not None else get_observability()
        self._clock: Clock = clock if clock is not None else self._obs.clock
        # One None-check per hot-path site is the entire cost of disabled obs.
        self._tracer: Tracer | None = self._obs.tracer if self._obs.enabled else None
        self._events: EventLog | None = self._obs.events if self._obs.enabled else None
        self._metrics = (
            _ServiceInstruments(self._obs.registry, self.name)
            if self._obs.enabled
            else None
        )
        #: Counter values already mirrored into the registry (delta publish).
        self._published = [0, 0, 0, 0, 0, 0]
        #: Latency bucket counts / sum already mirrored into the histogram.
        #: The reservoir and the registry histogram share the same bucket
        #: bounds, so publishing is a bucket-count diff — no per-query
        #: ``observe()`` on the hot path.
        self._published_latency: tuple[tuple[int, ...], float] = ((), 0.0)

        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        #: Signalled whenever in-flight capacity frees up (blocked admits wait
        #: here) and on close/abort so no admit waits on a dead service.
        self._capacity = threading.Condition(self._lock)
        self._pending: list[_Pending] = []
        self._cache: OrderedDict[CacheKey, float] = OrderedDict()
        #: Bumped by invalidate_cache(); a batch computed against an older
        #: generation must not populate the cache (its costs may predate an
        #: index update that happened while the batch was in flight).
        self._cache_generation = 0
        self._closed = False

        # Counters (all mutated under the lock).
        self._submitted = 0
        self._answered = 0
        self._cache_hits = 0
        self._invalidations = 0
        self._num_batches = 0
        self._batched_queries = 0
        self._latencies = LatencyReservoir()
        self._first_submit: float | None = None
        self._last_answer: float | None = None
        # Resilience state (also under the lock).
        self._in_flight = 0
        self._shed = 0
        self._deadline_expired = 0
        self._consecutive_batch_failures = 0
        #: perf_counter when the current engine flush started; None when no
        #: flush is executing.  Lets the supervisor see a wedged batch.
        self._flushing_since: float | None = None

        self._invalidation_hook = _WeakInvalidationHook(self, index)
        register = getattr(index, "register_invalidation_hook", None)
        if register is not None:
            register(self._invalidation_hook)

        self._refresh_hook: _WeakRefreshHook | None = None
        if self._metrics is not None:
            self._refresh_hook = _WeakRefreshHook(self, self._obs.registry)
            self._obs.registry.register_refresh_hook(self._refresh_hook)

        self._flusher = threading.Thread(
            target=_flusher_main,
            args=(weakref.ref(self),),
            name="repro-query-service-flusher",
            daemon=True,
        )
        self._flusher.start()

    @property
    def engine(self) -> Any:
        """The engine (or index) this service computes against.

        The :class:`~repro.serving.EngineHost` uses this to reach through a
        deployment's front service to its compute backend — e.g. the
        :class:`~repro.serving.ReplicaPool` of a multi-process deployment.
        """
        return self._index

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        source: int,
        target: int,
        departure: float,
        *,
        deadline_ms: float | None = None,
    ) -> ServiceFuture:
        """Enqueue one travel-cost query; the future resolves to the cost.

        Disconnected or invalid queries resolve the future with the same
        :class:`~repro.exceptions.ReproError` subclass the scalar query
        raises.  With ``max_pending`` set, an over-capacity submit blocks or
        raises :class:`~repro.exceptions.AdmissionRejectedError` per the
        admission policy; ``deadline_ms`` (default: the service's
        ``default_deadline_ms``) bounds how long the returned future may stay
        unsettled before it fails with
        :class:`~repro.exceptions.DeadlineExceededError`.
        """
        source = int(source)
        target = int(target)
        departure = float(departure)
        if deadline_ms is not None and deadline_ms <= 0:
            raise ValueError("deadline_ms must be > 0")
        effective_deadline_ms = (
            deadline_ms if deadline_ms is not None else self.default_deadline_ms
        )
        # The key only ever feeds cache lookups/inserts, both gated on
        # ``cache_size`` — skip building it on cache-off services.
        key = self._cache_key(source, target, departure) if self.cache_size else None
        now = self._clock.monotonic()
        tracer = self._tracer
        trace = (
            PipelineTrace("query", tracer, now, self.name, source, target)
            if tracer is not None
            else None
        )
        batch: list[_Pending] | None = None
        try:
            with self._lock:
                if self._closed:
                    raise ServiceClosedError("submit")
                if self._first_submit is None:
                    self._first_submit = now
                self._submitted += 1
                if key is not None:
                    cached = self._cache.get(key)
                    if cached is not None:
                        self._cache.move_to_end(key)
                        self._cache_hits += 1
                        self._answered += 1
                        done = self._clock.monotonic()
                        self._latencies.record(done - now)
                        self._last_answer = done
                        future = ServiceFuture(self._clock)
                        if trace is not None:
                            trace.attrs["cache_hit"] = True
                            future._trace = trace  # settle finishes the trace
                        future.set_result(cached)
                        return future
                self._admit(now)
                self._in_flight += 1
                entry = _Pending(source, target, departure, key, now, self._clock)
                if trace is not None:
                    # Admission can only block when the service is bounded, so
                    # an unbounded service reuses the submit timestamp instead
                    # of reading the clock again.  Slot write == the
                    # ``enqueued()`` boundary, minus one frame per query.
                    trace._enqueued = (
                        now if self.max_pending is None else self._clock.monotonic()
                    )
                    entry.trace = trace
                    entry.future._trace = trace
                if effective_deadline_ms is not None:
                    entry.deadline = now + effective_deadline_ms / 1000.0
                    entry.future._arm_deadline(
                        entry.deadline, effective_deadline_ms, self._note_expired
                    )
                self._pending.append(entry)
                if len(self._pending) >= self.max_batch_size:
                    batch = self._pending
                    self._pending = []
                elif len(self._pending) == 1:
                    self._wakeup.notify()  # flusher arms the max-wait deadline
        except ReproError as exc:
            # No future carries this trace (shed / closed): complete it here
            # so rejected submits still show up whole in the trace ring.
            if trace is not None:
                trace.finish(STATUS_ERROR, type(exc).__name__)
            raise
        if batch is not None:
            self._run_batch(batch)
        return entry.future

    def _admit(self, now: float) -> None:
        """Enforce the admission bound; caller holds the lock.

        Returns having reserved nothing — the caller increments
        ``_in_flight`` itself once the entry is actually created — but only
        after there is room for it (or raises).
        """
        if self.max_pending is None:
            return
        if self._in_flight < self.max_pending:
            return
        if self.admission_policy == ADMIT_SHED:
            self._shed += 1
            self._emit_shed(ADMIT_SHED)
            raise AdmissionRejectedError(self.max_pending, ADMIT_SHED)
        end = None if self.admission_timeout is None else now + self.admission_timeout
        while self._in_flight >= self.max_pending:
            if self._closed:
                raise ServiceClosedError("submit")
            wait_for = None
            if end is not None:
                wait_for = end - self._clock.monotonic()
                if wait_for <= 0.0:
                    self._shed += 1
                    self._emit_shed("block")
                    raise AdmissionRejectedError(self.max_pending, "block")
            self._capacity.wait(timeout=wait_for)
        if self._closed:
            raise ServiceClosedError("submit")

    def _emit_shed(self, policy: str) -> None:
        """Record one admission rejection in the event log (rare path)."""
        if self._events is not None:
            self._events.emit(
                EVENT_SHED, self.name, policy=policy, max_pending=self.max_pending
            )

    def _note_expired(self, deadline_ms: float) -> None:
        """Expire-hook wired into deadlined futures (counts expiries only).

        Capacity/answered accounting happens exactly once where the entry
        leaves the system (flusher-side expiry removal or ``_run_batch``);
        this hook runs on whichever thread wins the expiry race — possibly a
        consumer inside ``result()`` — so it touches nothing else.
        """
        with self._lock:
            self._deadline_expired += 1
        if self._events is not None:
            self._events.emit(EVENT_DEADLINE, self.name, deadline_ms=deadline_ms)

    def query(self, source: int, target: int, departure: float) -> float:
        """Blocking convenience wrapper: ``submit(...).result()``."""
        return self.submit(source, target, departure).result()

    def flush(self) -> int:
        """Synchronously flush whatever is pending; returns the batch size.

        Raises :class:`~repro.exceptions.ServiceClosedError` on a closed
        service — :meth:`close` has already drained everything there was.
        """
        with self._lock:
            if self._closed:
                raise ServiceClosedError("flush")
        return self._drain()

    def _drain(self) -> int:
        """Flush whatever is pending regardless of the closed flag."""
        with self._lock:
            batch = self._pending
            self._pending = []
        if batch:
            self._run_batch(batch)
        return len(batch)

    # ------------------------------------------------------------------
    # Cache
    # ------------------------------------------------------------------
    def _cache_key(self, source: int, target: int, departure: float) -> CacheKey:
        if self.bucket_seconds > 0.0:
            return source, target, int(departure // self.bucket_seconds)
        return source, target, departure

    def invalidate_cache(self) -> None:
        """Drop every cached result (wired into the index's update path)."""
        with self._lock:
            if self._closed:
                # A retired generation's cache is about to be garbage; updates
                # aimed at the live generation must not count invalidations
                # against this one (the hook list is snapshotted by
                # ``notify_invalidation``, so an in-flight notify can still
                # reach a service whose hook was just unregistered).
                return
            self._cache.clear()
            self._cache_generation += 1
            self._invalidations += 1

    # ------------------------------------------------------------------
    # Flushing
    # ------------------------------------------------------------------
    #: Upper bound on one flusher wait; bounds how long the thread pins the
    #: service between liveness checks (see :func:`_flusher_main`).
    _FLUSHER_WAIT_CAP = 0.1

    def _flusher_step(self) -> bool:
        """One bounded iteration of the deadline flusher; True = thread exits."""
        expired: list[_Pending] = []
        batch: list[_Pending] | None = None
        with self._wakeup:
            if self._closed:
                # close() drains after joining this thread; leaving the
                # pending batch to it keeps the drained-count it reports
                # exact (and the shutdown path single).
                return True
            now = self._clock.monotonic()
            if self._pending:
                # Proactively expire overdue entries so their admission slots
                # free up even when no consumer is blocked in result().
                keep: list[_Pending] = []
                for entry in self._pending:
                    if entry.deadline is not None and entry.deadline <= now:
                        expired.append(entry)
                    else:
                        keep.append(entry)
                if expired:
                    self._pending = keep
                    self._in_flight -= len(expired)
                    self._answered += len(expired)
                    self._last_answer = now
                    self._capacity.notify_all()
            if self._pending:
                flush_due = self._pending[0].submitted + self.max_wait
                if flush_due <= now:
                    batch = self._pending
                    self._pending = []
                elif not expired:
                    # Sleep until the batch is due or the next per-query
                    # deadline needs expiring, whichever comes first.
                    due = flush_due
                    next_deadline = min(
                        (p.deadline for p in self._pending if p.deadline is not None),
                        default=None,
                    )
                    if next_deadline is not None:
                        due = min(due, next_deadline)
                    self._wakeup.wait(timeout=min(due - now, self._FLUSHER_WAIT_CAP))
                    return False  # re-check: the batch may have been flushed
            elif not expired:
                self._wakeup.wait(timeout=self._FLUSHER_WAIT_CAP)
                return False
        # Settle expired futures outside the lock: _expire runs callbacks.
        for entry in expired:
            entry.future._expire()
        if batch:
            self._run_batch(batch)
        return False

    def _per_query_costs(
        self, sources: np.ndarray, targets: np.ndarray, departures: np.ndarray
    ) -> tuple[np.ndarray, dict[int, Exception]]:
        """Answer a flush one query at a time (loop-flush / degraded mode)."""
        count = sources.size
        costs = np.full(count, np.nan)
        errors: dict[int, Exception] = {}
        for i in range(count):
            try:
                if self._batch_compute is not None:
                    costs[i] = self._batch_compute(
                        sources[i : i + 1], targets[i : i + 1], departures[i : i + 1]
                    )[0]
                else:
                    costs[i] = self._scalar_compute(
                        int(sources[i]), int(targets[i]), float(departures[i])
                    )
            except Exception as exc:
                errors[i] = exc
        return costs, errors

    def _run_batch(self, batch: list[_Pending]) -> None:
        """Answer one batch and settle futures.

        Batch-capable engines answer the whole flush with one vectorized
        call; the rest loop over the engine's scalar query (bit-identical
        answers either way — the flush strategy changes throughput only).
        Never lets an exception escape: every failure mode settles the
        affected futures instead, so a bad query (or engine bug) can neither
        kill the daemon flusher nor leave a caller blocked forever.
        """
        sources = np.fromiter((p.source for p in batch), np.int64, len(batch))
        targets = np.fromiter((p.target for p in batch), np.int64, len(batch))
        departures = np.fromiter((p.departure for p in batch), np.float64, len(batch))
        generation = self._cache_generation
        errors: dict[int, Exception] = {}
        if self._tracer is not None:
            # The whole batch leaves the queue at one instant: a single clock
            # read timestamps every pending-end/engine-start boundary.
            flushed = self._clock.monotonic()
            for entry in batch:
                trace = entry.trace
                if trace is not None:
                    # Slot write == the ``flushed()`` boundary, minus one
                    # frame per query.
                    trace._flushed = flushed
        with self._lock:
            self._flushing_since = self._clock.monotonic()
        try:
            if self._batch_compute is None:
                costs, errors = self._per_query_costs(sources, targets, departures)
            else:
                try:
                    costs = np.asarray(
                        self._batch_compute(sources, targets, departures),
                        dtype=np.float64,
                    )
                except ReproError:
                    # One bad query fails a whole vectorized call; degrade to
                    # per-query calls so the rest of the batch still gets
                    # answers.
                    costs, errors = self._per_query_costs(sources, targets, departures)
                except Exception as exc:
                    costs = np.full(len(batch), np.nan)
                    errors = {i: exc for i in range(len(batch))}
        finally:
            with self._lock:
                self._flushing_since = None

        now = self._clock.monotonic()
        if self._tracer is not None:
            # Successful engine spans are closed by the settle-side finish();
            # only failures need their error recorded on the span itself.
            for i, error in errors.items():
                trace = batch[i].trace
                if trace is not None:
                    trace.engine_done(now, type(error).__name__)
        # One ``tolist`` beats a ``float(costs[i])`` numpy-scalar read per
        # query in the settle and cache-insert loops below.
        costs_list: list[float] = costs.tolist()
        latencies = [now - p.submitted for p in batch]
        with self._lock:
            self._num_batches += 1
            self._batched_queries += len(batch)
            self._answered += len(batch)
            self._in_flight -= len(batch)
            self._capacity.notify_all()
            if batch and len(errors) == len(batch):
                self._consecutive_batch_failures += 1
            else:
                self._consecutive_batch_failures = 0
            self._last_answer = now
            self._latencies.extend(latencies)
            # Skip cache insertion when an invalidation raced the engine call
            # (these costs may predate the index update that triggered it) or
            # the service retired mid-batch — invalidate_cache() no-ops once
            # closed, so a torn insert would never be cleared.
            if (
                self.cache_size
                and not self._closed
                and generation == self._cache_generation
            ):
                for i, entry in enumerate(batch):
                    if i in errors or entry.key is None:
                        continue
                    self._cache[entry.key] = costs_list[i]
                    self._cache.move_to_end(entry.key)
                while len(self._cache) > self.cache_size:
                    self._cache.popitem(last=False)
        if errors:
            for i, entry in enumerate(batch):
                error = errors.get(i)
                if error is not None:
                    entry.future.set_exception(error)
                else:
                    entry.future.set_result(costs_list[i])
        else:
            _settle_batch_ok(batch, costs_list)
        if self._metrics is not None:
            self._publish_metrics()

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def _publish_metrics(self) -> None:
        """Mirror counter deltas into the registry (pull-model publishing).

        Called after every flushed batch and as a registry refresh hook, so
        the hot path pays one plain-int increment per event while exports
        still read up-to-date values.  Safe from any thread.
        """
        metrics = self._metrics
        if metrics is None:
            return
        with self._lock:
            current = [
                self._submitted,
                self._answered,
                self._cache_hits,
                self._num_batches,
                self._shed,
                self._deadline_expired,
            ]
            deltas = [c - p for c, p in zip(current, self._published)]
            self._published = current
            in_flight = self._in_flight
            cache_entries = len(self._cache)
            bucket_counts = self._latencies.bucket_counts
            total_ms = self._latencies.total_ms
            prev_counts, prev_ms = self._published_latency
            if prev_counts:
                bucket_deltas = [c - p for c, p in zip(bucket_counts, prev_counts)]
            else:
                bucket_deltas = list(bucket_counts)
            sum_delta_ms = total_ms - prev_ms
            self._published_latency = (bucket_counts, total_ms)
        children = (
            metrics.submitted,
            metrics.answered,
            metrics.cache_hits,
            metrics.batches,
            metrics.shed,
            metrics.deadline_expired,
        )
        for child, delta in zip(children, deltas):
            if delta:
                child.inc(delta)
        if any(bucket_deltas):
            metrics.latency_ms.merge_counts(bucket_deltas, sum_delta_ms)
        metrics.in_flight.set(in_flight)
        metrics.cache_entries.set(cache_entries)

    def recent_traces(self, n: int | None = None) -> list[TraceLike]:
        """The most recently completed query traces (newest last).

        Empty when the service's observability bundle is disabled.  The ring
        lives on the bundle's tracer, so services sharing one bundle (e.g.
        the deployments of one :class:`~repro.serving.EngineHost`) see a
        merged ring — filter on the ``service`` attr to split it.
        """
        if self._tracer is None:
            return []
        return self._tracer.recent(n)

    def stats(self) -> ServiceStats:
        """A consistent snapshot of the service counters."""
        with self._lock:
            avg_batch = (
                self._batched_queries / self._num_batches if self._num_batches else 0.0
            )
            elapsed = 0.0
            if self._first_submit is not None and self._last_answer is not None:
                elapsed = max(self._last_answer - self._first_submit, 0.0)
            return ServiceStats(
                queries_submitted=self._submitted,
                queries_answered=self._answered,
                cache_hits=self._cache_hits,
                cache_entries=len(self._cache),
                cache_invalidations=self._invalidations,
                num_batches=self._num_batches,
                avg_batch_size=avg_batch,
                batch_occupancy=avg_batch / self.max_batch_size,
                p50_latency_ms=self._latencies.percentile_ms(50.0),
                p95_latency_ms=self._latencies.percentile_ms(95.0),
                throughput_qps=(self._answered / elapsed) if elapsed > 0 else 0.0,
                elapsed_seconds=elapsed,
                p99_latency_ms=self._latencies.percentile_ms(99.0),
                shed=self._shed,
                deadline_expired=self._deadline_expired,
                latency_bucket_counts=self._latencies.bucket_counts,
            )

    def probe(self) -> ServiceProbe:
        """One consistent liveness observation (see :class:`ServiceProbe`).

        Cheap (one lock acquisition, no engine calls) — the supervisor polls
        it every interval; tests call it directly for deterministic health
        checks.
        """
        now = self._clock.monotonic()
        with self._lock:
            oldest = (
                max(now - self._pending[0].submitted, 0.0) if self._pending else 0.0
            )
            flushing = (
                max(now - self._flushing_since, 0.0)
                if self._flushing_since is not None
                else 0.0
            )
            return ServiceProbe(
                closed=self._closed,
                flusher_alive=self._flusher.is_alive(),
                oldest_pending_seconds=oldest,
                flushing_seconds=flushing,
                consecutive_batch_failures=self._consecutive_batch_failures,
                pending=len(self._pending),
                in_flight=self._in_flight,
            )

    def abort(self, error: BaseException | None = None) -> int:
        """Kill the service NOW: fail every pending future with ``error``.

        The supervisor's counterpart to :meth:`close`: no drain (the engine
        may be wedged or poisoned — running one more batch through it is
        exactly what we must not do) and no flusher join (the flusher may
        *be* the wedged thread).  Marks the service closed, settles every
        enqueued future with ``error`` (default
        :class:`~repro.exceptions.WorkerCrashedError`), wakes blocked
        admission waiters, and detaches from the index.  Returns how many
        futures it failed.  Idempotent: a second call returns 0.
        """
        if error is None:
            error = WorkerCrashedError("<service>", "aborted")
        with self._lock:
            if self._closed:
                return 0
            self._closed = True
            abandoned = self._pending
            self._pending = []
            self._in_flight -= len(abandoned)
            self._answered += len(abandoned)
            self._last_answer = self._clock.monotonic()
            self._wakeup.notify_all()
            self._capacity.notify_all()
        # Same ordering rationale as close(): detach from the index first so
        # a racing update cannot fire into this retired generation's cache.
        unregister = getattr(self._index, "unregister_invalidation_hook", None)
        if unregister is not None:
            unregister(self._invalidation_hook)
        for entry in abandoned:
            entry.future.set_exception(error)
        if self._events is not None:
            self._events.emit(
                EVENT_ABORT, self.name, failed=len(abandoned), error=type(error).__name__
            )
        self._detach_obs()
        return len(abandoned)

    def close(self) -> int:
        """Flush pending queries, stop the flusher, and detach from the index.

        Returns how many still-pending queries the final drain answered (0 on
        repeated close) — the hot-swap path reports it as the number of
        queries the outgoing engine answered after traffic had already moved.
        Idempotent and safe under concurrent calls: exactly one caller drains
        (and reports the drained count); every other call returns 0
        immediately.
        """
        with self._lock:
            if self._closed:
                return 0
            self._closed = True
            self._wakeup.notify_all()
            self._capacity.notify_all()
        # Detach from the index BEFORE the drain, not after: during a hot
        # swap the successor service is already registered on the (shared or
        # cloned) index, and an update racing this close would otherwise fire
        # our hook mid-drain and bill the invalidation to the retired
        # generation's cache.
        unregister = getattr(self._index, "unregister_invalidation_hook", None)
        if unregister is not None:
            unregister(self._invalidation_hook)
        self._flusher.join(timeout=5.0)
        drained = self._drain()
        self._detach_obs()
        return drained

    def _detach_obs(self) -> None:
        """Final metrics publish, then stop refreshing for this service."""
        self._publish_metrics()
        if self._refresh_hook is not None:
            self._obs.registry.unregister_refresh_hook(self._refresh_hook)
            self._refresh_hook = None

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"QueryService(max_batch_size={self.max_batch_size}, "
            f"max_wait_ms={self.max_wait * 1000.0:g}, "
            f"cache_size={self.cache_size}, bucket_seconds={self.bucket_seconds:g})"
        )
