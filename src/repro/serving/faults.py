"""Deterministic fault injection for the serving layer.

:class:`FaultyEngine` wraps any :class:`repro.api.Engine` and injects
failures into its ``batch_query`` path on a fixed, seeded schedule
(:class:`FaultPlan`): latency spikes every Nth batch, one transient
exception, one hard crash, or a persistent poisoning.  Deterministic by
construction — the same plan over the same traffic produces the same
failures — so chaos tests and ``bench_serving.py --chaos`` are exactly
reproducible.

The wrapper is a first-class registry engine::

    create_engine("faulty:td-appro?crash_batch=3&budget_fraction=0.4", graph)

builds the inner ``td-appro`` engine (all non-fault options are forwarded to
its factory) and wraps it.  Any deployment — a test, a bench, a staging
host — injects failures through the normal engine path, no special casing in
the serving layer.

Two error types model the two failure classes the micro-batching service
distinguishes (see ``QueryService._run_batch``):

* :class:`TransientInjectedFaultError` is a :class:`~repro.exceptions.ReproError`
  — the service treats it like a bad query, degrades the batch to per-query
  calls, and still answers everything (a *graceful* failure);
* :class:`InjectedFaultError` is **not** a ``ReproError`` — it models an
  engine crash, fails the whole batch, and is what the supervisor's
  consecutive-failure detection reacts to.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping

from repro.exceptions import ReproError
from repro.obs import EVENT_FAULT, EventLog
from repro.serving.admission import _jitter_fraction

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.api.types import EngineCapabilities, QueryOptions, Route, RouteMatrix, RouteProfile
    from repro.functions.piecewise import PiecewiseLinearFunction
    from repro.graph.td_graph import TDGraph
    from repro.utils.memory import MemoryBreakdown

__all__ = [
    "FaultPlan",
    "FaultyEngine",
    "InjectedFaultError",
    "TransientInjectedFaultError",
]


class InjectedFaultError(RuntimeError):
    """A hard injected crash.

    Deliberately **not** a :class:`~repro.exceptions.ReproError`: the serving
    layer treats unknown exceptions from ``batch_query`` as engine crashes
    (the whole batch fails), which is exactly what this simulates.
    """

    def __init__(self, batch_number: int, kind: str = "crash"):
        super().__init__(
            f"injected {kind} on batch_query call #{batch_number} "
            "(deterministic fault plan)"
        )
        self.batch_number = batch_number
        self.kind = kind


class TransientInjectedFaultError(ReproError, InjectedFaultError):
    """A transient injected failure the service degrades around.

    Being a :class:`~repro.exceptions.ReproError`, the micro-batching service
    falls back to per-query calls for the affected batch and still delivers
    every answer — the graceful half of the fault model.
    """

    def __init__(self, batch_number: int):
        InjectedFaultError.__init__(self, batch_number, kind="transient fault")


@dataclass(frozen=True)
class FaultPlan:
    """When :class:`FaultyEngine` misbehaves (all triggers are 1-based).

    The default plan injects nothing — a ``FaultyEngine`` with a zero plan is
    behaviourally transparent (the contract suite runs it as a normal
    engine).
    """

    #: This ``batch_query`` call raises :class:`TransientInjectedFaultError`
    #: (0 = never).  The service degrades to per-query calls and recovers.
    fail_batch: int = 0
    #: This ``batch_query`` call raises :class:`InjectedFaultError` once
    #: (0 = never).  The whole batch fails; later calls succeed.
    crash_batch: int = 0
    #: Every ``batch_query`` call from this one on raises
    #: :class:`InjectedFaultError` (0 = never).  Models a poisoned engine a
    #: restart cannot fix — recovery needs a snapshot or a fallback.
    poison_from: int = 0
    #: Every Nth ``batch_query`` call sleeps before answering (0 = never).
    latency_every: int = 0
    #: Base injected latency; jittered deterministically in [0.5x, 1.0x).
    latency_ms: float = 0.0
    #: Seed for the latency jitter (and nothing else).
    seed: int = 0

    def __post_init__(self) -> None:
        for field_name in ("fail_batch", "crash_batch", "poison_from", "latency_every"):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be >= 0 (0 disables it)")
        if self.latency_ms < 0:
            raise ValueError("latency_ms must be >= 0")


class FaultyEngine:
    """An engine wrapper that fails on schedule (see :class:`FaultPlan`).

    Scalar ``query`` / ``profile`` / ``update_edges`` pass straight through —
    faults target ``batch_query`` only, so the exact reference the chaos
    suite compares recovered answers against (the engine's scalar ``query``)
    is always available.  Results are re-tagged with this engine's name so
    provenance shows the traffic went through the fault layer.
    """

    def __init__(
        self, inner: Any, plan: FaultPlan | None = None, *, name: str = "faulty"
    ) -> None:
        #: The wrapped engine; reach through for un-faulted access.
        self.inner = inner
        self.name = name
        self.graph: "TDGraph" = inner.graph
        self.plan = plan or FaultPlan()
        self._calls = 0
        self._calls_lock = threading.Lock()
        self._events: EventLog | None = None

    def attach_event_log(self, events: "EventLog | None") -> None:
        """Record every injected fault into ``events`` (``fault.injected``).

        An :class:`~repro.serving.EngineHost` attaches its bundle's event log
        when a faulty engine is deployed, so chaos runs leave the injected
        faults and the recoveries they triggered in the *same* timeline.
        """
        self._events = events

    def _record_fault(self, kind: str, call: int) -> None:
        events = self._events
        if events is not None:
            events.emit(EVENT_FAULT, self.name, fault=kind, batch=call)

    # -- protocol ------------------------------------------------------
    def capabilities(self) -> "EngineCapabilities":
        return self.inner.capabilities()

    def query(
        self,
        source: int,
        target: int,
        departure: float,
        *,
        options: "QueryOptions | None" = None,
    ) -> "Route":
        route = self.inner.query(source, target, departure, options=options)
        route.engine = self.name
        return route

    def profile(self, source: int, target: int) -> "RouteProfile":
        profile = self.inner.profile(source, target)
        profile.engine = self.name
        return profile

    def batch_query(
        self,
        sources: "np.ndarray",
        targets: "np.ndarray",
        departures: "np.ndarray",
        *,
        options: "QueryOptions | None" = None,
    ) -> "RouteMatrix":
        with self._calls_lock:
            self._calls += 1
            call = self._calls
        plan = self.plan
        if plan.latency_every and call % plan.latency_every == 0 and plan.latency_ms > 0:
            jitter = 0.5 + 0.5 * _jitter_fraction(plan.seed, call)
            self._record_fault("latency", call)
            time.sleep(plan.latency_ms * jitter / 1000.0)
        if plan.poison_from and call >= plan.poison_from:
            self._record_fault("poison", call)
            raise InjectedFaultError(call, kind="poisoned-engine crash")
        if plan.crash_batch and call == plan.crash_batch:
            self._record_fault("crash", call)
            raise InjectedFaultError(call)
        if plan.fail_batch and call == plan.fail_batch:
            self._record_fault("transient", call)
            raise TransientInjectedFaultError(call)
        matrix = self.inner.batch_query(sources, targets, departures, options=options)
        matrix.engine = self.name
        return matrix

    def update_edges(
        self, changes: Mapping[tuple[int, int], "PiecewiseLinearFunction"]
    ) -> Any:
        return self.inner.update_edges(changes)

    def memory_breakdown(self) -> "MemoryBreakdown":
        return self.inner.memory_breakdown()

    # -- introspection -------------------------------------------------
    @property
    def batch_calls(self) -> int:
        """How many ``batch_query`` calls the wrapper has seen."""
        with self._calls_lock:
            return self._calls

    def __getattr__(self, attr: str) -> Any:
        # Everything else (``.index``, invalidation-hook registration,
        # ``statistics()``...) resolves against the wrapped engine, so the
        # serving layer's cache wiring works through the fault layer.
        try:
            inner = object.__getattribute__(self, "inner")
        except AttributeError:
            raise AttributeError(attr) from None
        return getattr(inner, attr)

    def __repr__(self) -> str:
        return f"FaultyEngine(inner={self.inner!r}, plan={self.plan!r})"
