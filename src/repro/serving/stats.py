"""Operational statistics of the serving layer.

:class:`ServiceStats` is an immutable snapshot of a
:class:`~repro.serving.service.QueryService`'s counters — safe to hand to a
metrics exporter or print in a benchmark report.  Latency percentiles come
from a bounded reservoir of the most recent samples so a long-running service
keeps O(1) memory.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

__all__ = ["ServiceStats", "LatencyReservoir"]


class LatencyReservoir:
    """Bounded store of recent latency samples (seconds).

    Not thread-safe on its own; the service records under its lock.
    """

    __slots__ = ("_samples",)

    def __init__(self, maxlen: int = 4096) -> None:
        self._samples: deque[float] = deque(maxlen=maxlen)

    def record(self, seconds: float) -> None:
        self._samples.append(float(seconds))

    def extend(self, seconds_iterable) -> None:
        self._samples.extend(float(s) for s in seconds_iterable)

    def __len__(self) -> int:
        return len(self._samples)

    def percentile_ms(self, q: float) -> float:
        """The ``q``-th percentile of the stored samples, in milliseconds."""
        if not self._samples:
            return 0.0
        return float(np.percentile(np.fromiter(self._samples, dtype=np.float64), q)) * 1000.0


@dataclass(frozen=True)
class ServiceStats:
    """Point-in-time summary of a :class:`QueryService`'s behaviour."""

    #: Queries accepted by ``submit`` (including ones still pending).
    queries_submitted: int
    #: Queries whose result (or error) has been delivered.
    queries_answered: int
    #: Queries answered straight from the result cache.
    cache_hits: int
    #: Entries currently held by the result cache.
    cache_entries: int
    #: Times the cache was wiped (updates and explicit invalidation).
    cache_invalidations: int
    #: Batches flushed through the vectorized engine.
    num_batches: int
    #: Mean number of queries per flushed batch.
    avg_batch_size: float
    #: ``avg_batch_size / max_batch_size`` — how full the micro-batches run.
    batch_occupancy: float
    #: Median / tail submit-to-answer latency over the recent sample window.
    p50_latency_ms: float
    p95_latency_ms: float
    #: Answered queries per second of service wall time (first submit to the
    #: most recent answer); 0.0 before the first batch completes.
    throughput_qps: float

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of answered queries served from the cache."""
        if self.queries_answered == 0:
            return 0.0
        return self.cache_hits / self.queries_answered
