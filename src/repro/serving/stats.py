"""Operational statistics of the serving layer.

:class:`ServiceStats` is an immutable snapshot of a
:class:`~repro.serving.service.QueryService`'s counters — safe to hand to a
metrics exporter or print in a benchmark report.  Latency percentiles come
from a bounded reservoir of the most recent samples so a long-running service
keeps O(1) memory.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from dataclasses import dataclass, replace
from typing import Iterable, Sequence

import numpy as np

from repro.obs.metrics import LATENCY_BUCKETS_MS, bucket_percentile

__all__ = ["ServiceStats", "LatencyReservoir"]

#: The shared bucket bounds as an ndarray, for vectorized bucketing.
_BUCKET_BOUNDS = np.asarray(LATENCY_BUCKETS_MS, dtype=np.float64)


class LatencyReservoir:
    """Bounded store of recent latency samples (seconds).

    Alongside the bounded sample window (exact percentiles over *recent*
    traffic), the reservoir keeps lifetime counts in the fixed log-scale
    latency buckets shared with :mod:`repro.obs.metrics`.  Bucket counts are
    cumulative and never evicted, so snapshots from several service
    generations can be merged *exactly* by summing them — which is what
    :meth:`ServiceStats.merged` does.

    Not thread-safe on its own; the service records under its lock.
    """

    __slots__ = ("_samples", "_bucket_counts", "_total_ms")

    def __init__(self, maxlen: int = 4096) -> None:
        self._samples: deque[float] = deque(maxlen=maxlen)
        # One slot per bucket bound plus a trailing overflow slot.
        self._bucket_counts = [0] * (len(LATENCY_BUCKETS_MS) + 1)
        self._total_ms = 0.0

    def record(self, seconds: float) -> None:
        value = float(seconds)
        self._samples.append(value)
        ms = value * 1000.0
        self._bucket_counts[bisect_left(LATENCY_BUCKETS_MS, ms)] += 1
        self._total_ms += ms

    def extend(self, seconds_iterable: Iterable[float]) -> None:
        """Record a whole batch of latencies with vectorized bucketing.

        The flushed-batch path lands here with hundreds of samples at once;
        one ``searchsorted`` + ``bincount`` replaces a per-sample ``bisect``
        (``side="left"`` matches :func:`bisect.bisect_left` exactly).
        """
        values = np.asarray(
            seconds_iterable if isinstance(seconds_iterable, (list, tuple))
            else list(seconds_iterable),
            dtype=np.float64,
        )
        if values.size == 0:
            return
        ms = values * 1000.0
        slots = np.bincount(
            np.searchsorted(_BUCKET_BOUNDS, ms, side="left"),
            minlength=len(self._bucket_counts),
        )
        counts = self._bucket_counts
        for i in np.flatnonzero(slots):
            counts[i] += int(slots[i])
        self._total_ms += float(ms.sum())
        self._samples.extend(values.tolist())

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def bucket_counts(self) -> tuple[int, ...]:
        """Lifetime latency counts per log-scale bucket (overflow last)."""
        return tuple(self._bucket_counts)

    @property
    def total_ms(self) -> float:
        """Lifetime sum of recorded latencies, in milliseconds."""
        return self._total_ms

    def percentile_ms(self, q: float) -> float:
        """The ``q``-th percentile of the stored samples, in milliseconds."""
        if not self._samples:
            return 0.0
        return float(np.percentile(np.fromiter(self._samples, dtype=np.float64), q)) * 1000.0


@dataclass(frozen=True)
class ServiceStats:
    """Point-in-time summary of a :class:`QueryService`'s behaviour."""

    #: Queries accepted by ``submit`` (including ones still pending).
    queries_submitted: int
    #: Queries whose result (or error) has been delivered.
    queries_answered: int
    #: Queries answered straight from the result cache.
    cache_hits: int
    #: Entries currently held by the result cache.
    cache_entries: int
    #: Times the cache was wiped (updates and explicit invalidation).
    cache_invalidations: int
    #: Batches flushed through the vectorized engine.
    num_batches: int
    #: Mean number of queries per flushed batch.
    avg_batch_size: float
    #: ``avg_batch_size / max_batch_size`` — how full the micro-batches run.
    batch_occupancy: float
    #: Median / tail submit-to-answer latency over the recent sample window.
    p50_latency_ms: float
    p95_latency_ms: float
    #: Answered queries per second of service wall time (first submit to the
    #: most recent answer); 0.0 before the first batch completes.
    throughput_qps: float
    #: Service wall time underlying ``throughput_qps`` (first submit to the
    #: most recent answer).  Carried so snapshots from several service
    #: generations can be merged exactly (see :meth:`merged`).
    elapsed_seconds: float = 0.0
    #: Tail latency over the same recent sample window as p50/p95.
    p99_latency_ms: float = 0.0
    #: Queries rejected at admission (``shed`` policy, or a ``block`` wait
    #: that ran past its admission timeout).
    shed: int = 0
    #: Futures settled with :class:`~repro.exceptions.DeadlineExceededError`.
    deadline_expired: int = 0
    #: Submit attempts retried across a hot swap or worker restart (counted
    #: by the :class:`~repro.serving.EngineHost` routing layer).
    retries: int = 0
    #: Answers served by a deployment's fallback engine while the primary was
    #: unhealthy (host-level counter; 0 on a bare service).
    degraded_answers: int = 0
    #: Times a supervisor aborted and restarted the deployment's worker
    #: (host-level counter; 0 on a bare service).
    worker_restarts: int = 0
    #: Lifetime latency counts in the shared log-scale buckets
    #: (:data:`~repro.obs.metrics.LATENCY_BUCKETS_MS`, overflow slot last).
    #: Empty on snapshots that predate bucket tracking.
    latency_bucket_counts: tuple[int, ...] = ()

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of answered queries served from the cache."""
        if self.queries_answered == 0:
            return 0.0
        return self.cache_hits / self.queries_answered

    def to_dict(self) -> dict[str, object]:
        """A JSON-serialisable snapshot (the gateway's ``/stats`` payload).

        Plain field values plus the derived ``cache_hit_rate``; the bucket
        tuple becomes a list so ``json.dumps`` takes it unmodified.
        """
        return {
            "queries_submitted": self.queries_submitted,
            "queries_answered": self.queries_answered,
            "cache_hits": self.cache_hits,
            "cache_hit_rate": self.cache_hit_rate,
            "cache_entries": self.cache_entries,
            "cache_invalidations": self.cache_invalidations,
            "num_batches": self.num_batches,
            "avg_batch_size": self.avg_batch_size,
            "batch_occupancy": self.batch_occupancy,
            "p50_latency_ms": self.p50_latency_ms,
            "p95_latency_ms": self.p95_latency_ms,
            "p99_latency_ms": self.p99_latency_ms,
            "throughput_qps": self.throughput_qps,
            "elapsed_seconds": self.elapsed_seconds,
            "shed": self.shed,
            "deadline_expired": self.deadline_expired,
            "retries": self.retries,
            "degraded_answers": self.degraded_answers,
            "worker_restarts": self.worker_restarts,
            "latency_bucket_counts": list(self.latency_bucket_counts),
        }

    @classmethod
    def empty(cls) -> "ServiceStats":
        """An all-zero snapshot with (zeroed) bucket counts.

        What a spawned-but-unqueried (or dead) replica contributes to a
        pool-wide merge: carrying the full-length zero bucket tuple keeps
        the merged percentiles on the exact histogram path instead of
        tripping the legacy weighted fallback.
        """
        return cls(
            0, 0, 0, 0, 0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0,
            latency_bucket_counts=(0,) * (len(LATENCY_BUCKETS_MS) + 1),
        )

    @classmethod
    def merged(cls, parts: Sequence["ServiceStats"]) -> "ServiceStats":
        """Aggregate snapshots from successive service generations.

        An :class:`~repro.serving.EngineHost` deployment retires its
        :class:`~repro.serving.QueryService` on every hot swap; this folds
        the retired generations and the live one into a single view.  Plain
        counters add exactly; ``avg_batch_size`` is recomputed from the
        summed totals; ``throughput_qps`` is total answers over total wall
        time; ``cache_entries`` reflects the *last* part (the live cache —
        retired caches are gone).

        Latency percentiles are merged from the shared histogram buckets
        when every part carries them: bucket counts add exactly across
        generations, so the merged p50/p95/p99 are true percentiles of the
        combined distribution (to bucket resolution).  Percentiles are *not*
        averageable — a weighted mean of per-part p99s can produce a value no
        generation ever saw, or one below a part's own p95 — so the old
        answered-weighted mean survives only as a fallback for legacy
        snapshots without bucket counts.
        """
        if not parts:
            return cls(0, 0, 0, 0, 0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        if len(parts) == 1:
            return replace(parts[0])
        num_batches = sum(p.num_batches for p in parts)
        batched = sum(p.avg_batch_size * p.num_batches for p in parts)
        answered = sum(p.queries_answered for p in parts)
        elapsed = sum(p.elapsed_seconds for p in parts)

        def _weighted(field: str) -> float:
            if answered == 0:
                return 0.0
            total = sum(getattr(p, field) * p.queries_answered for p in parts)
            return float(total / answered)

        n_slots = len(LATENCY_BUCKETS_MS) + 1
        counted = [p for p in parts if p.queries_answered > 0]
        mergeable = bool(counted) and all(
            len(p.latency_bucket_counts) == n_slots for p in counted
        )
        if mergeable:
            merged_counts = tuple(
                sum(p.latency_bucket_counts[i] for p in counted)
                for i in range(n_slots)
            )
            p50 = bucket_percentile(LATENCY_BUCKETS_MS, merged_counts, 50.0)
            p95 = bucket_percentile(LATENCY_BUCKETS_MS, merged_counts, 95.0)
            p99 = bucket_percentile(LATENCY_BUCKETS_MS, merged_counts, 99.0)
        else:
            merged_counts = ()
            p50 = _weighted("p50_latency_ms")
            p95 = _weighted("p95_latency_ms")
            p99 = _weighted("p99_latency_ms")

        occupancy = (
            sum(p.batch_occupancy * p.num_batches for p in parts) / num_batches
            if num_batches
            else 0.0
        )
        return cls(
            queries_submitted=sum(p.queries_submitted for p in parts),
            queries_answered=answered,
            cache_hits=sum(p.cache_hits for p in parts),
            cache_entries=parts[-1].cache_entries,
            cache_invalidations=sum(p.cache_invalidations for p in parts),
            num_batches=num_batches,
            avg_batch_size=batched / num_batches if num_batches else 0.0,
            batch_occupancy=occupancy,
            p50_latency_ms=p50,
            p95_latency_ms=p95,
            throughput_qps=(answered / elapsed) if elapsed > 0 else 0.0,
            elapsed_seconds=elapsed,
            p99_latency_ms=p99,
            shed=sum(p.shed for p in parts),
            deadline_expired=sum(p.deadline_expired for p in parts),
            retries=sum(p.retries for p in parts),
            degraded_answers=sum(p.degraded_answers for p in parts),
            worker_restarts=sum(p.worker_restarts for p in parts),
            latency_bucket_counts=merged_counts,
        )
