"""Operational statistics of the serving layer.

:class:`ServiceStats` is an immutable snapshot of a
:class:`~repro.serving.service.QueryService`'s counters — safe to hand to a
metrics exporter or print in a benchmark report.  Latency percentiles come
from a bounded reservoir of the most recent samples so a long-running service
keeps O(1) memory.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace
from typing import Iterable, Sequence

import numpy as np

__all__ = ["ServiceStats", "LatencyReservoir"]


class LatencyReservoir:
    """Bounded store of recent latency samples (seconds).

    Not thread-safe on its own; the service records under its lock.
    """

    __slots__ = ("_samples",)

    def __init__(self, maxlen: int = 4096) -> None:
        self._samples: deque[float] = deque(maxlen=maxlen)

    def record(self, seconds: float) -> None:
        self._samples.append(float(seconds))

    def extend(self, seconds_iterable: Iterable[float]) -> None:
        self._samples.extend(float(s) for s in seconds_iterable)

    def __len__(self) -> int:
        return len(self._samples)

    def percentile_ms(self, q: float) -> float:
        """The ``q``-th percentile of the stored samples, in milliseconds."""
        if not self._samples:
            return 0.0
        return float(np.percentile(np.fromiter(self._samples, dtype=np.float64), q)) * 1000.0


@dataclass(frozen=True)
class ServiceStats:
    """Point-in-time summary of a :class:`QueryService`'s behaviour."""

    #: Queries accepted by ``submit`` (including ones still pending).
    queries_submitted: int
    #: Queries whose result (or error) has been delivered.
    queries_answered: int
    #: Queries answered straight from the result cache.
    cache_hits: int
    #: Entries currently held by the result cache.
    cache_entries: int
    #: Times the cache was wiped (updates and explicit invalidation).
    cache_invalidations: int
    #: Batches flushed through the vectorized engine.
    num_batches: int
    #: Mean number of queries per flushed batch.
    avg_batch_size: float
    #: ``avg_batch_size / max_batch_size`` — how full the micro-batches run.
    batch_occupancy: float
    #: Median / tail submit-to-answer latency over the recent sample window.
    p50_latency_ms: float
    p95_latency_ms: float
    #: Answered queries per second of service wall time (first submit to the
    #: most recent answer); 0.0 before the first batch completes.
    throughput_qps: float
    #: Service wall time underlying ``throughput_qps`` (first submit to the
    #: most recent answer).  Carried so snapshots from several service
    #: generations can be merged exactly (see :meth:`merged`).
    elapsed_seconds: float = 0.0
    #: Tail latency over the same recent sample window as p50/p95.
    p99_latency_ms: float = 0.0
    #: Queries rejected at admission (``shed`` policy, or a ``block`` wait
    #: that ran past its admission timeout).
    shed: int = 0
    #: Futures settled with :class:`~repro.exceptions.DeadlineExceededError`.
    deadline_expired: int = 0
    #: Submit attempts retried across a hot swap or worker restart (counted
    #: by the :class:`~repro.serving.EngineHost` routing layer).
    retries: int = 0
    #: Answers served by a deployment's fallback engine while the primary was
    #: unhealthy (host-level counter; 0 on a bare service).
    degraded_answers: int = 0
    #: Times a supervisor aborted and restarted the deployment's worker
    #: (host-level counter; 0 on a bare service).
    worker_restarts: int = 0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of answered queries served from the cache."""
        if self.queries_answered == 0:
            return 0.0
        return self.cache_hits / self.queries_answered

    @classmethod
    def merged(cls, parts: Sequence["ServiceStats"]) -> "ServiceStats":
        """Aggregate snapshots from successive service generations.

        An :class:`~repro.serving.EngineHost` deployment retires its
        :class:`~repro.serving.QueryService` on every hot swap; this folds
        the retired generations and the live one into a single view.  Plain
        counters add exactly; ``avg_batch_size`` is recomputed from the
        summed totals; ``throughput_qps`` is total answers over total wall
        time; ``cache_entries`` reflects the *last* part (the live cache —
        retired caches are gone); the latency percentiles are
        answered-weighted means of the component windows, an approximation —
        read the live service's own stats for exact recent percentiles.
        """
        if not parts:
            return cls(0, 0, 0, 0, 0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        if len(parts) == 1:
            return replace(parts[0])
        num_batches = sum(p.num_batches for p in parts)
        batched = sum(p.avg_batch_size * p.num_batches for p in parts)
        answered = sum(p.queries_answered for p in parts)
        elapsed = sum(p.elapsed_seconds for p in parts)

        def _weighted(field: str) -> float:
            if answered == 0:
                return 0.0
            total = sum(getattr(p, field) * p.queries_answered for p in parts)
            return float(total / answered)

        occupancy = (
            sum(p.batch_occupancy * p.num_batches for p in parts) / num_batches
            if num_batches
            else 0.0
        )
        return cls(
            queries_submitted=sum(p.queries_submitted for p in parts),
            queries_answered=answered,
            cache_hits=sum(p.cache_hits for p in parts),
            cache_entries=parts[-1].cache_entries,
            cache_invalidations=sum(p.cache_invalidations for p in parts),
            num_batches=num_batches,
            avg_batch_size=batched / num_batches if num_batches else 0.0,
            batch_occupancy=occupancy,
            p50_latency_ms=_weighted("p50_latency_ms"),
            p95_latency_ms=_weighted("p95_latency_ms"),
            throughput_qps=(answered / elapsed) if elapsed > 0 else 0.0,
            elapsed_seconds=elapsed,
            p99_latency_ms=_weighted("p99_latency_ms"),
            shed=sum(p.shed for p in parts),
            deadline_expired=sum(p.deadline_expired for p in parts),
            retries=sum(p.retries for p in parts),
            degraded_answers=sum(p.degraded_answers for p in parts),
            worker_restarts=sum(p.worker_restarts for p in parts),
        )
