"""Deployment supervision: health states, detection thresholds, recovery.

The :class:`~repro.serving.EngineHost` owns the actual recovery mechanics
(it holds the deployments); this module defines the *policy* vocabulary —
:class:`SupervisionConfig` thresholds, the :class:`HealthState` machine,
:class:`HealthReport`/:class:`RecoveryReport` — and the :class:`Supervisor`
daemon thread that drives periodic ``host.check()`` passes.

The state machine, per deployment::

    HEALTHY --incident--> DEGRADED --clean checks--> HEALTHY
       |                      |
       |                      +--restart budget exhausted--+
       +--unrecoverable-------------------------------------> UNHEALTHY

* An *incident* is any probe signal crossing a configured threshold: dead
  flusher thread, a batch wedged inside the engine, pending queries aging
  past the wedge timeout, or ``failure_threshold`` consecutive whole-batch
  errors.  Recovery aborts the worker (failing its in-flight futures with
  :class:`~repro.exceptions.WorkerCrashedError` — nothing ever hangs) and
  restarts the service from the live engine; a deployment that keeps
  crashing has a poisoned engine and is *rehydrated* from its last
  ``host.snapshot`` instead.
* ``DEGRADED`` means "recovering": traffic flows to the restarted worker,
  and ``recovery_checks`` consecutive clean probes promote it back.
* ``UNHEALTHY`` means the primary cannot serve: traffic routes to the
  deployment's fallback engine if one was configured (answers counted as
  ``degraded_answers``), otherwise submits fail fast with
  :class:`~repro.exceptions.WorkerCrashedError`.  A :meth:`~EngineHost.swap`
  installs a new engine and resets the deployment to ``HEALTHY``.

Deterministic by design: ``host.check()`` is a plain synchronous pass, so
tests drive the whole machine without the timing thread; production hosts
pass ``supervision=SupervisionConfig(...)`` and get the background loop.
Every aging measurement the detector thresholds against
(``oldest_pending_seconds``, ``flushing_seconds``) is taken by
``service.probe()`` on the service's injectable monotonic clock — advance a
:class:`~repro.utils.timing.FakeClock` and a pending query "ages" past the
wedge timeout instantly, no real waiting.  Recoveries and health
transitions are recorded in the host's :class:`~repro.obs.EventLog`
(``supervision.recovery`` / ``supervision.health`` events), one event per
transition.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.host import EngineHost
    from repro.serving.service import ServiceProbe

__all__ = [
    "HealthState",
    "HealthReport",
    "RecoveryReport",
    "SupervisionConfig",
    "Supervisor",
]


class HealthState(Enum):
    """Per-deployment health (see the module docstring's state machine)."""

    #: Serving normally.
    HEALTHY = "healthy"
    #: Recovering from an incident: a restarted (or rehydrated) worker is
    #: serving, awaiting ``recovery_checks`` clean probes.
    DEGRADED = "degraded"
    #: The primary cannot serve; traffic fails fast or routes to a fallback.
    UNHEALTHY = "unhealthy"


@dataclass(frozen=True)
class SupervisionConfig:
    """Detection thresholds and recovery budgets for one host's supervisor."""

    #: Period of the background supervision loop (the :class:`Supervisor`).
    interval_ms: float = 100.0
    #: A batch executing longer than this, or a pending query older than
    #: this, marks the worker *wedged*.  Size it well above the deployment's
    #: honest p99 batch time.
    wedge_timeout_ms: float = 1000.0
    #: Consecutive flushes in which every query failed before the engine is
    #: considered crashing (1 = a single fully-failed batch triggers
    #: recovery).
    failure_threshold: int = 3
    #: Consecutive clean probes that promote ``DEGRADED`` back to
    #: ``HEALTHY``.
    recovery_checks: int = 2
    #: Restarts attempted since the deployment was last healthy before the
    #: engine is declared poisoned and recovery escalates (snapshot
    #: rehydration, then fallback, then ``UNHEALTHY``).
    max_restarts: int = 3

    def __post_init__(self) -> None:
        if self.interval_ms <= 0 or self.wedge_timeout_ms <= 0:
            raise ValueError("interval_ms and wedge_timeout_ms must be > 0")
        if self.failure_threshold < 1 or self.recovery_checks < 1:
            raise ValueError("failure_threshold and recovery_checks must be >= 1")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")


@dataclass(frozen=True)
class HealthReport:
    """One deployment's health as of the last observation."""

    deployment: str
    state: HealthState
    #: Human-readable incident cause; None while ``HEALTHY``.
    cause: Optional[str]
    #: Times the supervisor restarted/rehydrated this deployment's worker.
    worker_restarts: int
    #: The probe the assessment was made from (None if the deployment was
    #: assessed without probing, e.g. a parked ``UNHEALTHY`` primary).
    probe: Optional["ServiceProbe"] = None
    #: Configured replica workers (0 for a single-process deployment).
    replicas: int = 0
    #: Replica workers currently alive (None for a single-process
    #: deployment — liveness there is the flusher thread, see ``probe``).
    replicas_alive: Optional[int] = None


@dataclass(frozen=True)
class RecoveryReport:
    """What one recovery did (returned by ``host.check()`` per incident)."""

    deployment: str
    #: ``"restart"`` (new worker over the live engine), ``"rehydrate"`` (new
    #: engine from the last snapshot), ``"fallback"`` (primary parked,
    #: traffic routed to the fallback engine), ``"park"`` (no recovery path
    #: left: the deployment is ``UNHEALTHY`` and fails fast), or
    #: ``"respawn"`` (dead replica worker processes were respawned from the
    #: deployment's snapshot; the pool itself stayed up).
    action: str
    #: The incident that triggered recovery.
    cause: str
    #: In-flight futures failed with ``WorkerCrashedError`` by the abort.
    failed_futures: int


def _supervisor_main(
    host_ref: "weakref.ref[EngineHost]", stop: threading.Event, interval: float
) -> None:
    """Supervision loop body; holds the host only for the check itself."""
    while not stop.wait(interval):
        host = host_ref()
        if host is None or host.closed:
            return
        try:
            host.check()
        except Exception:  # noqa: BLE001 - supervision must never die
            pass
        del host


class Supervisor:
    """Daemon thread running ``host.check()`` every ``interval_ms``.

    Holds the host only weakly (like the service's flusher holds its
    service): an abandoned host gets garbage-collected, its supervisor
    noticing on the next tick.  :meth:`stop` is idempotent and safe to call
    from the supervised host's ``close()``.
    """

    def __init__(self, host: "EngineHost", config: SupervisionConfig) -> None:
        self.config = config
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=_supervisor_main,
            args=(weakref.ref(host), self._stop, config.interval_ms / 1000.0),
            name="repro-engine-host-supervisor",
            daemon=True,
        )

    def start(self) -> None:
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        if self._thread.is_alive() and self._thread is not threading.current_thread():
            self._thread.join(timeout=timeout)

    @property
    def alive(self) -> bool:
        return self._thread.is_alive()
