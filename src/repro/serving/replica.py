"""Multi-process replica serving: N workers over one shared snapshot.

A single :class:`~repro.serving.QueryService` saturates one core — every
flush runs under the GIL, so adding submitter threads moves the queueing
around without adding throughput.  :class:`ReplicaPool` breaks that ceiling
with the only parallelism CPython gives away for free: **processes**.

The design leans on two properties the rest of the stack already provides:

* The paper's query-time tables assume the index is *read-only* at serve
  time, and the snapshot format (:mod:`repro.persistence.snapshot`) stores
  it as a handful of flat, uncompressed ``.npz`` buffers.  Every replica
  worker therefore rehydrates the **same** snapshot with
  ``load_index(path, mmap_mode="r")`` — the ragged PLF payload is mapped,
  not copied, so N replicas share one physical copy in the OS page cache and
  the pool costs one index's worth of RAM, not N.
* The :class:`~repro.serving.QueryService` front-end already turns scalar
  traffic into micro-batches.  The pool slots in *below* it as a drop-in
  engine (``capabilities().batch`` is true): each flushed micro-batch ships
  as one ``(sources, targets, departures)`` array triple over a
  ``multiprocessing`` queue — a few pickle frames per hundreds of queries,
  never per query — and comes back as one costs array.

Responses travel over one dedicated pipe **per replica**, not a shared
queue.  A shared ``multiprocessing.Queue`` guards its pipe with a
cross-process semaphore, and a worker SIGKILLed between writing its answer
and releasing that semaphore leaves the lock held forever — poisoning the
response path for every sibling *and* every future respawn.  With a
single-writer pipe per replica there is no cross-process lock to orphan: a
dead worker can corrupt nothing but its own pipe, which the dispatcher
detects as EOF and discards.

Routing is least-loaded with round-robin tie-breaking: each request goes to
the live replica with the fewest in-flight batches, so a replica stuck on a
slow batch stops receiving new work while its siblings drain the queue.

Liveness: :meth:`ReplicaPool.check` detects dead workers (``is_alive()``),
fails their outstanding requests with the pickled-through
:class:`~repro.exceptions.WorkerCrashedError`, and respawns them from the
snapshot.  The :class:`~repro.serving.EngineHost` folds this into its
supervision ladder — ``host.check()`` calls ``pool.check()`` for replica
deployments and counts respawns as worker restarts.  A caller blocked on a
request to a replica that died is never stranded: the wait loop itself
notices the dead process and triggers the same recovery.

Answers are bit-identical to the engine's own scalar ``query``: the workers
run the very engine the snapshot rehydrates, and the snapshot round-trip is
bit-exact — process distribution changes throughput, never results.

The workers use the ``spawn`` start method unconditionally.  ``fork`` would
be cheaper but is unsafe here: the parent runs daemon threads (service
flushers, supervisors, this pool's dispatcher) whose locks would be cloned
mid-flight into the child.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection as mp_connection
import os
import pickle
import threading
import time
import traceback
import weakref
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Optional

import numpy as np

from repro.exceptions import ServiceClosedError, SnapshotError, WorkerCrashedError
from repro.obs import EVENT_REPLICA_RESPAWN, EVENT_REPLICA_SPAWN, Observability, get_observability
from repro.serving.stats import LatencyReservoir, ServiceStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing.connection import Connection
    from multiprocessing.context import SpawnContext
    from multiprocessing.process import BaseProcess
    from multiprocessing.queues import Queue as MPQueue

    from repro.api.types import EngineCapabilities

__all__ = ["ReplicaPool", "ReplicaInfo", "ReplicaRecovery"]

#: Wire messages, both directions: ``(kind, *payload)`` tuples.
Message = tuple[Any, ...]


@dataclass(frozen=True)
class ReplicaInfo:
    """One replica worker's state as of the observation."""

    #: Replica index within the pool (stable across respawns).
    index: int
    #: OS pid of the current worker process (None before the first ready).
    pid: Optional[int]
    #: The worker process is running.
    alive: bool
    #: Times this slot was (re)spawned — 1 for a never-crashed replica.
    spawns: int
    #: Snapshot rehydration time of the current worker, in seconds.
    load_seconds: float
    #: Requests currently dispatched to this replica and not yet answered.
    inflight: int


@dataclass(frozen=True)
class ReplicaRecovery:
    """What one :meth:`ReplicaPool.check` pass did about a dead replica."""

    #: Replica index the recovery acted on.
    replica: int
    #: ``"respawn"`` (a fresh worker is serving) or ``"lost"`` (the respawn
    #: itself failed; the slot stays dead until the next check).
    action: str
    #: Why recovery ran (exit code, or the worker's shipped traceback).
    cause: str
    #: Outstanding requests failed with :class:`WorkerCrashedError`.
    failed_requests: int


class _Slot:
    """Parent-side rendezvous for one in-flight request."""

    __slots__ = ("event", "value", "error", "replica")

    def __init__(self, replica: int) -> None:
        self.event = threading.Event()
        self.value: Any = None
        self.error: Optional[BaseException] = None
        self.replica = replica


class _Replica:
    """Parent-side record of one worker slot (mutated under the pool lock)."""

    __slots__ = (
        "index",
        "process",
        "requests",
        "conn",
        "ready",
        "load_error",
        "crash_cause",
        "inflight",
        "spawns",
        "load_seconds",
        "pid",
    )

    def __init__(self, index: int) -> None:
        self.index = index
        self.process: Optional["BaseProcess"] = None
        self.requests: Optional["MPQueue[Message]"] = None
        #: Parent-side read end of this worker's response pipe.
        self.conn: Optional["Connection"] = None
        #: Set by the dispatcher when the worker reports ready (or failed).
        self.ready = threading.Event()
        #: Traceback of a failed snapshot rehydration, if any.
        self.load_error: Optional[str] = None
        #: Traceback shipped by a worker that crashed mid-loop, if any.
        self.crash_cause: Optional[str] = None
        self.inflight = 0
        self.spawns = 0
        self.load_seconds = 0.0
        self.pid: Optional[int] = None


def _portable_error(exc: BaseException, pool: str) -> BaseException:
    """Make sure an error can cross the process boundary intact.

    The library's typed errors define ``__reduce__`` and round-trip
    losslessly; anything that does not pickle is replaced before ``send()``
    — an exception that failed to pickle mid-send would otherwise crash
    the worker loop and strand the parent's waiter.
    """
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return WorkerCrashedError(
            pool, f"replica error did not survive pickling: {type(exc).__name__}: {exc}"
        )


def _send_quietly(conn: "Connection", message: Message) -> None:
    """Best-effort send for a worker's last words (parent may be gone)."""
    try:
        conn.send(message)
    except (OSError, ValueError):
        pass


def _replica_worker_main(
    index: int,
    snapshot_path: str,
    mmap_mode: str,
    requests: "MPQueue[Message]",
    responses: "Connection",
    pool_name: str,
) -> None:
    """Worker process body: rehydrate the snapshot, answer until ``stop``.

    Pure request/response — requests arrive on a queue, answers leave on
    this worker's own response pipe — with no shared state beyond the page
    cache holding the mapped snapshot.  Every failure mode produces a
    message: engine errors ship back per request (typed, pickle-safe), a
    failed rehydration or a crashed loop ships a ``("crash", ...)`` with
    the traceback so the parent can report *why* instead of just seeing a
    dead pid.
    """
    started = time.perf_counter()
    try:
        from repro.api import create_engine

        engine = create_engine(f"snapshot:{snapshot_path}", mmap_mode=mmap_mode)
    except BaseException:  # noqa: BLE001 - shipped to the parent, not lost
        _send_quietly(responses, ("crash", index, traceback.format_exc(limit=20)))
        return
    reservoir = LatencyReservoir()
    submitted = answered = batches = batched = 0
    first: Optional[float] = None
    last: Optional[float] = None
    try:
        responses.send(("ready", index, os.getpid(), time.perf_counter() - started))
    except (OSError, ValueError):
        return  # parent tore the pipe down (pool closed mid-startup)
    try:
        while True:
            msg = requests.get()
            kind = msg[0]
            if kind == "stop":
                return
            request_id = msg[1]
            if kind == "batch":
                sources, targets, departures = msg[2], msg[3], msg[4]
                begun = time.perf_counter()
                if first is None:
                    first = begun
                submitted += int(sources.size)
                try:
                    costs = np.asarray(
                        engine.batch_query(sources, targets, departures).costs,
                        dtype=np.float64,
                    )
                except BaseException as exc:  # noqa: BLE001 - answered, not raised
                    responses.send(("error", index, request_id, _portable_error(exc, pool_name)))
                    continue
                done = time.perf_counter()
                count = int(costs.size)
                answered += count
                batches += 1
                batched += count
                last = done
                reservoir.extend([done - begun] * count)
                responses.send(("done", index, request_id, costs))
            elif kind == "scalar":
                source, target, departure = msg[2], msg[3], msg[4]
                begun = time.perf_counter()
                if first is None:
                    first = begun
                submitted += 1
                try:
                    cost = float(engine.query(int(source), int(target), float(departure)).cost)
                except BaseException as exc:  # noqa: BLE001 - answered, not raised
                    responses.send(("error", index, request_id, _portable_error(exc, pool_name)))
                    continue
                done = time.perf_counter()
                answered += 1
                batches += 1
                batched += 1
                last = done
                reservoir.record(done - begun)
                responses.send(("done", index, request_id, cost))
            elif kind == "stats":
                elapsed = (last - first) if first is not None and last is not None else 0.0
                stats = ServiceStats(
                    queries_submitted=submitted,
                    queries_answered=answered,
                    cache_hits=0,
                    cache_entries=0,
                    cache_invalidations=0,
                    num_batches=batches,
                    avg_batch_size=(batched / batches) if batches else 0.0,
                    batch_occupancy=0.0,
                    p50_latency_ms=reservoir.percentile_ms(50.0),
                    p95_latency_ms=reservoir.percentile_ms(95.0),
                    throughput_qps=(answered / elapsed) if elapsed > 0 else 0.0,
                    elapsed_seconds=elapsed,
                    p99_latency_ms=reservoir.percentile_ms(99.0),
                    latency_bucket_counts=reservoir.bucket_counts,
                )
                responses.send(("done", index, request_id, stats))
            else:  # pragma: no cover - protocol error, ship it back
                responses.send(
                    (
                        "error",
                        index,
                        request_id,
                        WorkerCrashedError(pool_name, f"unknown request kind {kind!r}"),
                    )
                )
    except BaseException:  # noqa: BLE001 - shipped to the parent, not lost
        _send_quietly(responses, ("crash", index, traceback.format_exc(limit=20)))


def _dispatcher_main(pool_ref: "weakref.ref[ReplicaPool]") -> None:
    """Response-demux thread body; holds the pool only between queue waits."""
    while True:
        pool = pool_ref()
        if pool is None or pool._dispatch_step():
            return
        del pool


def _reap(processes: "list[BaseProcess]") -> None:
    """Finalizer: terminate whatever worker processes are still running."""
    for process in processes:
        try:
            if process.is_alive():
                process.terminate()
        except Exception:  # noqa: BLE001 - best-effort teardown
            pass


class _BatchCosts:
    """Minimal ``batch_query`` result: the costs array (no path provenance)."""

    __slots__ = ("costs",)

    def __init__(self, costs: np.ndarray) -> None:
        self.costs = costs


class _ScalarCost:
    """Minimal ``query`` result: the cost (no path provenance)."""

    __slots__ = ("cost",)

    def __init__(self, cost: float) -> None:
        self.cost = cost


class ReplicaPool:
    """N subprocess workers serving one snapshot; drop-in batch engine.

    Parameters
    ----------
    snapshot_path:
        A snapshot directory written by :func:`repro.persistence.save_index`
        (or :meth:`EngineHost.snapshot`).  Every worker rehydrates from it.
    replicas:
        Number of worker processes.  Throughput scales with cores; past the
        machine's core count extra replicas only add switching overhead.
    mmap_mode:
        How workers map the snapshot arrays: ``"r"`` (default, read-only
        pages shared between all replicas) or ``"c"`` (copy-on-write).
    name:
        Pool name — the ``pool`` label on replica metrics, the subject of
        replica lifecycle events, and the ``deployment`` field of the
        :class:`~repro.exceptions.WorkerCrashedError` raised for requests a
        dead replica took down.
    obs:
        Observability bundle for per-replica metrics/events (default: the
        process-wide bundle; pass ``Observability.disabled()`` for none).
    start_timeout_s:
        How long to wait for each worker's snapshot rehydration before
        declaring the spawn failed.  Spawned workers import numpy and the
        library from scratch, so cold starts cost O(1s) per worker.
    request_timeout_s:
        Upper bound on one request's round trip; ``None`` (default) trusts
        the front-end's per-query deadlines instead.  A replica that dies
        mid-request never strands the caller either way — the wait loop
        notices the dead process and fails over.

    The pool implements the :class:`repro.api.Engine` batch surface
    (``capabilities().batch``), so the normal
    :class:`~repro.serving.QueryService` micro-batching front-end works
    unchanged on top — that is exactly what
    ``EngineHost.deploy(name, spec, replicas=N)`` wires up.
    """

    def __init__(
        self,
        snapshot_path: "str | Path",
        replicas: int,
        *,
        mmap_mode: str = "r",
        name: str = "replica-pool",
        obs: Optional[Observability] = None,
        start_timeout_s: float = 120.0,
        request_timeout_s: Optional[float] = None,
    ) -> None:
        if replicas < 1:
            raise ValueError("replicas must be at least 1")
        self._snapshot_path = Path(snapshot_path)
        from repro.persistence import read_manifest

        # Fail fast (and with the right error) before any process spawns.
        self.manifest = read_manifest(self._snapshot_path)
        if not isinstance(mmap_mode, str) or mmap_mode not in ("r", "c"):
            raise SnapshotError(
                f"unsupported mmap_mode {mmap_mode!r}: replica workers may map "
                "the shared snapshot read-only ('r') or copy-on-write ('c')"
            )
        self._mmap_mode = mmap_mode
        self.name = str(name)
        self._obs = obs if obs is not None else get_observability()
        self.request_timeout_s = request_timeout_s
        self._ctx: "SpawnContext" = multiprocessing.get_context("spawn")
        self._lock = threading.Lock()
        #: Response-pipe read ends replaced by a respawn (or shut down by
        #: close()); only the dispatcher thread closes them, so a file
        #: descriptor is never torn down while the dispatcher selects on it.
        self._retired_conns: list["Connection"] = []
        #: Serializes check() passes (spawns must not race each other).
        self._check_lock = threading.Lock()
        self._slots: dict[int, _Slot] = {}
        self._next_request_id = 0
        self._rr = 0
        self._closed = False
        self._replicas = [_Replica(i) for i in range(int(replicas))]
        #: Every process ever spawned, for the gc finalizer (never trimmed:
        #: dead handles are cheap, and the list must outlive the pool).
        self._all_processes: "list[BaseProcess]" = []
        self._finalizer = weakref.finalize(self, _reap, self._all_processes)
        if self._obs.enabled:
            registry = self._obs.registry
            self._m_alive = registry.gauge(
                "repro_replica_alive",
                "Replica worker liveness: 1=running, 0=dead/unspawned.",
                ("pool", "replica"),
            )
            self._m_respawns = registry.counter(
                "repro_replica_respawns_total",
                "Replica workers respawned from the snapshot after a crash.",
                ("pool", "replica"),
            )
            self._m_batches = registry.counter(
                "repro_replica_batches_total",
                "Micro-batches answered, per replica worker.",
                ("pool", "replica"),
            )
        else:
            self._m_alive = None
            self._m_respawns = None
            self._m_batches = None
        self._dispatcher = threading.Thread(
            target=_dispatcher_main,
            args=(weakref.ref(self),),
            name=f"repro-replica-dispatcher-{self.name}",
            daemon=True,
        )
        self._dispatcher.start()
        try:
            for replica in self._replicas:
                self._spawn(replica)
            deadline = time.monotonic() + float(start_timeout_s)
            for replica in self._replicas:
                self._await_ready(replica, deadline)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    # Engine surface (what the QueryService front-end calls)
    # ------------------------------------------------------------------
    def capabilities(self) -> "EngineCapabilities":
        """Batch queries only: no profiles, no updates, no path provenance.

        The pool serves a frozen snapshot — updates would have to reach N
        processes atomically, which is exactly the problem snapshots + hot
        swap already solve at the :class:`~repro.serving.EngineHost` layer.
        """
        from repro.api.types import EngineCapabilities

        return EngineCapabilities(batch=True)

    def batch_query(
        self, sources: np.ndarray, targets: np.ndarray, departures: np.ndarray
    ) -> _BatchCosts:
        """Answer one micro-batch on the least-loaded live replica.

        Blocks the calling thread (the service's flusher) until the replica
        answers; errors raised by the worker-side engine — including the
        typed per-query errors a degraded flush needs — re-raise here
        exactly as the pickled originals.
        """
        value = self._request(
            "batch",
            (
                np.ascontiguousarray(sources, dtype=np.int64),
                np.ascontiguousarray(targets, dtype=np.int64),
                np.ascontiguousarray(departures, dtype=np.float64),
            ),
        )
        return _BatchCosts(np.asarray(value, dtype=np.float64))

    def query(self, source: int, target: int, departure: float) -> _ScalarCost:
        """One scalar query, round-tripped through a replica."""
        value = self._request("scalar", (int(source), int(target), float(departure)))
        return _ScalarCost(float(value))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Configured number of replica slots."""
        return len(self._replicas)

    @property
    def mmap_mode(self) -> str:
        """How workers map the snapshot arrays (``"r"`` or ``"c"``)."""
        return self._mmap_mode

    @property
    def snapshot_path(self) -> Path:
        """The snapshot directory every worker rehydrates from."""
        return self._snapshot_path

    @property
    def alive_count(self) -> int:
        """Replica workers currently running."""
        return sum(1 for r in self._replicas if r.process is not None and r.process.is_alive())

    @property
    def closed(self) -> bool:
        return self._closed

    def replicas(self) -> list[ReplicaInfo]:
        """Per-replica state (index, pid, liveness, spawn count, load time)."""
        with self._lock:
            return [
                ReplicaInfo(
                    index=r.index,
                    pid=r.pid,
                    alive=r.process is not None and r.process.is_alive(),
                    spawns=r.spawns,
                    load_seconds=r.load_seconds,
                    inflight=r.inflight,
                )
                for r in self._replicas
            ]

    def stats(self) -> list[ServiceStats]:
        """One :class:`ServiceStats` per replica, in replica order.

        Dead replicas report :meth:`ServiceStats.empty` — their counters
        died with them.  Merge with :meth:`merged_stats` (the same exact
        histogram-bucket merge that folds swap generations).
        """
        parts: list[ServiceStats] = []
        for replica in self._replicas:
            process = replica.process
            if self._closed or process is None or not process.is_alive():
                parts.append(ServiceStats.empty())
                continue
            try:
                value = self._request("stats", (), replica=replica)
            except (ServiceClosedError, WorkerCrashedError):
                parts.append(ServiceStats.empty())
                continue
            parts.append(value if isinstance(value, ServiceStats) else ServiceStats.empty())
        return parts

    def merged_stats(self) -> ServiceStats:
        """The whole pool's counters, exactly merged across replicas."""
        return ServiceStats.merged(self.stats())

    # ------------------------------------------------------------------
    # Liveness / recovery
    # ------------------------------------------------------------------
    def check(self) -> list[ReplicaRecovery]:
        """Detect dead replicas, fail their requests, respawn from snapshot.

        Synchronous and idempotent — safe from the host's supervision pass,
        a stuck waiter's failover path, or a test.  Returns one
        :class:`ReplicaRecovery` per dead replica handled this pass.
        """
        recoveries: list[ReplicaRecovery] = []
        with self._check_lock:
            if self._closed:
                return recoveries
            for replica in self._replicas:
                process = replica.process
                if process is None or process.is_alive():
                    continue
                cause = replica.crash_cause or (
                    f"replica {replica.index} (pid {replica.pid}) exited "
                    f"with code {process.exitcode}"
                )
                replica.crash_cause = None
                failed = self._fail_replica_slots(replica.index, cause)
                if self._m_alive is not None:
                    self._m_alive.set(0.0, pool=self.name, replica=str(replica.index))
                try:
                    self._spawn(replica)
                    self._await_ready(replica, time.monotonic() + 120.0)
                    action = "respawn"
                    if self._m_respawns is not None:
                        self._m_respawns.inc(
                            1.0, pool=self.name, replica=str(replica.index)
                        )
                except Exception as exc:  # noqa: BLE001 - reported, not raised
                    action = "lost"
                    cause = f"{cause}; respawn failed: {exc}"
                recovery = ReplicaRecovery(
                    replica=replica.index,
                    action=action,
                    cause=cause,
                    failed_requests=failed,
                )
                recoveries.append(recovery)
                if self._obs.enabled:
                    self._obs.events.emit(
                        EVENT_REPLICA_RESPAWN,
                        self.name,
                        replica=replica.index,
                        action=action,
                        cause=cause,
                        failed_requests=failed,
                    )
        return recoveries

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop every worker and fail whatever requests are still in flight.

        Idempotent.  Workers get a ``stop`` message and a bounded join;
        stragglers are terminated — the snapshot on disk is the durable
        state, worker processes hold nothing worth draining.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            orphans = list(self._slots.values())
            self._slots.clear()
        for slot in orphans:
            slot.error = ServiceClosedError("batch_query")
            slot.event.set()
        for replica in self._replicas:
            requests = replica.requests
            if requests is not None:
                try:
                    requests.put(("stop",))
                except (OSError, ValueError):
                    pass
        for replica in self._replicas:
            process = replica.process
            if process is None:
                continue
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
            if self._m_alive is not None:
                self._m_alive.set(0.0, pool=self.name, replica=str(replica.index))
        # The dispatcher sees _closed and drains to exit; once it is gone it
        # can no longer select on the response pipes, so closing them here
        # is safe.  If it is wedged (it should never be), leave the fds to
        # the garbage collector rather than close them under a live select.
        self._dispatcher.join(timeout=5.0)
        if not self._dispatcher.is_alive():
            with self._lock:
                leftovers = self._retired_conns
                self._retired_conns = []
                for replica in self._replicas:
                    if replica.conn is not None:
                        leftovers.append(replica.conn)
                        replica.conn = None
            for conn in leftovers:
                try:
                    conn.close()
                except OSError:  # pragma: no cover - already closed
                    pass

    def __enter__(self) -> "ReplicaPool":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ReplicaPool(name={self.name!r}, replicas={self.size}, "
            f"alive={self.alive_count}, snapshot={str(self._snapshot_path)!r})"
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _spawn(self, replica: _Replica) -> None:
        """Start (or restart) one worker process for ``replica``.

        Each spawn gets a fresh request queue *and* a fresh response pipe:
        a SIGKILLed predecessor may have died holding the request queue's
        internal lock or mid-write on the pipe, so nothing it ever touched
        is reused.  The stale read end is handed to the dispatcher for
        closing (see :attr:`_retired_conns`).
        """
        replica.ready.clear()
        replica.load_error = None
        replica.requests = self._ctx.Queue()
        recv_conn, send_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_replica_worker_main,
            args=(
                replica.index,
                str(self._snapshot_path),
                self._mmap_mode,
                replica.requests,
                send_conn,
                self.name,
            ),
            name=f"repro-replica-{self.name}-{replica.index}",
            daemon=True,
        )
        process.start()
        # Drop the parent's copy of the write end: once the worker dies its
        # pipe hits EOF, which is how the dispatcher learns to discard it.
        send_conn.close()
        with self._lock:
            stale = replica.conn
            if stale is not None:
                self._retired_conns.append(stale)
            replica.conn = recv_conn
            replica.process = process
            replica.spawns += 1
            self._all_processes.append(process)
        if self._obs.enabled:
            self._obs.events.emit(
                EVENT_REPLICA_SPAWN, self.name, replica=replica.index, pid=process.pid
            )

    def _await_ready(self, replica: _Replica, deadline: float) -> None:
        """Block until ``replica`` reported ready; raise on load failure."""
        while not replica.ready.wait(timeout=0.1):
            process = replica.process
            if process is not None and not process.is_alive() and not replica.ready.is_set():
                # Give the dispatcher a beat to drain a ("crash", ...) the
                # worker may have shipped just before exiting.
                replica.ready.wait(timeout=1.0)
                break
            if time.monotonic() > deadline:
                raise WorkerCrashedError(
                    self.name,
                    f"replica {replica.index} did not finish rehydrating the "
                    f"snapshot in time",
                )
        if replica.load_error is not None:
            raise WorkerCrashedError(
                self.name,
                f"replica {replica.index} failed to rehydrate the snapshot:\n"
                f"{replica.load_error}",
            )
        if not replica.ready.is_set():
            process = replica.process
            code = process.exitcode if process is not None else None
            raise WorkerCrashedError(
                self.name,
                f"replica {replica.index} died during startup (exit code {code})",
            )
        if self._m_alive is not None:
            self._m_alive.set(1.0, pool=self.name, replica=str(replica.index))

    def _pick_replica(self) -> _Replica:
        """Least-loaded live replica, round-robin among ties; reserves a slot."""
        with self._lock:
            count = len(self._replicas)
            start = self._rr
            self._rr = (self._rr + 1) % count
            best: Optional[_Replica] = None
            for offset in range(count):
                replica = self._replicas[(start + offset) % count]
                process = replica.process
                if process is None or not process.is_alive():
                    continue
                if best is None or replica.inflight < best.inflight:
                    best = replica
            if best is None:
                raise WorkerCrashedError(self.name, "no live replicas")
            best.inflight += 1
            return best

    def _request(
        self, kind: str, payload: tuple[Any, ...], *, replica: Optional[_Replica] = None
    ) -> Any:
        """Ship one request to a replica and block for its answer."""
        if self._closed:
            raise ServiceClosedError("batch_query")
        if replica is None:
            target = self._pick_replica()
        else:
            target = replica
            with self._lock:
                target.inflight += 1
        slot = _Slot(target.index)
        with self._lock:
            request_id = self._next_request_id
            self._next_request_id += 1
            self._slots[request_id] = slot
        requests = target.requests
        try:
            if requests is None:
                raise WorkerCrashedError(self.name, f"replica {target.index} is not running")
            requests.put((kind, request_id, *payload))
        except BaseException:
            with self._lock:
                self._slots.pop(request_id, None)
                target.inflight -= 1
            raise
        return self._wait(slot)

    def _wait(self, slot: _Slot) -> Any:
        """Wait for a slot; fail over (via :meth:`check`) if its replica dies."""
        timeout_at = (
            None
            if self.request_timeout_s is None
            else time.monotonic() + self.request_timeout_s
        )
        while not slot.event.wait(timeout=0.2):
            if slot.event.is_set():
                break
            if self._closed:
                raise ServiceClosedError("batch_query")
            replica = self._replicas[slot.replica]
            process = replica.process
            if process is not None and not process.is_alive():
                # The replica died with our request in flight: check() fails
                # this slot with WorkerCrashedError and respawns the worker.
                self.check()
            if timeout_at is not None and time.monotonic() > timeout_at:
                raise WorkerCrashedError(
                    self.name,
                    f"replica {slot.replica} did not answer within "
                    f"{self.request_timeout_s:g}s",
                )
        if slot.error is not None:
            raise slot.error
        return slot.value

    def _fail_replica_slots(self, replica_index: int, cause: str) -> int:
        """Fail every outstanding request dispatched to one replica."""
        with self._lock:
            doomed = [
                (request_id, slot)
                for request_id, slot in self._slots.items()
                if slot.replica == replica_index
            ]
            for request_id, _ in doomed:
                del self._slots[request_id]
            self._replicas[replica_index].inflight -= len(doomed)
        for _, slot in doomed:
            slot.error = WorkerCrashedError(self.name, cause)
            slot.event.set()
        return len(doomed)

    def _dispatch_step(self) -> bool:
        """Poll the replica response pipes once; True = dispatcher exits.

        The dispatcher is the only thread that ever closes a response
        pipe's read end — retired ends queue up in :attr:`_retired_conns`
        until this step closes them, so ``connection.wait`` never selects
        on a descriptor another thread just closed (and possibly reused).
        """
        with self._lock:
            retired = self._retired_conns
            self._retired_conns = []
            conns = [r.conn for r in self._replicas if r.conn is not None]
        for old in retired:
            try:
                old.close()
            except OSError:  # pragma: no cover - already closed
                pass
        if not conns:
            if self._closed:
                return True
            time.sleep(0.05)  # nothing spawned yet; don't spin
            return False
        try:
            ready = mp_connection.wait(conns, timeout=0.1)
        except OSError:  # pragma: no cover - conn torn down mid-wait
            return self._closed
        if not ready:
            return self._closed
        for conn in ready:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                # The worker on the far end is gone; retire its pipe so the
                # wait set stops reporting it.  check() handles the respawn.
                with self._lock:
                    for replica in self._replicas:
                        if replica.conn is conn:
                            replica.conn = None
                            self._retired_conns.append(conn)
                            break
                continue
            self._handle_message(msg)
        return False

    def _handle_message(self, msg: Message) -> None:
        """Apply one worker response to parent-side state."""
        kind = msg[0]
        replica = self._replicas[msg[1]]
        if kind == "ready":
            with self._lock:
                replica.pid = msg[2]
                replica.load_seconds = float(msg[3])
            replica.ready.set()
            return
        if kind == "crash":
            with self._lock:
                replica.crash_cause = str(msg[2])
                replica.load_error = None if replica.ready.is_set() else str(msg[2])
            replica.ready.set()
            return
        # "done" / "error": (kind, replica, request_id, value) — settle the slot.
        request_id = msg[2]
        with self._lock:
            slot = self._slots.pop(request_id, None)
            if slot is not None:
                self._replicas[slot.replica].inflight -= 1
        if slot is None:
            return  # failed earlier by check()/close(); drop the late answer
        if kind == "error":
            slot.error = msg[3]
        else:
            slot.value = msg[3]
            if self._m_batches is not None:
                self._m_batches.inc(1.0, pool=self.name, replica=str(replica.index))
        slot.event.set()
