"""Vectorized batch kernels over collections of piecewise-linear functions.

Every hot path of the index — shortcut construction (Fact 1), graph reduction
(Algorithm 1) and both query flavours (Algorithms 3/6) — bottoms out in
per-object ``compound``/``minimum``/``evaluate`` calls on
:class:`~repro.functions.piecewise.PiecewiseLinearFunction`.  Each call pays
Python-level dispatch and small-array numpy overhead.  This module amortises
that overhead across many functions at once:

* :class:`PLFBatch` is a ragged-array representation of N functions — one
  contiguous ``times``/``costs``/``via`` buffer plus an ``offsets`` array —
  so a whole level of the shortcut catalog or a whole tree-node label list
  lives in three flat arrays.
* :func:`evaluate_many` evaluates N functions at per-function departure times
  (and :func:`evaluate_grid` at a shared grid) in one vectorized
  binary-search + gather pass.
* :func:`compound_many` / :func:`minimum_many` apply the paper's two operators
  to N *pairs* of functions at once, and :func:`simplify_many` batches the
  breakpoint reduction.

The kernels are drop-in equivalents of the scalar operators: they replicate
the scalar control flow (fast paths, dominance screens, breakpoint dedupe)
branch for branch, so the results are identical — including, for evaluation,
bit-identical to ``np.interp`` and to the scalar fast path of
:meth:`PiecewiseLinearFunction.evaluate`.  ``tests/functions/test_batch.py``
pins this equivalence down with property-based tests.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import InvalidFunctionError
from repro.functions.compound import _EPS, compound
from repro.functions.piecewise import NO_VIA, PiecewiseLinearFunction
from repro.functions.simplify import simplify

__all__ = [
    "PLFBatch",
    "evaluate_many",
    "evaluate_grid",
    "compound_many",
    "minimum_many",
    "minimum_many_masked",
    "simplify_many",
]


class PLFBatch:
    """N piecewise-linear functions stored as one ragged array.

    ``times``/``costs``/``via`` are the concatenated breakpoint arrays of all
    member functions; ``offsets`` (length N+1) delimits function ``i`` as the
    half-open slice ``[offsets[i], offsets[i+1])``.  Batches are cheap to
    slice (:meth:`take`), merge (:meth:`stitch`) and convert back to scalar
    functions (:meth:`function`, :meth:`to_functions`).
    """

    __slots__ = (
        "times",
        "costs",
        "via",
        "offsets",
        "_rounds",
        "_tables",
        "_fidx",
        "_sizes",
    )

    def __init__(
        self,
        times: np.ndarray,
        costs: np.ndarray,
        via: np.ndarray,
        offsets: np.ndarray,
        *,
        validate: bool = False,
    ) -> None:
        self.times = np.ascontiguousarray(times, dtype=np.float64)
        self.costs = np.ascontiguousarray(costs, dtype=np.float64)
        self.via = np.ascontiguousarray(via, dtype=np.int64)
        self.offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        self._rounds: int | None = None
        self._tables: tuple | None = None
        self._fidx: dict | None = None
        self._sizes: np.ndarray | None = None
        if validate:
            self._validate()

    def _validate(self) -> None:
        if self.offsets.ndim != 1 or self.offsets.size == 0:
            raise InvalidFunctionError("offsets must be a non-empty 1-D array")
        if self.offsets[0] != 0 or self.offsets[-1] != self.times.size:
            raise InvalidFunctionError("offsets must start at 0 and end at len(times)")
        if np.any(np.diff(self.offsets) < 1):
            raise InvalidFunctionError("every batch member needs at least one point")
        if self.times.shape != self.costs.shape or self.times.shape != self.via.shape:
            raise InvalidFunctionError("times/costs/via buffers must have equal length")
        rowids = np.repeat(np.arange(self.count), self.sizes)
        interior = rowids[1:] == rowids[:-1]
        if np.any(np.diff(self.times)[interior] <= 0):
            raise InvalidFunctionError("breakpoint times must be strictly increasing")

    # ------------------------------------------------------------------
    # Construction / conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_functions(
        cls, functions: Iterable[PiecewiseLinearFunction]
    ) -> "PLFBatch":
        """Pack an iterable of scalar functions into one batch."""
        funcs = list(functions)
        if not funcs:
            return cls(
                np.empty(0), np.empty(0), np.empty(0, np.int64), np.zeros(1, np.int64)
            )
        sizes = np.array([f.size for f in funcs], dtype=np.int64)
        offsets = np.zeros(sizes.size + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        return cls(
            np.concatenate([f.times for f in funcs]),
            np.concatenate([f.costs for f in funcs]),
            np.concatenate([f.via for f in funcs]),
            offsets,
        )

    def function(self, index: int) -> PiecewiseLinearFunction:
        """Return member ``index`` as a scalar function (views, no copy)."""
        start, end = self.offsets[index], self.offsets[index + 1]
        return PiecewiseLinearFunction(
            self.times[start:end],
            self.costs[start:end],
            self.via[start:end],
            validate=False,
        )

    def to_arrays(self, prefix: str = "") -> dict[str, np.ndarray]:
        """Export the batch as a flat mapping of plain numpy arrays.

        The four buffers are returned under ``{prefix}times`` / ``{prefix}costs``
        / ``{prefix}via`` / ``{prefix}offsets`` — the layout the on-disk
        snapshot format (:mod:`repro.persistence`) stores verbatim, so a
        round trip through :meth:`from_arrays` is bit-identical.
        """
        return {
            f"{prefix}times": self.times,
            f"{prefix}costs": self.costs,
            f"{prefix}via": self.via,
            f"{prefix}offsets": self.offsets,
        }

    @classmethod
    def from_arrays(
        cls, arrays, prefix: str = "", *, validate: bool = True
    ) -> "PLFBatch":
        """Rebuild a batch from a mapping produced by :meth:`to_arrays`.

        ``arrays`` is any mapping (e.g. an ``np.load`` result) holding the four
        ``{prefix}*`` buffers.  ``validate=True`` checks the ragged-array
        invariants, which is what the snapshot loader wants for untrusted
        files.
        """
        try:
            return cls(
                arrays[f"{prefix}times"],
                arrays[f"{prefix}costs"],
                arrays[f"{prefix}via"],
                arrays[f"{prefix}offsets"],
                validate=validate,
            )
        except KeyError as exc:
            raise InvalidFunctionError(
                f"missing batch buffer {exc.args[0]!r} (prefix {prefix!r})"
            ) from None

    def to_functions(self) -> list[PiecewiseLinearFunction]:
        """Unpack the batch into a list of scalar functions."""
        return [self.function(i) for i in range(self.count)]

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of member functions N."""
        return self.offsets.size - 1

    @property
    def sizes(self) -> np.ndarray:
        """Per-member interpolation point counts (cached)."""
        sizes = self._sizes
        if sizes is None:
            sizes = self._sizes = np.diff(self.offsets)
        return sizes

    @property
    def starts(self) -> np.ndarray:
        return self.offsets[:-1]

    @property
    def ends(self) -> np.ndarray:
        return self.offsets[1:]

    @property
    def total_points(self) -> int:
        return int(self.times.size)

    @property
    def bisect_rounds(self) -> int:
        """Bisection rounds needed by the evaluation kernels (cached)."""
        rounds = self._rounds
        if rounds is None:
            rounds = int(self.sizes.max()).bit_length() if self.count else 1
            self._rounds = rounds
        return rounds

    def _eval_tables(self) -> tuple:
        """Cached evaluation tables: clamp bounds, segment slopes, banded keys.

        ``slopes[i]`` is the segment slope starting at breakpoint ``i`` (zero
        on the last breakpoint of each member, which realises the constant
        clamping).  ``keys`` maps every breakpoint into the band
        ``[member, member + 1]`` so one global ``np.searchsorted`` locates all
        segments at once; the banding is only used when every within-member
        time gap is comfortably above the key-space resolution (``safe``), so
        a ±1 fixup against the raw times keeps the segment choice exact.
        """
        tables = self._tables
        if tables is None:
            xp, fp, offsets = self.times, self.costs, self.offsets
            slopes = np.zeros(xp.size)
            if xp.size > 1:
                rowids = np.repeat(
                    np.arange(self.count, dtype=np.float64), self.sizes
                )
                interior = np.nonzero(rowids[1:] == rowids[:-1])[0]
                dt = xp[interior + 1] - xp[interior]
                slopes[interior] = (fp[interior + 1] - fp[interior]) / dt
                min_gap = float(dt.min()) if dt.size else np.inf
            else:
                rowids = np.zeros(xp.size)
                min_gap = np.inf
            first_t = xp[offsets[:-1]]
            last_t = xp[offsets[1:] - 1]
            span = float(last_t.max() - first_t.min()) if self.count else 0.0
            tmin = float(first_t.min()) if self.count else 0.0
            inv = 0.0 if span == 0.0 else 1.0 / span
            resolution = 4.0 * np.spacing(float(self.count) + 1.0)
            safe = min_gap * inv > resolution
            keys = np.minimum((xp - tmin) * inv, 1.0) + rowids if safe else None
            tables = (first_t, last_t, slopes, keys, tmin, inv)
            self._tables = tables
        return tables

    def _lane_tables(self, m: int) -> tuple:
        """Cached per-lane index/bound arrays for ``m`` times per member.

        Returns ``(func_idx, starts, last, first_t, last_t)`` — everything in
        the evaluation kernel that depends only on the batch layout and ``m``,
        so repeated kernel calls skip the gathers entirely.
        """
        cache = self._fidx
        if cache is None:
            cache = self._fidx = {}
        lanes = cache.get(m)
        if lanes is None:
            func_idx = np.repeat(np.arange(self.count, dtype=np.int64), m)
            starts = self.offsets[func_idx]
            last = self.offsets[func_idx + 1] - 1
            lanes = (func_idx, starts, last, self.times[starts], self.times[last])
            if len(cache) >= 16:
                # Long-lived label batches see many distinct batch sizes;
                # bound the memo instead of growing with every size ever seen.
                cache.clear()
            cache[m] = lanes
        return lanes

    def has_via_rows(self) -> np.ndarray:
        """Per-member flag: does any segment record a bridge vertex?"""
        if self.count == 0:
            return np.empty(0, dtype=bool)
        return np.logical_or.reduceat(self.via != NO_VIA, self.offsets[:-1])

    def __len__(self) -> int:  # pragma: no cover - trivial
        return self.count

    def __repr__(self) -> str:
        return f"PLFBatch(count={self.count}, total_points={self.total_points})"

    # ------------------------------------------------------------------
    # Row selection
    # ------------------------------------------------------------------
    def take(self, rows: np.ndarray) -> "PLFBatch":
        """Gather a sub-batch with the given member rows (in the given order)."""
        rows = np.asarray(rows, dtype=np.int64)
        sizes = self.sizes[rows]
        offsets = np.zeros(rows.size + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        flat = np.repeat(self.offsets[rows] - offsets[:-1], sizes) + np.arange(
            offsets[-1], dtype=np.int64
        )
        return PLFBatch(self.times[flat], self.costs[flat], self.via[flat], offsets)

    @staticmethod
    def stitch(parts: Sequence[tuple[np.ndarray, "PLFBatch"]], count: int) -> "PLFBatch":
        """Reassemble a batch from disjoint row groups.

        ``parts`` is a list of ``(rows, sub_batch)`` where the ``rows`` arrays
        together form a permutation of ``range(count)`` and ``sub_batch`` holds
        the member functions for those rows, in the same order.
        """
        parts = [(np.asarray(r, np.int64), b) for r, b in parts if len(r)]
        if not parts:
            if count != 0:
                raise InvalidFunctionError("stitch received no rows for a non-empty batch")
            return PLFBatch(
                np.empty(0), np.empty(0), np.empty(0, np.int64), np.zeros(1, np.int64)
            )
        rows_all = np.concatenate([r for r, _ in parts])
        if rows_all.size != count:
            raise InvalidFunctionError(
                f"stitch rows cover {rows_all.size} of {count} members"
            )
        sizes_all = np.concatenate([b.sizes for _, b in parts])
        offsets = np.zeros(rows_all.size + 1, dtype=np.int64)
        np.cumsum(sizes_all, out=offsets[1:])
        cat = PLFBatch(
            np.concatenate([b.times for _, b in parts]),
            np.concatenate([b.costs for _, b in parts]),
            np.concatenate([b.via for _, b in parts]),
            offsets,
        )
        perm = np.argsort(rows_all, kind="stable")
        return cat.take(perm)

    # ------------------------------------------------------------------
    # Kernel entry points (method sugar)
    # ------------------------------------------------------------------
    def evaluate(self, t) -> np.ndarray:
        return evaluate_many(self, t)

    def evaluate_grid(self, t) -> np.ndarray:
        return evaluate_grid(self, t)


# ----------------------------------------------------------------------
# Flat kernels
# ----------------------------------------------------------------------
def _searchsorted_right_flat(
    xp: np.ndarray,
    offsets: np.ndarray,
    func_idx: np.ndarray,
    x: np.ndarray,
    rounds: int | None = None,
) -> np.ndarray:
    """Per-query ``searchsorted(xp[slice], x, side='right') - 1`` without loops.

    For query ``q`` the search runs inside the slice of function
    ``func_idx[q]``; the result is the rightmost global index ``j`` within the
    slice with ``xp[j] <= x[q]`` (or ``start - 1`` when every element is
    larger).  A fixed number of vectorized bisection rounds replaces the
    per-function Python calls; ``rounds`` may be supplied by the caller (the
    batch caches it) to skip the per-call span scan.
    """
    lo = offsets[func_idx] + 0
    hi = offsets[func_idx + 1]
    if lo.size == 0:
        return lo
    banded = _searchsorted_banded(xp, offsets, func_idx, x)
    if banded is not None:
        return banded
    if rounds is None:
        rounds = max(int((hi - lo).max()).bit_length(), 1)
    top = xp.size - 1
    for _ in range(rounds):
        mid = (lo + hi) >> 1
        # ``mid < hi`` is exactly "this lane is still searching": converged
        # lanes have lo == hi == mid and stay untouched by both updates.
        le = (xp[np.minimum(mid, top)] <= x) & (mid < hi)
        lo = np.where(le, mid + 1, lo)
        hi = np.where(le, hi, mid)
    return lo - 1


def _searchsorted_banded(
    xp: np.ndarray,
    offsets: np.ndarray,
    func_idx: np.ndarray,
    x: np.ndarray,
) -> np.ndarray | None:
    """Banded-key fast path for :func:`_searchsorted_right_flat`.

    Maps every breakpoint into the band ``[member, member + 1]`` so a single
    global ``np.searchsorted`` locates all segments at once (same trick as
    :meth:`PLFBatch._eval_tables`); a ±1 fixup against the raw times keeps the
    result exact.  Returns ``None`` when a within-member time gap is too small
    for the key-space resolution, in which case the caller's vectorized
    bisection handles the query exactly.
    """
    num_members = offsets.size - 1
    if xp.size == 0 or num_members == 0:
        return None
    sizes = np.diff(offsets)
    rowids = np.repeat(np.arange(num_members, dtype=np.float64), sizes)
    interior = rowids[1:] == rowids[:-1]
    dt = np.diff(xp)[interior]
    min_gap = float(dt.min()) if dt.size else np.inf
    tmin = float(xp.min())
    span = float(xp.max()) - tmin
    inv = 0.0 if span == 0.0 else 1.0 / span
    resolution = 4.0 * np.spacing(float(num_members) + 1.0)
    if min_gap * inv <= resolution:
        return None
    keys = np.minimum((xp - tmin) * inv, 1.0) + rowids
    key_x = np.minimum((x - tmin) * inv, 1.0) + func_idx
    starts = offsets[func_idx]
    last = offsets[func_idx + 1] - 1
    j = np.searchsorted(keys, key_x, side="right") - 1
    j = np.minimum(np.maximum(j, starts), last)
    # Banding is exact up to one position; fix against the raw times.  The
    # downward step may land on ``starts - 1`` (every breakpoint larger than
    # the query), matching the bisection's convention.
    j -= xp[j] > x
    valid = j >= starts
    bump = (j < last) & valid
    j += bump & (xp[j + bump] <= x)
    return j


def _interp_flat(
    xp: np.ndarray,
    fp: np.ndarray,
    offsets: np.ndarray,
    func_idx: np.ndarray,
    x: np.ndarray,
    rounds: int | None = None,
) -> np.ndarray:
    """Clamped linear interpolation of per-query functions at ``x``.

    Query ``q`` interpolates the function stored at slice ``func_idx[q]`` of
    the ragged ``(xp, fp)`` buffers.  Matches ``np.interp`` bit for bit: same
    segment choice (rightmost ``xp[j] <= x``), same slope formula, constant
    clamping outside the breakpoint range.
    """
    starts = offsets[func_idx]
    last = offsets[func_idx + 1] - 1
    clipped = np.minimum(np.maximum(x, xp[starts]), xp[last])
    j = _searchsorted_right_flat(xp, offsets, func_idx, clipped, rounds)
    j2 = np.minimum(j + 1, last)
    t0 = xp[j]
    c0 = fp[j]
    dt = xp[j2] - t0
    flat = dt <= 0.0
    interp = ((fp[j2] - c0) / np.where(flat, 1.0, dt)) * (clipped - t0) + c0
    return np.where(flat, c0, interp)


def _evaluate_flat(batch: PLFBatch, lanes: tuple, x: np.ndarray) -> np.ndarray:
    """Hot evaluation kernel: one lane per (member, time) pair.

    ``lanes`` comes from :meth:`PLFBatch._lane_tables`.  Uses the batch's
    cached tables: the banded global ``searchsorted`` (with exact ±1 fixup)
    when the breakpoint spacing allows it, the vectorized bisection
    otherwise, and precomputed segment slopes for the lerp.  The result is
    bit-identical to ``np.interp`` on the member's breakpoints.
    """
    func_idx, starts, last, first_t, last_t = lanes
    _first, _last, slopes, keys, tmin, inv = batch._eval_tables()
    xp = batch.times
    x = np.minimum(np.maximum(x, first_t), last_t)
    if keys is not None:
        key_x = np.minimum((x - tmin) * inv, 1.0) + func_idx
        j = np.searchsorted(keys, key_x, side="right") - 1
        j = np.minimum(np.maximum(j, starts), last)
        # Banding is exact up to one position; fix against the raw times.
        j -= xp[j] > x
        bump = j < last
        j += bump & (xp[j + bump] <= x)
    else:
        j = _searchsorted_right_flat(
            xp, batch.offsets, func_idx, x, batch.bisect_rounds
        )
    return batch.costs[j] + slopes[j] * (x - xp[j])


def evaluate_many(batch: PLFBatch, t) -> np.ndarray:
    """Evaluate every member at its own departure time(s).

    ``t`` may be a scalar (broadcast to all members, result shape ``(N,)``), a
    ``(N,)`` array (one time per member, result ``(N,)``) or a ``(N, M)``
    array (M times per member, result ``(N, M)``).
    """
    t_arr = np.asarray(t, dtype=np.float64)
    n = batch.count
    if t_arr.ndim == 0:
        return _evaluate_flat(batch, batch._lane_tables(1), np.full(n, float(t_arr)))
    if t_arr.ndim == 1:
        if t_arr.size != n:
            raise InvalidFunctionError(
                f"expected {n} per-member times, got {t_arr.size}"
            )
        return _evaluate_flat(batch, batch._lane_tables(1), t_arr)
    if t_arr.ndim == 2:
        if t_arr.shape[0] != n:
            raise InvalidFunctionError(
                f"expected {n} rows of per-member times, got {t_arr.shape[0]}"
            )
        m = t_arr.shape[1]
        flat = _evaluate_flat(batch, batch._lane_tables(m), t_arr.ravel())
        return flat.reshape(n, m)
    raise InvalidFunctionError("t must be scalar, (N,) or (N, M)")


def evaluate_grid(batch: PLFBatch, t) -> np.ndarray:
    """Evaluate every member at every time of a shared grid.

    ``t`` is a ``(M,)`` array of departure times; the result has shape
    ``(N, M)``.  This is the kernel behind the batched ascending sweep of the
    query engine, where all label functions of a tree node are probed at the
    same batch of departure times.
    """
    t_arr = np.atleast_1d(np.asarray(t, dtype=np.float64))
    if t_arr.ndim != 1:
        raise InvalidFunctionError("evaluate_grid expects a 1-D grid of times")
    n = batch.count
    m = t_arr.size
    flat = _evaluate_flat(batch, batch._lane_tables(m), np.tile(t_arr, n))
    return flat.reshape(n, m)


# ----------------------------------------------------------------------
# Ragged sort/dedupe helpers
# ----------------------------------------------------------------------
def _sorted_unique_rows(
    rows: np.ndarray, values: np.ndarray, num_rows: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-row ``np.unique``: sort values within each row, drop exact duplicates.

    Returns ``(rows, values, offsets)`` of the compacted ragged array.  Every
    row must contribute at least one value.
    """
    order = np.lexsort((values, rows))
    r = rows[order]
    v = values[order]
    keep = np.empty(r.size, dtype=bool)
    keep[0] = True
    keep[1:] = (r[1:] != r[:-1]) | (v[1:] != v[:-1])
    r = r[keep]
    v = v[keep]
    counts = np.bincount(r, minlength=num_rows)
    offsets = np.zeros(num_rows + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return r, v, offsets


def _dedupe_keep_mask(rows: np.ndarray, times: np.ndarray) -> np.ndarray:
    """Per-row version of ``_dedupe_breakpoints``: drop times closer than eps."""
    keep = np.empty(times.size, dtype=bool)
    if times.size == 0:
        return keep
    keep[0] = True
    keep[1:] = (rows[1:] != rows[:-1]) | (np.diff(times) > _EPS)
    return keep


def _offsets_from_rows(rows: np.ndarray, num_rows: int) -> np.ndarray:
    offsets = np.zeros(num_rows + 1, dtype=np.int64)
    np.cumsum(np.bincount(rows, minlength=num_rows), out=offsets[1:])
    return offsets


def _row_all(mask: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Per-row ``all()`` over a flat boolean array (no empty rows)."""
    if offsets.size == 1:
        return np.empty(0, dtype=bool)
    return np.logical_and.reduceat(mask, offsets[:-1])


def _normalise_via(via, count: int) -> np.ndarray | None:
    """Broadcast the ``via`` argument of ``compound_many`` to a per-pair array.

    ``None`` (or an all-``NO_VIA`` array) means "no provenance", matching the
    ``via=None`` of the scalar operator.
    """
    if via is None:
        return None
    arr = np.asarray(via, dtype=np.int64)
    if arr.ndim == 0:
        arr = np.full(count, int(arr), dtype=np.int64)
    if arr.size != count:
        raise InvalidFunctionError(f"expected {count} via entries, got {arr.size}")
    return arr


def _via_fill_flat(
    rows_local: np.ndarray, via_rows: np.ndarray | None, size: int
) -> np.ndarray:
    """Constant per-pair via fill for a flat output buffer (scalar ``_fill_via``)."""
    if via_rows is None:
        return np.full(size, NO_VIA, dtype=np.int64)
    return via_rows[rows_local]


def _via_lookup_flat(
    batch: PLFBatch, rows_local: np.ndarray, x: np.ndarray
) -> np.ndarray:
    """Vectorised ``_via_lookup``: via of the segment containing each grid time."""
    simple = ~batch.has_via_rows() | (batch.sizes == 1)
    fallback = batch.via[batch.starts][rows_local]
    if simple.all():
        return fallback
    j = _searchsorted_right_flat(batch.times, batch.offsets, rows_local, x)
    j = np.clip(j, batch.starts[rows_local], batch.ends[rows_local] - 1)
    return np.where(simple[rows_local], fallback, batch.via[j])


# ----------------------------------------------------------------------
# compound_many
# ----------------------------------------------------------------------
def compound_many(
    first: PLFBatch, second: PLFBatch, via=None
) -> PLFBatch:
    """Pairwise ``compound``: member ``i`` of the result is
    ``compound(first[i], second[i], via=via[i])``.

    Replicates the scalar operator branch for branch — constant fast paths,
    FIFO pre-image construction, breakpoint dedupe — so the results are
    identical to calling :func:`repro.functions.compound.compound` in a loop.
    Non-FIFO first legs (rare; the generators enforce FIFO) fall back to the
    scalar operator per pair.
    """
    n = first.count
    if second.count != n:
        raise InvalidFunctionError(
            f"batch size mismatch: first has {n}, second has {second.count}"
        )
    via_rows = _normalise_via(via, n)
    fsz = first.sizes
    gsz = second.sizes
    parts: list[tuple[np.ndarray, PLFBatch]] = []

    # Fast path: second constant -> h(t) = first(t) + c with first's shape.
    rows = np.nonzero(gsz == 1)[0]
    if rows.size:
        sub = first.take(rows)
        add = np.repeat(second.costs[second.starts[rows]], sub.sizes)
        rows_local = np.repeat(np.arange(rows.size), sub.sizes)
        out_via = _via_fill_flat(
            rows_local, None if via_rows is None else via_rows[rows], sub.total_points
        )
        parts.append((rows, PLFBatch(sub.times, sub.costs + add, out_via, sub.offsets)))

    # Fast path: first constant -> a shifted copy of second.
    rows = np.nonzero((gsz > 1) & (fsz == 1))[0]
    if rows.size:
        sub = second.take(rows)
        c = np.repeat(first.costs[first.starts[rows]], sub.sizes)
        rows_local = np.repeat(np.arange(rows.size), sub.sizes)
        out_via = _via_fill_flat(
            rows_local, None if via_rows is None else via_rows[rows], sub.total_points
        )
        parts.append((rows, PLFBatch(sub.times - c, sub.costs + c, out_via, sub.offsets)))

    # General path: both members have at least two breakpoints.
    rows = np.nonzero((gsz > 1) & (fsz > 1))[0]
    if rows.size:
        f = first.take(rows)
        arrivals = f.times + f.costs
        f_rowids = np.repeat(np.arange(rows.size), f.sizes)
        same_row = f_rowids[1:] == f_rowids[:-1]
        fifo = np.ones(rows.size, dtype=bool)
        decreasing = same_row & (np.diff(arrivals) < 0)
        if decreasing.any():
            fifo[f_rowids[:-1][decreasing]] = False
        # Scalar fallback for non-FIFO first legs.
        for local in np.nonzero(~fifo)[0]:
            r = int(rows[local])
            pair_via = None
            if via_rows is not None and via_rows[r] != NO_VIA:
                pair_via = int(via_rows[r])
            result = compound(first.function(r), second.function(r), via=pair_via)
            parts.append((np.array([r]), PLFBatch.from_functions([result])))
        fifo_rows = rows[fifo]
        if fifo_rows.size:
            sub_via = None if via_rows is None else via_rows[fifo_rows]
            parts.append(
                (
                    fifo_rows,
                    _compound_general(
                        first.take(fifo_rows), second.take(fifo_rows), sub_via
                    ),
                )
            )

    return PLFBatch.stitch(parts, n)


def _compound_general(
    f: PLFBatch, g: PLFBatch, via_rows: np.ndarray | None
) -> PLFBatch:
    """General compound for FIFO pairs with ``size >= 2`` on both sides."""
    k = f.count
    arrivals = f.times + f.costs
    g_rowids = np.repeat(np.arange(k), g.sizes)
    targets = g.times
    arr_first = arrivals[f.starts]
    arr_last = arrivals[f.ends - 1]
    first_cost = arr_first - f.times[f.starts]
    last_cost = arr_last - f.times[f.ends - 1]

    below = targets < arr_first[g_rowids]
    above = targets > arr_last[g_rowids]
    inside = _interp_flat(arrivals, f.times, f.offsets, g_rowids, targets)
    preimages = np.where(
        below,
        targets - first_cost[g_rowids],
        np.where(above, targets - last_cost[g_rowids], inside),
    )

    rows_cat = np.concatenate([np.repeat(np.arange(k), f.sizes), g_rowids])
    vals_cat = np.concatenate([f.times, preimages])
    grid_rows, grid, _ = _sorted_unique_rows(rows_cat, vals_cat, k)

    f_vals = _interp_flat(f.times, f.costs, f.offsets, grid_rows, grid)
    arrival_q = grid + f_vals
    g_vals = _interp_flat(g.times, g.costs, g.offsets, grid_rows, arrival_q)
    costs = f_vals + g_vals

    keep = _dedupe_keep_mask(grid_rows, grid)
    grid_rows = grid_rows[keep]
    out_via = _via_fill_flat(grid_rows, via_rows, grid_rows.size)
    return PLFBatch(
        grid[keep], costs[keep], out_via, _offsets_from_rows(grid_rows, k)
    )


# ----------------------------------------------------------------------
# minimum_many
# ----------------------------------------------------------------------
def minimum_many(first: PLFBatch, second: PLFBatch) -> PLFBatch:
    """Pairwise pointwise ``minimum``: exact lower envelope of each pair.

    Mirrors the scalar operator exactly, including its dominance screens and
    the per-segment ``via`` inheritance (ties favour ``first``).
    """
    n = first.count
    if second.count != n:
        raise InvalidFunctionError(
            f"batch size mismatch: first has {n}, second has {second.count}"
        )
    fsz = first.sizes
    gsz = second.sizes
    parts: list[tuple[np.ndarray, PLFBatch]] = []
    remaining = np.ones(n, dtype=bool)

    # Both constant: pick the cheaper (ties favour first).
    both1 = (fsz == 1) & (gsz == 1)
    if both1.any():
        f_cost = np.full(n, np.inf)
        g_cost = np.full(n, np.inf)
        f_cost[both1] = first.costs[first.starts[both1]]
        g_cost[both1] = second.costs[second.starts[both1]]
        rows = np.nonzero(both1 & (f_cost <= g_cost))[0]
        if rows.size:
            parts.append((rows, first.take(rows)))
        rows = np.nonzero(both1 & (f_cost > g_cost))[0]
        if rows.size:
            parts.append((rows, second.take(rows)))
        remaining &= ~both1

    if remaining.any():
        f_min = np.minimum.reduceat(first.costs, first.starts)
        f_max = np.maximum.reduceat(first.costs, first.starts)
        g_min = np.minimum.reduceat(second.costs, second.starts)
        g_max = np.maximum.reduceat(second.costs, second.starts)
        # Certain-dominance screens, in the scalar operator's order.
        first_wins = remaining & (g_min >= f_max)
        second_wins = remaining & ~first_wins & (f_min >= g_max)
        rows = np.nonzero(first_wins)[0]
        if rows.size:
            parts.append((rows, first.take(rows)))
        rows = np.nonzero(second_wins)[0]
        if rows.size:
            parts.append((rows, second.take(rows)))
        remaining &= ~first_wins & ~second_wins

    rows = np.nonzero(remaining)[0]
    if rows.size:
        parts.extend(_minimum_general(first.take(rows), second.take(rows), rows))
    return PLFBatch.stitch(parts, n)


def _minimum_masked_split(
    first: PLFBatch, second: PLFBatch, present
) -> tuple[np.ndarray, np.ndarray, PLFBatch]:
    """Shared core of the presence-masked minimum merge.

    Validates the mask, merges ``first`` with the present members of
    ``second`` and returns ``(present_idx, absent_idx, merged_present)`` so
    callers can post-process the merged rows before reassembly (the
    elimination engine caps exactly these rows, mirroring the scalar
    ``cap(minimum(existing, candidate))`` branch of Algorithm 1).
    """
    present = np.asarray(present, dtype=bool)
    if present.ndim != 1 or present.size != second.count:
        raise InvalidFunctionError(
            f"present mask must have one entry per member ({second.count}), "
            f"got shape {present.shape}"
        )
    num_present = int(present.sum())
    if num_present != first.count:
        raise InvalidFunctionError(
            f"mask marks {num_present} members present, first holds {first.count}"
        )
    present_idx = np.nonzero(present)[0]
    absent_idx = np.nonzero(~present)[0]
    merged = minimum_many(first, second.take(present_idx) if absent_idx.size else second)
    return present_idx, absent_idx, merged


def minimum_many_masked(
    first: PLFBatch, second: PLFBatch, present
) -> PLFBatch:
    """Pairwise ``minimum`` where ``first`` exists only for some members.

    ``present`` is a boolean array of length ``second.count`` and ``first``
    holds one member per ``True`` entry, in order (``first.count ==
    present.sum()``).  Member ``i`` of the result is
    ``minimum(first[k], second[i])`` when ``present[i]`` (with ``k`` the rank
    of ``i`` among the present members) and ``second[i]`` unchanged otherwise.

    This packages the merge step of the elimination engine — a fill edge may
    or may not already exist in the working graph, and candidates without an
    existing edge pass through untouched, exactly like the scalar
    ``merged = candidate`` branch of Algorithm 1.  The engine itself uses
    :func:`_minimum_masked_split` to cap the merged rows before reassembly.
    """
    present_arr = np.asarray(present, dtype=bool)
    if (
        present_arr.ndim == 1
        and present_arr.size == second.count
        and not present_arr.any()
    ):
        if first.count:
            raise InvalidFunctionError(
                f"mask marks 0 members present, first holds {first.count}"
            )
        return second
    present_idx, absent_idx, merged = _minimum_masked_split(
        first, second, present_arr
    )
    if not absent_idx.size:
        return merged
    return PLFBatch.stitch(
        [(present_idx, merged), (absent_idx, second.take(absent_idx))],
        second.count,
    )


def _minimum_general(
    f: PLFBatch, g: PLFBatch, rows_global: np.ndarray
) -> list[tuple[np.ndarray, PLFBatch]]:
    """General minimum for pairs that survive the dominance screens."""
    k = f.count
    rows_cat = np.concatenate(
        [np.repeat(np.arange(k), f.sizes), np.repeat(np.arange(k), g.sizes)]
    )
    vals_cat = np.concatenate([f.times, g.times])
    grid_rows, grid, grid_offsets = _sorted_unique_rows(rows_cat, vals_cat, k)

    f_vals = _interp_flat(f.times, f.costs, f.offsets, grid_rows, grid)
    g_vals = _interp_flat(g.times, g.costs, g.offsets, grid_rows, grid)
    diff = f_vals - g_vals

    # Linear between shared grid points: comparing on the grid decides
    # dominance everywhere (scalar operator, same epsilon).
    first_dominates = _row_all(diff <= _EPS, grid_offsets)
    second_dominates = _row_all(diff >= -_EPS, grid_offsets) & ~first_dominates
    parts: list[tuple[np.ndarray, PLFBatch]] = []
    local = np.nonzero(first_dominates)[0]
    if local.size:
        parts.append((rows_global[local], f.take(local)))
    local = np.nonzero(second_dominates)[0]
    if local.size:
        parts.append((rows_global[local], g.take(local)))

    work = ~first_dominates & ~second_dominates
    local = np.nonzero(work)[0]
    if not local.size:
        return parts
    if not work.all():
        f = f.take(local)
        g = g.take(local)
        rows_global = rows_global[local]
        keep_pts = work[grid_rows]
        remap = np.full(k, -1, dtype=np.int64)
        remap[local] = np.arange(local.size)
        grid_rows = remap[grid_rows[keep_pts]]
        grid = grid[keep_pts]
        f_vals = f_vals[keep_pts]
        g_vals = g_vals[keep_pts]
        diff = diff[keep_pts]
        grid_offsets = _offsets_from_rows(grid_rows, local.size)
        k = local.size

    # Exact crossing times between consecutive grid points (scalar _crossings).
    seg_same = grid_rows[1:] == grid_rows[:-1]
    d0 = diff[:-1]
    d1 = diff[1:]
    cross_mask = seg_same & (
        ((d0 > _EPS) & (d1 < -_EPS)) | ((d0 < -_EPS) & (d1 > _EPS))
    )
    if cross_mask.any():
        t0 = grid[:-1][cross_mask]
        t1 = grid[1:][cross_mask]
        y0 = d0[cross_mask]
        y1 = d1[cross_mask]
        cross_times = t0 + (t1 - t0) * (y0 / (y0 - y1))
        cross_rows = grid_rows[:-1][cross_mask]
        grid_rows, grid, grid_offsets = _sorted_unique_rows(
            np.concatenate([grid_rows, cross_rows]),
            np.concatenate([grid, cross_times]),
            k,
        )
        f_vals = _interp_flat(f.times, f.costs, f.offsets, grid_rows, grid)
        g_vals = _interp_flat(g.times, g.costs, g.offsets, grid_rows, grid)

    min_vals = np.minimum(f_vals, g_vals)

    # Per-segment winner from the endpoint sums; the last grid point of each
    # row covers the clamped region after the final breakpoint.
    last_of_row = np.zeros(grid.size, dtype=bool)
    last_of_row[grid_offsets[1:] - 1] = True
    winner = np.empty(grid.size, dtype=bool)
    seg = np.nonzero(~last_of_row)[0]
    winner[seg] = (f_vals[seg] + f_vals[seg + 1]) <= (
        g_vals[seg] + g_vals[seg + 1]
    ) + _EPS
    tail = np.nonzero(last_of_row)[0]
    winner[tail] = f_vals[tail] <= g_vals[tail] + _EPS

    via = np.where(
        winner,
        _via_lookup_flat(f, grid_rows, grid),
        _via_lookup_flat(g, grid_rows, grid),
    )
    keep = _dedupe_keep_mask(grid_rows, grid)
    grid_rows = grid_rows[keep]
    parts.append(
        (
            rows_global,
            PLFBatch(
                grid[keep],
                min_vals[keep],
                via[keep],
                _offsets_from_rows(grid_rows, k),
            ),
        )
    )
    return parts


# ----------------------------------------------------------------------
# simplify_many
# ----------------------------------------------------------------------
def simplify_many(
    batch: PLFBatch,
    max_points: int | None = None,
    tolerance: float = 0.0,
) -> PLFBatch:
    """Batched :func:`repro.functions.simplify.simplify`.

    Members already under the ``max_points`` cap pass through untouched, and
    (in exact mode) members with no collinear interior points are recognised
    in one flat scan.  Members above the cap run the lossless collinear pass
    per member (its cascade resolution is inherently sequential) and then one
    *shared* greedy-cap loop (:func:`_greedy_cap_many`): every iteration drops
    the worst interior point of every member still above the cap in a single
    flat pass, which replaces the per-member ``np.delete`` loop that dominates
    scalar index construction.  Results stay identical to a per-function
    :func:`~repro.functions.simplify.simplify` loop.
    """
    sizes = batch.sizes
    if max_points is not None:
        work = sizes > max_points
    else:
        work = sizes > 2
    if not work.any():
        return batch

    rows_work = np.nonzero(work)[0]
    if max_points is not None and max_points >= 2:
        # Capped mode, fully vectorized: the shared collinear pass
        # (lossless) followed by the shared greedy-cap loop for whatever is
        # still above the cap, replacing the per-member ``np.delete`` churn
        # of the scalar routine.
        reduced = _remove_collinear_many(
            batch.take(rows_work), max(tolerance, 1e-9)
        )
        parts: list[tuple[np.ndarray, PLFBatch]] = []
        unchanged = np.nonzero(~work)[0]
        if unchanged.size:
            parts.append((unchanged, batch.take(unchanged)))
        still_over = reduced.sizes > max_points
        if not still_over.all():
            done_local = np.nonzero(~still_over)[0]
            parts.append((rows_work[done_local], reduced.take(done_local)))
        if still_over.any():
            over_local = np.nonzero(still_over)[0]
            parts.append(
                (
                    rows_work[over_local],
                    _greedy_cap_many(reduced.take(over_local), max_points),
                )
            )
        return PLFBatch.stitch(parts, batch.count)

    if max_points is None:
        # Exact mode: a member only changes when some interior point is
        # collinear (within tolerance) with its neighbours.  Screen them all
        # with one vectorized pass over the concatenated interiors.
        tol_eff = max(tolerance, 1e-9)
        sub = batch.take(rows_work)
        rowids = np.repeat(np.arange(rows_work.size), sub.sizes)
        boundary = np.zeros(sub.total_points, dtype=bool)
        boundary[sub.starts] = True
        boundary[sub.ends - 1] = True
        inner = np.nonzero(~boundary)[0]
        t_prev = sub.times[inner - 1]
        t_next = sub.times[inner + 1]
        c_prev = sub.costs[inner - 1]
        c_next = sub.costs[inner + 1]
        interp = c_prev + (sub.times[inner] - t_prev) * (c_next - c_prev) / (
            t_next - t_prev
        )
        candidate = np.abs(interp - sub.costs[inner]) <= tol_eff
        has_candidate = (
            np.bincount(rowids[inner[candidate]], minlength=rows_work.size) > 0
        )
        rows_scalar = rows_work[has_candidate]
    else:
        rows_scalar = rows_work

    if not rows_scalar.size:
        return batch
    simplified = [
        simplify(batch.function(int(r)), max_points=max_points, tolerance=tolerance)
        for r in rows_scalar
    ]
    unchanged = np.setdiff1d(np.arange(batch.count), rows_scalar, assume_unique=False)
    parts: list[tuple[np.ndarray, PLFBatch]] = [
        (rows_scalar, PLFBatch.from_functions(simplified))
    ]
    if unchanged.size:
        parts.append((unchanged, batch.take(unchanged)))
    return PLFBatch.stitch(parts, batch.count)


def _remove_collinear_many(batch: PLFBatch, tolerance: float) -> PLFBatch:
    """Batched :func:`~repro.functions.simplify.remove_collinear`.

    The scalar routine screens interior points against their *original*
    neighbours with one vectorized pass, then resolves cascades of adjacent
    candidates with a sequential scan whose only state is the last kept
    index.  That scan only changes state at candidate points, so the batched
    version runs it lock-step across members: round ``k`` decides the
    ``k``-th candidate of every member still holding one, carrying a
    per-member ``last kept`` vector.  Same screen, same recheck formula, same
    order — the keep mask (and therefore the result) is bit-identical to a
    per-member loop.
    """
    times, costs = batch.times, batch.costs
    rowids = np.repeat(np.arange(batch.count), batch.sizes)
    boundary = np.zeros(batch.total_points, dtype=bool)
    boundary[batch.starts] = True
    boundary[batch.ends - 1] = True
    inner = np.nonzero(~boundary)[0]
    if inner.size == 0:
        return batch
    t_prev = times[inner - 1]
    t_next = times[inner + 1]
    c_prev = costs[inner - 1]
    c_next = costs[inner + 1]
    interp = c_prev + (times[inner] - t_prev) * (c_next - c_prev) / (t_next - t_prev)
    collinear = np.abs(interp - costs[inner]) <= tolerance
    cand = inner[collinear]  # ascending flat indices -> grouped by member
    if cand.size == 0:
        return batch

    # Candidates separated by a kept point are independent: the last kept
    # index before any candidate whose predecessor is not a candidate is
    # simply that predecessor, so the test the sequential scan would run is
    # exactly the screen that already passed — those candidates always drop.
    # Only *runs* of flat-consecutive candidates cascade (interior points of
    # different members are never flat-adjacent, so runs cannot span members);
    # walk them lock-step, one round per position within the run.
    keep = np.ones(batch.total_points, dtype=bool)
    new_run = np.empty(cand.size, dtype=bool)
    new_run[0] = True
    np.not_equal(cand[1:], cand[:-1] + 1, out=new_run[1:])
    run_starts = np.nonzero(new_run)[0]
    run_ends = np.empty(run_starts.size, dtype=np.int64)
    run_ends[:-1] = run_starts[1:]
    run_ends[-1] = cand.size
    # Position 0 of every run replays the screen verbatim: drop.
    keep[cand[run_starts]] = False
    last_kept = cand[run_starts] - 1
    active = np.nonzero(run_ends - run_starts > 1)[0]
    position = 1
    while active.size:
        idx = cand[run_starts[active]] + position
        prev = last_kept[active]
        interp = costs[prev] + (times[idx] - times[prev]) * (
            costs[idx + 1] - costs[prev]
        ) / (times[idx + 1] - times[prev])
        drop = np.abs(interp - costs[idx]) <= tolerance
        keep[idx[drop]] = False
        last_kept[active] = np.where(drop, prev, idx)
        position += 1
        active = active[run_ends[active] - run_starts[active] > position]
    counts = np.bincount(rowids[keep], minlength=batch.count)
    offsets = np.zeros(batch.count + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return PLFBatch(times[keep], costs[keep], batch.via[keep], offsets)


def _greedy_cap_many(batch: PLFBatch, max_points: int) -> PLFBatch:
    """Shared greedy Visvalingam cap for members above ``max_points``.

    Replicates the scalar cap loop of :func:`~repro.functions.simplify.simplify`
    member for member: each iteration computes the vertical error of every
    interior point against the segment spanned by its *current* neighbours and
    removes, per member, the first point attaining the member's minimum error
    (``np.argmin`` tie-breaking).  Members are independent, so running the
    iterations lock-step across the whole batch yields exactly the per-member
    sequential result while the per-iteration work is a handful of flat array
    passes instead of ``np.delete`` churn; members that reach the cap leave
    the working set, so late iterations only touch the few long stragglers.

    Every member of ``batch`` must be above the cap (``max_points >= 2``).
    """
    times = batch.times
    costs = batch.costs
    via = batch.via
    offsets = batch.offsets
    count = batch.count
    sizes = batch.sizes
    alive = np.arange(count)
    parts: list[tuple[np.ndarray, PLFBatch]] = []
    while alive.size:
        rowids = np.repeat(np.arange(alive.size), sizes)
        interior = np.ones(times.size, dtype=bool)
        interior[offsets[:-1]] = False
        interior[offsets[1:] - 1] = False
        idx = np.nonzero(interior)[0]
        t_prev = times[idx - 1]
        c_prev = costs[idx - 1]
        c_next = costs[idx + 1]
        interp = c_prev + (times[idx] - t_prev) * (c_next - c_prev) / (
            times[idx + 1] - t_prev
        )
        errors = np.abs(interp - costs[idx])
        # Every alive member is above the cap, hence has size >= 3 and a
        # contiguous run of size-2 interior points; locate the first position
        # attaining each run's minimum error (np.argmin tie-breaking).
        int_counts = sizes - 2
        seg_starts = np.zeros(alive.size, dtype=np.int64)
        np.cumsum(int_counts[:-1], out=seg_starts[1:])
        seg_min = np.minimum.reduceat(errors, seg_starts)
        seg_of = np.repeat(np.arange(alive.size), int_counts)
        candidate_pos = np.where(
            errors == seg_min[seg_of], np.arange(errors.size), errors.size
        )
        drop = idx[np.minimum.reduceat(candidate_pos, seg_starts)]
        keep = np.ones(times.size, dtype=bool)
        keep[drop] = False
        new_sizes = sizes - 1
        done = new_sizes <= max_points
        if done.any():
            done_pts = keep & done[rowids]
            done_sizes = new_sizes[done]
            done_offsets = np.zeros(done_sizes.size + 1, dtype=np.int64)
            np.cumsum(done_sizes, out=done_offsets[1:])
            parts.append(
                (
                    alive[done],
                    PLFBatch(
                        times[done_pts],
                        # The scalar loop clamps capped costs non-negative.
                        np.maximum(costs[done_pts], 0.0),
                        via[done_pts],
                        done_offsets,
                    ),
                )
            )
            keep &= ~done[rowids]
            alive = alive[~done]
            new_sizes = new_sizes[~done]
        times = times[keep]
        costs = costs[keep]
        via = via[keep]
        sizes = new_sizes
        offsets = np.zeros(new_sizes.size + 1, dtype=np.int64)
        np.cumsum(new_sizes, out=offsets[1:])
    return PLFBatch.stitch(parts, count)
