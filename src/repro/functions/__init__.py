"""Piecewise-linear travel-cost function algebra.

This package is the mathematical substrate of the whole library: every edge
weight, every bag/label function stored by the tree decomposition, every
shortcut and every query answer is a :class:`PiecewiseLinearFunction`, and the
index algorithms manipulate them exclusively through :func:`compound`,
:func:`minimum` and :func:`simplify`.
"""

from repro.functions.batch import (
    PLFBatch,
    compound_many,
    evaluate_grid,
    evaluate_many,
    minimum_many,
    minimum_many_masked,
    simplify_many,
)
from repro.functions.compound import compound, minimum, minimum_of
from repro.functions.piecewise import NO_VIA, PiecewiseLinearFunction
from repro.functions.profile import (
    DAY_SECONDS,
    average_cost,
    best_departure,
    lower_bound,
    merge_profiles,
    relative_error,
    sample_profile,
    upper_bound,
)
from repro.functions.simplify import count_points, remove_collinear, simplify

__all__ = [
    "PiecewiseLinearFunction",
    "NO_VIA",
    "PLFBatch",
    "evaluate_many",
    "evaluate_grid",
    "compound_many",
    "minimum_many",
    "minimum_many_masked",
    "simplify_many",
    "compound",
    "minimum",
    "minimum_of",
    "simplify",
    "remove_collinear",
    "count_points",
    "DAY_SECONDS",
    "lower_bound",
    "upper_bound",
    "best_departure",
    "sample_profile",
    "merge_profiles",
    "average_cost",
    "relative_error",
]
