"""Piecewise-linear travel-cost functions (PLFs).

A time-dependent edge weight :math:`w_{u,v}(t)` is represented, following the
paper (Definition 1), by a list of interpolation points
``{(t_1, c_1), ..., (t_k, c_k)}``.  Between consecutive breakpoints the cost is
linearly interpolated; before ``t_1`` and after ``t_k`` the cost is clamped to
``c_1`` and ``c_k`` respectively (constant extrapolation), which matches the
conventional treatment of daily travel-time profiles.

The class stores, next to the breakpoints, an optional per-segment ``via``
array that records the bridge vertex through which a *reduced* edge (built by
the graph-reduction operator, Algorithm 1) travels.  This provenance is what
allows shortest paths to be unpacked back into original road segments.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import InvalidFunctionError

__all__ = ["PiecewiseLinearFunction", "NO_VIA"]

#: Sentinel stored in the ``via`` array for segments that correspond to an
#: original (non-reduced) road segment.
NO_VIA: int = -1

# Numerical tolerance used when comparing breakpoint times and costs.
_TIME_EPS = 1e-9
_COST_EPS = 1e-9


class PiecewiseLinearFunction:
    """An immutable piecewise-linear function ``f(t)`` of departure time.

    Parameters
    ----------
    times:
        Strictly increasing breakpoint times (seconds).
    costs:
        Travel costs at each breakpoint (seconds); must be non-negative.
    via:
        Optional per-breakpoint provenance.  ``via[i]`` is the bridge vertex of
        the segment that *starts* at ``times[i]`` (and, for ``i == 0``, of the
        clamped region before the first breakpoint).  ``NO_VIA`` marks an
        original edge segment.  May be given as a scalar, in which case it is
        broadcast to every segment.
    validate:
        If true (default), verify the invariants and raise
        :class:`~repro.exceptions.InvalidFunctionError` on violation.  Internal
        constructors pass ``False`` once the arrays are known to be valid.

    Notes
    -----
    Instances are treated as immutable: the underlying numpy arrays are marked
    read-only.  All operators return new instances.
    """

    __slots__ = ("times", "costs", "via", "has_via", "_scalar_cache")

    def __init__(
        self,
        times: Sequence[float] | np.ndarray,
        costs: Sequence[float] | np.ndarray,
        via: int | Sequence[int] | np.ndarray | None = None,
        *,
        validate: bool = True,
    ) -> None:
        times_arr = np.asarray(times, dtype=np.float64)
        costs_arr = np.asarray(costs, dtype=np.float64)
        if via is None:
            via_arr = np.full(times_arr.shape, NO_VIA, dtype=np.int64)
            has_via = False
        elif np.isscalar(via):
            via_arr = np.full(times_arr.shape, int(via), dtype=np.int64)
            has_via = int(via) != NO_VIA
        else:
            via_arr = np.asarray(via, dtype=np.int64)
            has_via = bool((via_arr != NO_VIA).any())

        if validate:
            _validate_arrays(times_arr, costs_arr, via_arr)

        times_arr.flags.writeable = False
        costs_arr.flags.writeable = False
        via_arr.flags.writeable = False
        self.times = times_arr
        self.costs = costs_arr
        self.via = via_arr
        #: Whether any segment records a bridge vertex (fast path for operators).
        self.has_via = has_via
        #: Lazily-built (times, costs) lists for the scalar evaluation fast path.
        self._scalar_cache: tuple[list[float], list[float]] | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def constant(cls, cost: float, *, via: int = NO_VIA) -> "PiecewiseLinearFunction":
        """Return a constant function ``f(t) = cost``."""
        cost = float(cost)
        if not cost >= 0.0:  # also rejects NaN
            raise InvalidFunctionError(
                f"constant travel cost must be non-negative, got {cost}"
            )
        return cls(
            np.array([0.0]),
            np.array([cost]),
            np.array([via], dtype=np.int64),
            validate=False,
        )

    @classmethod
    def zero(cls) -> "PiecewiseLinearFunction":
        """Return the zero function (used as the identity of ``compound``)."""
        return cls.constant(0.0)

    @classmethod
    def from_points(
        cls,
        points: Iterable[tuple[float, float]],
        *,
        via: int | Sequence[int] | None = None,
    ) -> "PiecewiseLinearFunction":
        """Build a function from an iterable of ``(time, cost)`` pairs.

        The pairs do not need to be sorted; they are sorted by time here.
        Duplicate times raise :class:`InvalidFunctionError`.
        """
        pts = sorted(points)
        if not pts:
            raise InvalidFunctionError("at least one interpolation point is required")
        times = np.array([p[0] for p in pts], dtype=np.float64)
        costs = np.array([p[1] for p in pts], dtype=np.float64)
        return cls(times, costs, via)

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of interpolation points (the paper's ``|I|``)."""
        return int(self.times.shape[0])

    @property
    def domain(self) -> tuple[float, float]:
        """The ``(first, last)`` breakpoint times."""
        return float(self.times[0]), float(self.times[-1])

    @property
    def min_cost(self) -> float:
        """Smallest cost attained by the function."""
        return float(self.costs.min())

    @property
    def max_cost(self) -> float:
        """Largest cost attained by the function."""
        return float(self.costs.max())

    def points(self) -> list[tuple[float, float]]:
        """Return the interpolation points as a list of ``(time, cost)`` pairs."""
        return [(float(t), float(c)) for t, c in zip(self.times, self.costs)]

    def is_constant(self, tolerance: float = 0.0) -> bool:
        """Return ``True`` if the function is constant (within ``tolerance``)."""
        return bool(self.costs.max() - self.costs.min() <= tolerance)

    def __len__(self) -> int:  # pragma: no cover - trivial
        return self.size

    def __repr__(self) -> str:
        pts = ", ".join(f"({t:g}, {c:g})" for t, c in zip(self.times[:4], self.costs[:4]))
        suffix = ", ..." if self.size > 4 else ""
        return f"PiecewiseLinearFunction([{pts}{suffix}], size={self.size})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PiecewiseLinearFunction):
            return NotImplemented
        return (
            self.times.shape == other.times.shape
            and bool(np.array_equal(self.times, other.times))
            and bool(np.array_equal(self.costs, other.costs))
        )

    def __hash__(self) -> int:
        return hash((self.times.tobytes(), self.costs.tobytes()))

    def __call__(self, t: float | np.ndarray) -> float | np.ndarray:
        return self.evaluate(t)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, t: float | np.ndarray) -> float | np.ndarray:
        """Return ``f(t)``; accepts a scalar or a numpy array of times.

        Outside the breakpoint range the cost is clamped to the first/last
        breakpoint cost.
        """
        if self.size == 1:
            if np.isscalar(t):
                return float(self.costs[0])
            return np.full(np.shape(t), self.costs[0], dtype=np.float64)
        if np.isscalar(t):
            # Scalar fast path: stdlib bisect over lazily-cached float lists
            # plus one lerp — ~5x faster than a scalar ``np.interp`` call.
            # The formula mirrors ``np.interp`` (and the batch kernels in
            # :mod:`repro.functions.batch`) bit for bit, which is what keeps
            # batched and looped queries identical.
            cache = self._scalar_cache
            if cache is None:
                cache = self._scalar_cache = (
                    self.times.tolist(),
                    self.costs.tolist(),
                )
            times, costs = cache
            t = float(t)
            if t != t:  # NaN propagates, matching np.interp
                return t
            if t <= times[0]:
                return costs[0]
            if t >= times[-1]:
                return costs[-1]
            j = bisect_right(times, t) - 1
            t0 = times[j]
            c0 = costs[j]
            return (costs[j + 1] - c0) / (times[j + 1] - t0) * (t - t0) + c0
        return np.interp(t, self.times, self.costs)

    def arrival(self, t: float | np.ndarray) -> float | np.ndarray:
        """Return the arrival time ``t + f(t)`` for departure time ``t``."""
        value = self.evaluate(t)
        if np.isscalar(t):
            return float(t) + value
        return np.asarray(t, dtype=np.float64) + value

    def via_at(self, t: float) -> int:
        """Return the bridge vertex recorded for the segment containing ``t``.

        ``NO_VIA`` means the segment corresponds to an original road segment.
        """
        if self.size == 1:
            return int(self.via[0])
        idx = int(np.searchsorted(self.times, t, side="right")) - 1
        idx = min(max(idx, 0), self.size - 1)
        return int(self.via[idx])

    # ------------------------------------------------------------------
    # Properties of time-dependent travel costs
    # ------------------------------------------------------------------
    def is_fifo(self, tolerance: float = 1e-7) -> bool:
        """Check the FIFO (non-overtaking) property.

        A travel-cost function satisfies FIFO when the arrival function
        ``t + f(t)`` is non-decreasing, i.e. all slopes are at least ``-1``.
        """
        if self.size == 1:
            return True
        dt = np.diff(self.times)
        dc = np.diff(self.costs)
        return bool(np.all(dc >= -dt - tolerance))

    def is_nonnegative(self) -> bool:
        """Return ``True`` when every cost value is non-negative."""
        return bool(np.all(self.costs >= 0.0))

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def with_via(self, via: int) -> "PiecewiseLinearFunction":
        """Return a copy whose every segment records ``via`` as bridge vertex."""
        return PiecewiseLinearFunction(
            self.times,
            self.costs,
            np.full(self.times.shape, int(via), dtype=np.int64),
            validate=False,
        )

    def shift(self, delta_cost: float) -> "PiecewiseLinearFunction":
        """Return ``f(t) + delta_cost`` (used for lower/upper bound envelopes)."""
        new_costs = self.costs + float(delta_cost)
        if np.any(new_costs < 0):
            raise InvalidFunctionError("shift would produce negative travel costs")
        return PiecewiseLinearFunction(self.times, new_costs, self.via, validate=False)

    def restrict(self, start: float, end: float) -> "PiecewiseLinearFunction":
        """Restrict the breakpoints to the window ``[start, end]``.

        The function value is preserved inside the window (the window edges are
        inserted as breakpoints); breakpoints outside the window are dropped.
        Because evaluation clamps outside the breakpoint range, the restricted
        function remains defined for all ``t`` but is only guaranteed to match
        the original inside ``[start, end]``.
        """
        if end < start:
            raise InvalidFunctionError(f"invalid restriction window [{start}, {end}]")
        if self.size == 1:
            return self
        inside = (self.times >= start) & (self.times <= end)
        new_times = [start] if not inside.any() or self.times[inside][0] > start + _TIME_EPS else []
        new_times = np.concatenate(
            [
                np.asarray(new_times, dtype=np.float64),
                self.times[inside],
            ]
        )
        if new_times.size == 0 or new_times[-1] < end - _TIME_EPS:
            new_times = np.append(new_times, end)
        new_times = np.unique(new_times)
        new_costs = self.evaluate(new_times)
        new_via = self.via[
            np.clip(np.searchsorted(self.times, new_times, side="right") - 1, 0, self.size - 1)
        ]
        return PiecewiseLinearFunction(new_times, np.asarray(new_costs), new_via, validate=False)

    # ------------------------------------------------------------------
    # Comparison helpers
    # ------------------------------------------------------------------
    def allclose(
        self,
        other: "PiecewiseLinearFunction",
        tolerance: float = 1e-6,
        samples: int = 0,
    ) -> bool:
        """Return ``True`` if ``self`` and ``other`` agree everywhere.

        Both functions are evaluated on the union of their breakpoints (which is
        sufficient for exact piecewise-linear comparison) plus ``samples``
        additional evenly spaced probe times.
        """
        return self.max_difference(other, samples=samples) <= tolerance

    def max_difference(
        self, other: "PiecewiseLinearFunction", samples: int = 0
    ) -> float:
        """Return ``max_t |self(t) - other(t)|`` over the union of breakpoints."""
        grid = np.union1d(self.times, other.times)
        if samples > 0:
            lo = min(grid[0], 0.0)
            hi = max(grid[-1], lo + 1.0)
            grid = np.union1d(grid, np.linspace(lo, hi, samples))
        return float(np.max(np.abs(self.evaluate(grid) - other.evaluate(grid))))

    def definite_integral(self, start: float, end: float) -> float:
        """Integrate the function over ``[start, end]`` (trapezoidal, exact)."""
        if end < start:
            raise InvalidFunctionError("integration window is reversed")
        grid = np.union1d(self.times, np.array([start, end]))
        grid = grid[(grid >= start) & (grid <= end)]
        values = self.evaluate(grid)
        return float(np.trapezoid(values, grid))


def _validate_arrays(times: np.ndarray, costs: np.ndarray, via: np.ndarray) -> None:
    """Validate breakpoint arrays; raise :class:`InvalidFunctionError` on error."""
    if times.ndim != 1 or costs.ndim != 1 or via.ndim != 1:
        raise InvalidFunctionError("breakpoint arrays must be one-dimensional")
    if times.shape[0] == 0:
        raise InvalidFunctionError("a PLF needs at least one interpolation point")
    if times.shape != costs.shape or times.shape != via.shape:
        raise InvalidFunctionError(
            f"array length mismatch: times={times.shape}, costs={costs.shape}, via={via.shape}"
        )
    if not np.all(np.isfinite(times)) or not np.all(np.isfinite(costs)):
        raise InvalidFunctionError("breakpoints must be finite numbers")
    if np.any(np.diff(times) <= 0):
        raise InvalidFunctionError("breakpoint times must be strictly increasing")
    if np.any(costs < 0):
        raise InvalidFunctionError("travel costs must be non-negative")
