"""Helpers for working with whole-day travel-cost profiles.

The paper's evaluation distinguishes two query types:

* the *travel cost query* — a scalar: the minimum travel cost when departing at
  one specific time ``t``; and
* the *shortest travel cost function query* — the whole profile
  :math:`f_{s,d}(t)` over the time horizon.

This module contains the small pieces of profile arithmetic that sit on top of
:mod:`repro.functions.piecewise` but below the index/algorithms layer:
building daily profiles, computing bounds, and sampling profiles for
comparisons in tests and experiments.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.exceptions import InvalidFunctionError
from repro.functions.compound import minimum_of
from repro.functions.piecewise import PiecewiseLinearFunction

__all__ = [
    "DAY_SECONDS",
    "lower_bound",
    "upper_bound",
    "best_departure",
    "sample_profile",
    "merge_profiles",
    "average_cost",
    "relative_error",
]

#: The paper sets the time domain to one day (86 400 seconds).
DAY_SECONDS: float = 86_400.0


def lower_bound(func: PiecewiseLinearFunction) -> float:
    """Tightest constant lower bound of a profile (used by A* heuristics)."""
    return func.min_cost


def upper_bound(func: PiecewiseLinearFunction) -> float:
    """Tightest constant upper bound of a profile (used for pruning)."""
    return func.max_cost


def best_departure(
    func: PiecewiseLinearFunction, start: float, end: float
) -> tuple[float, float]:
    """Exact ``(departure, cost)`` minimising ``func`` within ``[start, end]``.

    A piecewise-linear function attains its minimum over a closed window at a
    breakpoint or at a window endpoint, so evaluating exactly those candidates
    is both exact and O(window breakpoints) — no sampling grid involved.  Ties
    resolve to the earliest departure.
    """
    if end < start:
        raise InvalidFunctionError(
            f"departure window is empty: start={start!r} > end={end!r}"
        )
    times = func.times
    inside = times[(times > start) & (times < end)]
    grid = np.concatenate([[float(start)], inside, [float(end)]])
    values = np.asarray(func.evaluate(grid), dtype=np.float64)
    pick = int(np.argmin(values))
    return float(grid[pick]), float(values[pick])


def sample_profile(
    func: PiecewiseLinearFunction,
    start: float = 0.0,
    end: float = DAY_SECONDS,
    samples: int = 97,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample a profile on an evenly spaced grid.

    Returns the grid and the sampled costs; useful for plotting and for the
    statistical comparisons in EXPERIMENTS.md.
    """
    if samples < 2:
        raise InvalidFunctionError("sampling requires at least two points")
    grid = np.linspace(start, end, samples)
    return grid, np.asarray(func.evaluate(grid), dtype=np.float64)


def merge_profiles(
    profiles: Iterable[PiecewiseLinearFunction],
) -> PiecewiseLinearFunction:
    """Lower envelope of several alternative route profiles."""
    return minimum_of(profiles)


def average_cost(
    func: PiecewiseLinearFunction,
    start: float = 0.0,
    end: float = DAY_SECONDS,
) -> float:
    """Mean travel cost of a profile over ``[start, end]``."""
    if end <= start:
        raise InvalidFunctionError("averaging window must have positive length")
    return func.definite_integral(start, end) / (end - start)


def relative_error(
    candidate: PiecewiseLinearFunction,
    reference: PiecewiseLinearFunction,
    samples: int = 193,
    start: float = 0.0,
    end: float = DAY_SECONDS,
) -> float:
    """Maximum relative error of ``candidate`` against ``reference``.

    Used by the test-suite to check that approximate (point-capped) indexes
    stay within their configured error budget of the exact TD-Dijkstra
    profile.
    """
    grid = np.linspace(start, end, samples)
    cand = np.asarray(candidate.evaluate(grid))
    ref = np.asarray(reference.evaluate(grid))
    denom = np.maximum(ref, 1e-9)
    return float(np.max(np.abs(cand - ref) / denom))
