"""Breakpoint reduction for piecewise-linear travel-cost functions.

Repeated application of ``compound`` and ``minimum`` makes the number of
interpolation points of intermediate functions grow.  Practical time-dependent
indexes (including the implementations the paper compares against) therefore
bound the number of points per function.  This module provides two reductions:

* :func:`remove_collinear` — lossless: drops points that lie (within a
  tolerance) on the segment spanned by their neighbours.
* :func:`simplify` — lossy but error-bounded: Visvalingam-style greedy removal
  of the point whose removal introduces the least vertical error, until the
  function fits in ``max_points`` points or no removal stays within
  ``tolerance``.

Both preserve the first and last breakpoints, never increase the pointwise
error beyond the requested tolerance, and keep the per-segment ``via``
provenance of the retained breakpoints.
"""

from __future__ import annotations

import numpy as np

from repro.functions.piecewise import PiecewiseLinearFunction

__all__ = ["remove_collinear", "simplify", "count_points"]


def remove_collinear(
    func: PiecewiseLinearFunction, tolerance: float = 1e-9
) -> PiecewiseLinearFunction:
    """Drop interior breakpoints that are collinear with their neighbours.

    A point is dropped when its vertical distance to the straight segment
    joining its two neighbours is at most ``tolerance``.  This is a lossless
    simplification for ``tolerance == 0`` (up to floating point round-off).
    """
    if func.size <= 2:
        return func
    times, costs, via = func.times, func.costs, func.via
    keep = np.ones(func.size, dtype=bool)
    # Vectorised collinearity test for all interior points at once.
    t_prev, t_mid, t_next = times[:-2], times[1:-1], times[2:]
    c_prev, c_mid, c_next = costs[:-2], costs[1:-1], costs[2:]
    span = t_next - t_prev
    interp = c_prev + (t_mid - t_prev) * (c_next - c_prev) / span
    collinear = np.abs(interp - c_mid) <= tolerance
    # Dropping consecutive collinear points simultaneously can move the
    # reference neighbours; resolve this with a sequential pass over the
    # candidates only (cheap because candidates are usually few).
    candidate_idx = np.nonzero(collinear)[0] + 1
    if candidate_idx.size == 0:
        return func
    candidates = set(candidate_idx.tolist())
    last_kept = 0
    for idx in range(1, func.size - 1):
        if idx not in candidates:
            last_kept = idx
            continue
        nxt = idx + 1
        span = times[nxt] - times[last_kept]
        interp = costs[last_kept] + (times[idx] - times[last_kept]) * (
            costs[nxt] - costs[last_kept]
        ) / span
        if abs(interp - costs[idx]) <= tolerance:
            keep[idx] = False
        else:
            last_kept = idx
    if keep.all():
        return func
    return PiecewiseLinearFunction(times[keep], costs[keep], via[keep], validate=False)


def simplify(
    func: PiecewiseLinearFunction,
    max_points: int | None = None,
    tolerance: float = 0.0,
) -> PiecewiseLinearFunction:
    """Reduce the number of breakpoints of ``func``.

    Parameters
    ----------
    func:
        The function to simplify.
    max_points:
        Upper bound on the number of interpolation points of the result.  When
        ``None`` only the lossless collinear removal (plus the ``tolerance``
        slack) is applied.
    tolerance:
        Maximum vertical error allowed for a single point removal during the
        collinear pass.  The greedy cap phase (when ``max_points`` forces
        further removals) ignores the tolerance: it always removes the point
        with the smallest induced error, so the result is the best effort under
        the hard cap.

    Returns
    -------
    PiecewiseLinearFunction
        A function with at most ``max_points`` breakpoints (when given) that
        deviates from ``func`` as little as the greedy strategy allows.
    """
    if max_points is not None and func.size <= max_points:
        # Already under the cap: skip the collinear scan entirely.  Capped
        # functions are produced in hot loops (index construction, profile
        # queries), where this fast path matters.
        return func
    reduced = remove_collinear(func, tolerance=max(tolerance, 1e-9))
    if max_points is None or reduced.size <= max_points:
        return reduced
    if max_points < 2:
        # Degenerate cap: collapse to the mean cost as a constant function.
        mean_cost = float(reduced.definite_integral(*reduced.domain)) / max(
            reduced.domain[1] - reduced.domain[0], 1e-12
        )
        return PiecewiseLinearFunction.constant(max(mean_cost, 0.0), via=int(reduced.via[0]))

    times = reduced.times.copy()
    costs = reduced.costs.copy()
    via = reduced.via.copy()
    # Greedy Visvalingam-style removal: repeatedly drop the interior point with
    # the smallest vertical deviation from the segment spanned by its current
    # neighbours.  Quadratic in the number of removals, which is fine because
    # index construction caps sizes at a few dozen points.
    while times.size > max_points:
        t_prev, t_mid, t_next = times[:-2], times[1:-1], times[2:]
        c_prev, c_mid, c_next = costs[:-2], costs[1:-1], costs[2:]
        interp = c_prev + (t_mid - t_prev) * (c_next - c_prev) / (t_next - t_prev)
        errors = np.abs(interp - c_mid)
        drop = int(np.argmin(errors)) + 1
        times = np.delete(times, drop)
        costs = np.delete(costs, drop)
        via = np.delete(via, drop)
    return PiecewiseLinearFunction(times, np.maximum(costs, 0.0), via, validate=False)


def count_points(functions) -> int:
    """Total number of interpolation points across an iterable of functions.

    This is the quantity the paper's selection constraint ``N`` counts
    (Definition 7/8): each selected shortcut pair contributes
    ``|I_<i,j>| + |I_<j,i>|`` points.
    """
    return sum(f.size for f in functions)
