"""The ``Compound`` and ``minimum`` operators on piecewise-linear functions.

``compound(f, g)`` is the paper's ``Compound()`` operator (Definition 2): it
returns the travel-cost function of traversing first the sub-path described by
``f`` and then the sub-path described by ``g``,

.. math::

    h(t) = f(t) + g(t + f(t)).

``minimum(f, g)`` is the pointwise minimum of two travel-cost functions and is
what merges alternative routes (Example 2.2).  Both operators are exact for
piecewise-linear inputs: the result's breakpoints are computed analytically,
not sampled.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import InvalidFunctionError
from repro.functions.piecewise import NO_VIA, PiecewiseLinearFunction

__all__ = ["compound", "minimum", "minimum_of", "upper_envelope_constant"]

_EPS = 1e-9


def compound(
    first: PiecewiseLinearFunction,
    second: PiecewiseLinearFunction,
    *,
    via: int | None = None,
) -> PiecewiseLinearFunction:
    """Link two travel-cost functions: travel ``first`` then ``second``.

    Parameters
    ----------
    first:
        Travel-cost function of the first sub-path (departure at ``t``).
    second:
        Travel-cost function of the second sub-path (departure at the arrival
        time of the first, ``t + first(t)``).
    via:
        Optional bridge vertex recorded on every segment of the result.  This
        is how the graph-reduction operator (Algorithm 1) and the shortcut
        constructor (Fact 1) remember through which vertex a reduced edge or
        shortcut travels.  When ``None`` the result carries ``NO_VIA``.

    Returns
    -------
    PiecewiseLinearFunction
        The exact function ``h(t) = first(t) + second(t + first(t))``.

    Notes
    -----
    For FIFO inputs the arrival function ``A(t) = t + first(t)`` is
    non-decreasing, so the exact breakpoints of ``h`` are the breakpoints of
    ``first`` plus the pre-images ``A^{-1}(b)`` of every breakpoint ``b`` of
    ``second``.  Non-FIFO inputs are still handled (the operator remains a
    valid upper approximation evaluated on the same breakpoint set), but
    exactness is only guaranteed under FIFO, which all generators in this
    library enforce.
    """
    # Fast path: second is constant -> h(t) = first(t) + c with first's shape.
    if second.size == 1:
        costs = first.costs + second.costs[0]
        out_via = _fill_via(first.via, via)
        return PiecewiseLinearFunction(first.times, costs, out_via, validate=False)
    # Fast path: first is constant -> h(t) = c + second(t + c), a shift of second.
    if first.size == 1:
        c = float(first.costs[0])
        times = second.times - c
        costs = second.costs + c
        out_via = _fill_via(second.via, via)
        return PiecewiseLinearFunction(times, costs, out_via, validate=False)

    breakpoints = _compound_breakpoints(first, second)
    f_vals = first.evaluate(breakpoints)
    arrival = breakpoints + f_vals
    costs = f_vals + second.evaluate(arrival)
    times, costs = _dedupe_breakpoints(breakpoints, costs)
    if via is None:
        out_via = np.full(times.shape, NO_VIA, dtype=np.int64)
    else:
        out_via = np.full(times.shape, int(via), dtype=np.int64)
    return PiecewiseLinearFunction(times, costs, out_via, validate=False)


def minimum(
    first: PiecewiseLinearFunction,
    second: PiecewiseLinearFunction,
) -> PiecewiseLinearFunction:
    """Return the pointwise minimum of two travel-cost functions.

    The result's ``via`` metadata is inherited, segment by segment, from
    whichever input attains the minimum on that segment (ties favour
    ``first``).  Exact intersection points between the two functions are
    inserted as breakpoints so the result is an exact lower envelope.
    """
    if first.size == 1 and second.size == 1:
        if first.costs[0] <= second.costs[0]:
            return first
        return second
    # Cheap certain-dominance screen: if the best value one function ever takes
    # is no better than the worst value of the other, the other wins outright.
    if second.costs.min() >= first.costs.max():
        return first
    if first.costs.min() >= second.costs.max():
        return second

    grid = np.union1d(first.times, second.times)
    f_vals = first.evaluate(grid)
    g_vals = second.evaluate(grid)
    diff = f_vals - g_vals

    # Both functions are linear between the shared grid points, so comparing
    # them on the grid decides dominance everywhere.
    if np.all(diff <= _EPS):
        return first
    if np.all(diff >= -_EPS):
        return second

    # Locate sign changes of (f - g) between consecutive grid points and solve
    # for the exact crossing time on each such interval.
    crossing_times = _crossings(grid, diff)
    if crossing_times.size:
        grid = np.union1d(grid, crossing_times)
        f_vals = first.evaluate(grid)
        g_vals = second.evaluate(grid)

    min_vals = np.minimum(f_vals, g_vals)

    # Decide the winner per segment from the segment endpoint sums (both
    # functions are linear on a segment, so the comparison at the midpoint
    # equals the comparison of the endpoint sums); the last entry covers the
    # clamped region after the final breakpoint.
    if grid.size == 1:
        winner_first = f_vals <= g_vals
    else:
        seg_first = (f_vals[:-1] + f_vals[1:]) <= (g_vals[:-1] + g_vals[1:]) + _EPS
        winner_first = np.concatenate([seg_first, [f_vals[-1] <= g_vals[-1] + _EPS]])
    via = np.where(
        winner_first,
        _via_lookup(first, grid),
        _via_lookup(second, grid),
    )

    times, costs, via = _dedupe_breakpoints_with_via(grid, min_vals, via)
    return PiecewiseLinearFunction(times, costs, via, validate=False)


def minimum_of(
    functions: Iterable[PiecewiseLinearFunction],
) -> PiecewiseLinearFunction:
    """Return the pointwise minimum of a non-empty iterable of functions."""
    result: PiecewiseLinearFunction | None = None
    for func in functions:
        result = func if result is None else minimum(result, func)
    if result is None:
        raise InvalidFunctionError("minimum_of() requires at least one function")
    return result


def upper_envelope_constant(func: PiecewiseLinearFunction) -> float:
    """Return the tightest constant upper bound of a travel-cost function."""
    return func.max_cost


# ----------------------------------------------------------------------
# Internal helpers
# ----------------------------------------------------------------------
def _fill_via(template: np.ndarray, via: int | None) -> np.ndarray:
    if via is None:
        return np.full(template.shape, NO_VIA, dtype=np.int64)
    return np.full(template.shape, int(via), dtype=np.int64)


def _compound_breakpoints(
    first: PiecewiseLinearFunction, second: PiecewiseLinearFunction
) -> np.ndarray:
    """Breakpoint times of ``compound(first, second)``.

    These are the breakpoints of ``first`` together with the pre-images of the
    breakpoints of ``second`` under the (non-decreasing, for FIFO inputs)
    arrival function of ``first``.
    """
    f_times = first.times
    arrivals = f_times + first.costs

    if np.all(np.diff(arrivals) >= 0):
        preimage_arr = _vectorised_preimages(f_times, arrivals, second.times)
    else:
        # Non-FIFO first leg: fall back to the per-target scan (rare; only the
        # exactness on the evaluated breakpoints is guaranteed in this case).
        collected: list[float] = []
        for target in second.times:
            collected.extend(_arrival_preimages(f_times, arrivals, float(target)))
        preimage_arr = np.asarray(collected, dtype=np.float64)

    if preimage_arr.size:
        candidate = np.concatenate([f_times, preimage_arr])
    else:
        candidate = f_times
    candidate = np.unique(candidate)
    return candidate


def _vectorised_preimages(
    f_times: np.ndarray, arrivals: np.ndarray, targets: np.ndarray
) -> np.ndarray:
    """Pre-images of ``targets`` under a non-decreasing arrival function.

    Inside the breakpoint range the arrival function is inverted with
    :func:`numpy.interp` (swapping axes); outside the range it has slope 1
    because the cost is clamped, so the pre-image is ``target - clamped_cost``.
    """
    first_cost = arrivals[0] - f_times[0]
    last_cost = arrivals[-1] - f_times[-1]
    below = targets < arrivals[0]
    above = targets > arrivals[-1]
    inside = ~below & ~above
    parts = []
    if below.any():
        parts.append(targets[below] - first_cost)
    if inside.any():
        parts.append(np.interp(targets[inside], arrivals, f_times))
    if above.any():
        parts.append(targets[above] - last_cost)
    if not parts:
        return np.empty(0, dtype=np.float64)
    return np.concatenate(parts)


def _arrival_preimages(
    f_times: np.ndarray, arrivals: np.ndarray, target: float
) -> list[float]:
    """Departure times ``t`` with ``t + f(t) == target``.

    The arrival function is linear between the breakpoints of ``f`` and has
    slope exactly 1 outside the breakpoint range (because the cost is clamped
    there).  For FIFO functions this pre-image is a point or an interval per
    segment; returning one representative per segment is sufficient to make
    the compound exact because the compound is linear in between.
    """
    result: list[float] = []
    # Region before the first breakpoint: arrival = t + c_1, slope 1.
    if target < arrivals[0] - _EPS:
        first_cost = float(arrivals[0] - f_times[0])
        result.append(float(target) - first_cost)
        return result
    # Region after the last breakpoint: arrival = t + c_k, slope 1.
    if target > arrivals[-1] + _EPS:
        result.append(target - (arrivals[-1] - f_times[-1]))
        return result
    # Inside: locate the segments whose arrival range brackets the target.  For
    # FIFO inputs `arrivals` is non-decreasing; for robustness we scan the
    # (few) segments rather than bisect on a possibly non-monotone array.
    for i in range(len(f_times) - 1):
        lo, hi = arrivals[i], arrivals[i + 1]
        a, b = (lo, hi) if lo <= hi else (hi, lo)
        if a - _EPS <= target <= b + _EPS:
            if abs(hi - lo) < _EPS:
                result.append(float(f_times[i]))
            else:
                frac = (target - lo) / (hi - lo)
                frac = min(max(frac, 0.0), 1.0)
                result.append(float(f_times[i] + frac * (f_times[i + 1] - f_times[i])))
    if abs(target - arrivals[0]) <= _EPS:
        result.append(float(f_times[0]))
    if abs(target - arrivals[-1]) <= _EPS:
        result.append(float(f_times[-1]))
    return result


def _crossings(grid: np.ndarray, diff: np.ndarray) -> np.ndarray:
    """Exact crossing times where ``diff`` (piecewise linear on grid) hits 0."""
    if grid.size < 2:
        return np.empty(0, dtype=np.float64)
    d0 = diff[:-1]
    d1 = diff[1:]
    mask = ((d0 > _EPS) & (d1 < -_EPS)) | ((d0 < -_EPS) & (d1 > _EPS))
    if not mask.any():
        return np.empty(0, dtype=np.float64)
    t0 = grid[:-1][mask]
    t1 = grid[1:][mask]
    y0 = d0[mask]
    y1 = d1[mask]
    return t0 + (t1 - t0) * (y0 / (y0 - y1))


def _via_lookup(func: PiecewiseLinearFunction, grid: np.ndarray) -> np.ndarray:
    """Vectorised ``via_at`` for every grid point."""
    if not func.has_via or func.size == 1:
        return np.full(grid.shape, func.via[0], dtype=np.int64)
    idx = np.clip(np.searchsorted(func.times, grid, side="right") - 1, 0, func.size - 1)
    return func.via[idx]


def _dedupe_breakpoints(
    times: np.ndarray, costs: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Drop breakpoints closer than the numeric tolerance."""
    if times.size <= 1:
        return times, costs
    keep = np.concatenate([[True], np.diff(times) > _EPS])
    return times[keep], costs[keep]


def _dedupe_breakpoints_with_via(
    times: np.ndarray, costs: np.ndarray, via: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    if times.size <= 1:
        return times, costs, via
    keep = np.concatenate([[True], np.diff(times) > _EPS])
    return times[keep], costs[keep], via[keep]


def _as_sequence(values: Sequence[float] | np.ndarray) -> np.ndarray:  # pragma: no cover
    return np.asarray(values, dtype=np.float64)
