"""Registry exporters: Prometheus text exposition and JSON snapshots.

Both exporters are pure functions over a
:class:`~repro.obs.metrics.MetricsRegistry` — no sockets, no frameworks.
:func:`to_prometheus_text` produces the text exposition format
(``text/plain; version=0.0.4``) byte-for-byte the way a ``/metrics`` route
would serve it, so the future ASGI gateway mounts it verbatim and today's
callers can do::

    print(host.metrics_text())          # or curl the gateway once it exists

:func:`to_json_snapshot` produces a stable, machine-readable dict for the
experiment grid (ROADMAP item 5) and for test assertions.
"""

from __future__ import annotations

import math
from typing import Any

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramValue,
    MetricsRegistry,
)

__all__ = ["PROMETHEUS_CONTENT_TYPE", "to_prometheus_text", "to_json_snapshot"]

#: The Content-Type a scrape endpoint must declare when serving
#: :func:`to_prometheus_text` output (the text exposition format version the
#: Prometheus server content-negotiates on).  The gateway's ``/metrics``
#: route sends exactly this; anything else mounting the exporter should too.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(pairs: tuple[tuple[str, str], ...]) -> str:
    if not pairs:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in pairs
    )
    return "{" + inner + "}"


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """Render ``registry`` in the Prometheus text exposition format.

    Counters and gauges emit one sample per label set; histograms emit
    cumulative ``_bucket`` samples (with the canonical ``le`` label and a
    ``+Inf`` bucket), plus ``_sum`` and ``_count``.  Label sets are sorted so
    the output is deterministic — the exposition golden test pins it.
    """
    lines: list[str] = []
    for instrument, samples in registry.collect():
        lines.append(f"# HELP {instrument.name} {_escape_help(instrument.help)}")
        lines.append(f"# TYPE {instrument.name} {instrument.kind}")
        for key, value in sorted(samples, key=lambda item: item[0]):
            pairs = tuple(zip(instrument.labelnames, key))
            if isinstance(instrument, (Counter, Gauge)):
                assert isinstance(value, float)
                lines.append(
                    f"{instrument.name}{_format_labels(pairs)} "
                    f"{_format_value(value)}"
                )
            elif isinstance(instrument, Histogram):
                assert isinstance(value, HistogramValue)
                cumulative = 0
                for bound, count in zip(value.bounds, value.counts):
                    cumulative += count
                    bucket_pairs = pairs + (("le", _format_value(bound)),)
                    lines.append(
                        f"{instrument.name}_bucket"
                        f"{_format_labels(bucket_pairs)} {cumulative}"
                    )
                cumulative += value.counts[-1]
                inf_pairs = pairs + (("le", "+Inf"),)
                lines.append(
                    f"{instrument.name}_bucket{_format_labels(inf_pairs)} "
                    f"{cumulative}"
                )
                lines.append(
                    f"{instrument.name}_sum{_format_labels(pairs)} "
                    f"{_format_value(value.sum)}"
                )
                lines.append(
                    f"{instrument.name}_count{_format_labels(pairs)} {cumulative}"
                )
    return "\n".join(lines) + "\n" if lines else ""


def to_json_snapshot(registry: MetricsRegistry) -> dict[str, Any]:
    """Render ``registry`` as a JSON-serialisable snapshot.

    Shape::

        {"metrics": {
            "<name>": {"kind": "counter", "help": "...",
                       "labelnames": ["service"],
                       "samples": [{"labels": {"service": "prod"},
                                    "value": 42.0}, ...]},
            "<hist>": {..., "buckets": [...],
                       "samples": [{"labels": {...},
                                    "counts": [...], "sum": 1.2,
                                    "count": 7}]}}}
    """
    metrics: dict[str, Any] = {}
    for instrument, samples in registry.collect():
        entry: dict[str, Any] = {
            "kind": instrument.kind,
            "help": instrument.help,
            "labelnames": list(instrument.labelnames),
            "samples": [],
        }
        if isinstance(instrument, Histogram):
            entry["buckets"] = list(instrument.bounds)
        for key, value in sorted(samples, key=lambda item: item[0]):
            labels = dict(zip(instrument.labelnames, key))
            if isinstance(value, HistogramValue):
                entry["samples"].append(
                    {
                        "labels": labels,
                        "counts": list(value.counts),
                        "sum": value.sum,
                        "count": value.count,
                    }
                )
            else:
                entry["samples"].append({"labels": labels, "value": value})
        metrics[instrument.name] = entry
    return {"metrics": metrics}
