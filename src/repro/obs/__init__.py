"""Unified observability: metrics registry, tracing, and structured events.

``repro.obs`` is the telemetry surface for the whole stack.  Three pillars,
each usable on its own, bundled by :class:`Observability` for wire-through:

- :mod:`repro.obs.metrics` — a thread-safe registry of ``Counter`` /
  ``Gauge`` / ``Histogram`` instruments with Prometheus-style labels,
  exported by :func:`to_prometheus_text` and :func:`to_json_snapshot`.
- :mod:`repro.obs.trace` — per-query span trees recorded against an
  injectable monotonic clock, with a bounded ring of recent traces and a
  sampled JSONL log.
- :mod:`repro.obs.events` — a typed structured event log for control-plane
  transitions (swaps, recoveries, sheds, fault injections).

The process-wide bundle (``get_observability()``) mirrors the registry
singleton in :mod:`repro.obs.metrics`; components accept an injected
``Observability`` for isolated tests and fall back to the singleton.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.obs.events import (
    EVENT_ABORT,
    EVENT_DEADLINE,
    EVENT_DEPLOY,
    EVENT_FAULT,
    EVENT_GATEWAY_SHED,
    EVENT_RATE_LIMITED,
    EVENT_REPLICA_RESPAWN,
    EVENT_REPLICA_SPAWN,
    EVENT_HEALTH,
    EVENT_RECOVERY,
    EVENT_SHED,
    EVENT_SWAP,
    EVENT_TRAFFIC_ACTION,
    EVENT_TRAFFIC_INGEST,
    EVENT_UNDEPLOY,
    EVENT_UPDATE,
    Event,
    EventLog,
    read_events,
)
from repro.obs.export import (
    PROMETHEUS_CONTENT_TYPE,
    to_json_snapshot,
    to_prometheus_text,
)
from repro.obs.metrics import (
    LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    HistogramValue,
    MetricsRegistry,
    bucket_percentile,
    get_registry,
    set_registry,
)
from repro.obs.trace import (
    STATUS_ERROR,
    STATUS_OK,
    PipelineTrace,
    Span,
    Trace,
    TraceLike,
    Tracer,
)
from repro.utils.timing import SYSTEM_CLOCK, Clock

__all__ = [
    "Observability",
    "get_observability",
    "set_observability",
    # metrics
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramValue",
    "LATENCY_BUCKETS_MS",
    "bucket_percentile",
    "get_registry",
    "set_registry",
    # exporters
    "PROMETHEUS_CONTENT_TYPE",
    "to_prometheus_text",
    "to_json_snapshot",
    # tracing
    "Span",
    "PipelineTrace",
    "Trace",
    "TraceLike",
    "Tracer",
    "STATUS_OK",
    "STATUS_ERROR",
    # events
    "Event",
    "EventLog",
    "read_events",
    "EVENT_DEPLOY",
    "EVENT_SWAP",
    "EVENT_UNDEPLOY",
    "EVENT_UPDATE",
    "EVENT_TRAFFIC_INGEST",
    "EVENT_TRAFFIC_ACTION",
    "EVENT_RECOVERY",
    "EVENT_HEALTH",
    "EVENT_SHED",
    "EVENT_DEADLINE",
    "EVENT_FAULT",
    "EVENT_ABORT",
    "EVENT_REPLICA_SPAWN",
    "EVENT_REPLICA_RESPAWN",
    "EVENT_RATE_LIMITED",
    "EVENT_GATEWAY_SHED",
]


def _default_tracer() -> Tracer:
    return Tracer(clock=SYSTEM_CLOCK)


def _default_events() -> EventLog:
    return EventLog(clock=SYSTEM_CLOCK)


@dataclass
class Observability:
    """One bundle of telemetry sinks, threaded through a component tree.

    The serving layer takes one of these per host/service; build-side code
    publishes into ``registry``.  Constructing a bundle with defaults gives
    fully isolated sinks (ideal for tests); the process-wide bundle from
    :func:`get_observability` shares the registry singleton.
    """

    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    tracer: Tracer = field(default_factory=_default_tracer)
    events: EventLog = field(default_factory=_default_events)
    clock: Clock = SYSTEM_CLOCK
    #: Master switch: components skip instrumentation entirely (no registry
    #: children, no traces, no events) when False — the baseline the obs
    #: overhead benchmark compares against.
    enabled: bool = True

    @classmethod
    def disabled(cls) -> "Observability":
        """A no-op bundle: components attached to it record nothing."""
        return cls(enabled=False)

    def metrics_text(self) -> str:
        """The registry in Prometheus text exposition format."""
        self.registry.refresh()
        return to_prometheus_text(self.registry)

    def metrics_json(self) -> dict[str, object]:
        """The registry as a JSON-serialisable snapshot."""
        self.registry.refresh()
        return to_json_snapshot(self.registry)

    def close(self) -> None:
        """Close any file-backed sinks (idempotent)."""
        self.tracer.close()
        self.events.close()


_default_obs: Observability | None = None
_obs_lock = threading.Lock()


def get_observability() -> Observability:
    """The process-wide bundle (shares the registry singleton)."""
    global _default_obs
    with _obs_lock:
        if _default_obs is None:
            _default_obs = Observability(registry=get_registry())
        return _default_obs


def set_observability(obs: Observability) -> Observability:
    """Replace the process-wide bundle (returns the previous one)."""
    global _default_obs
    with _obs_lock:
        previous = _default_obs if _default_obs is not None else Observability(
            registry=get_registry()
        )
        _default_obs = obs
        set_registry(obs.registry)
        return previous
