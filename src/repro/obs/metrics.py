"""Thread-safe metrics registry: counters, gauges, log-bucket histograms.

The registry is the shared telemetry vocabulary of the whole stack — builds
(:class:`~repro.core.index.TDTreeIndex` phase timings, pool-memory gauges)
and serving (:class:`~repro.serving.QueryService` /
:class:`~repro.serving.EngineHost` traffic counters) publish into the same
instrument space, and the exporters in :mod:`repro.obs.export` turn any
registry into a Prometheus text exposition or a JSON snapshot.

Design points:

* **Labeled instruments.**  ``registry.counter("x_total", "...", ("service",))``
  returns one :class:`Counter`; ``counter.labels(service="prod")`` binds a
  label set into a cheap child handle whose ``inc`` is one lock + one float
  add — bind once on a hot path, not per call.
* **Idempotent registration.**  Asking for an existing name returns the
  existing instrument (type and label names must match), so independent
  components share instruments without coordination.
* **Histograms use fixed log-scale buckets** (:data:`LATENCY_BUCKETS_MS`
  for latencies).  Fixed shared buckets are what makes histograms *mergeable*:
  adding two services' bucket counts is exact, unlike averaging their
  percentiles (see :func:`bucket_percentile` and
  :meth:`~repro.serving.ServiceStats.merged`).
* **Per-process singleton plus injectable instances** — library code defaults
  to :func:`get_registry`; tests build private registries and pass them in.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Callable, Iterator, Mapping, Sequence

__all__ = [
    "LATENCY_BUCKETS_MS",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramValue",
    "MetricSample",
    "MetricsRegistry",
    "bucket_percentile",
    "get_registry",
    "set_registry",
]

#: Fixed log-scale latency bucket upper bounds, in milliseconds.  Spans
#: sub-batch-flush latencies (0.1 ms) to deadline-scale tails (10 s); the
#: implicit final bucket is +inf.  Shared by every latency histogram in the
#: library so snapshots from different services/generations merge exactly.
LATENCY_BUCKETS_MS: tuple[float, ...] = (
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
    500.0,
    1_000.0,
    2_500.0,
    10_000.0,
)

#: One label set, in the instrument's declared label-name order.
LabelValues = tuple[str, ...]


def _label_values(
    labelnames: tuple[str, ...], labels: Mapping[str, str]
) -> LabelValues:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"expected labels {labelnames}, got {tuple(sorted(labels))}"
        )
    return tuple(str(labels[name]) for name in labelnames)


def bucket_percentile(
    bounds: Sequence[float], counts: Sequence[int], q: float
) -> float:
    """Estimate the ``q``-th percentile from histogram bucket counts.

    ``bounds`` are the finite bucket upper bounds; ``counts`` has one extra
    trailing entry for the +inf overflow bucket.  Uses Prometheus-style
    linear interpolation inside the located bucket; the overflow bucket
    reports its lower bound (the largest finite bound — there is no upper
    edge to interpolate towards).  Returns 0.0 for an empty histogram.
    """
    if len(counts) != len(bounds) + 1:
        raise ValueError("counts must have one entry per bound plus overflow")
    total = sum(counts)
    if total == 0:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    rank = (q / 100.0) * total
    cumulative = 0
    for i, count in enumerate(counts):
        previous = cumulative
        cumulative += count
        if cumulative >= rank and count > 0:
            if i == len(bounds):  # overflow bucket: no finite upper edge
                return float(bounds[-1])
            lower = bounds[i - 1] if i > 0 else 0.0
            upper = bounds[i]
            fraction = (rank - previous) / count if count else 1.0
            return float(lower + (upper - lower) * min(max(fraction, 0.0), 1.0))
    return float(bounds[-1])


class _CounterChild:
    """One label set's value of a :class:`Counter` (pre-bound, cheap)."""

    __slots__ = ("_counter", "_key")

    def __init__(self, counter: "Counter", key: LabelValues) -> None:
        self._counter = counter
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        self._counter._inc(self._key, amount)

    @property
    def value(self) -> float:
        return self._counter._get(self._key)


class _GaugeChild:
    """One label set's value of a :class:`Gauge` (pre-bound, cheap)."""

    __slots__ = ("_gauge", "_key")

    def __init__(self, gauge: "Gauge", key: LabelValues) -> None:
        self._gauge = gauge
        self._key = key

    def set(self, value: float) -> None:
        self._gauge._set(self._key, value)

    def inc(self, amount: float = 1.0) -> None:
        self._gauge._inc(self._key, amount)

    def dec(self, amount: float = 1.0) -> None:
        self._gauge._inc(self._key, -amount)

    @property
    def value(self) -> float:
        return self._gauge._get(self._key)


class _HistogramChild:
    """One label set's buckets of a :class:`Histogram` (pre-bound)."""

    __slots__ = ("_histogram", "_key")

    def __init__(self, histogram: "Histogram", key: LabelValues) -> None:
        self._histogram = histogram
        self._key = key

    def observe(self, value: float) -> None:
        self._histogram._observe(self._key, value)

    def observe_many(self, values: Sequence[float]) -> None:
        self._histogram._observe_many(self._key, values)

    def merge_counts(self, counts: Sequence[int], sum_delta: float) -> None:
        self._histogram._merge_counts(self._key, counts, sum_delta)

    @property
    def value(self) -> "HistogramValue":
        return self._histogram._get(self._key)


class _Instrument:
    """Common machinery: name, help, label names, per-instrument lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str]) -> None:
        self.name = name
        self.help = help
        self.labelnames: tuple[str, ...] = tuple(labelnames)
        self._lock = threading.Lock()

    def _key(self, labels: Mapping[str, str]) -> LabelValues:
        return _label_values(self.labelnames, labels)


class Counter(_Instrument):
    """A monotonically increasing sum (Prometheus ``counter``)."""

    kind = "counter"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._values: dict[LabelValues, float] = {}

    def labels(self, **labels: str) -> _CounterChild:
        return _CounterChild(self, self._key(labels))

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        self._inc(self._key(labels), amount)

    def value(self, **labels: str) -> float:
        return self._get(self._key(labels))

    def _inc(self, key: LabelValues, amount: float) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def _get(self, key: LabelValues) -> float:
        with self._lock:
            return self._values.get(key, 0.0)

    def items(self) -> list[tuple[LabelValues, float]]:
        with self._lock:
            return list(self._values.items())


class Gauge(_Instrument):
    """A value that can go up and down (Prometheus ``gauge``)."""

    kind = "gauge"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._values: dict[LabelValues, float] = {}

    def labels(self, **labels: str) -> _GaugeChild:
        return _GaugeChild(self, self._key(labels))

    def set(self, value: float, **labels: str) -> None:
        self._set(self._key(labels), value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        self._inc(self._key(labels), amount)

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self._inc(self._key(labels), -amount)

    def value(self, **labels: str) -> float:
        return self._get(self._key(labels))

    def _set(self, key: LabelValues, value: float) -> None:
        with self._lock:
            self._values[key] = float(value)

    def _inc(self, key: LabelValues, amount: float) -> None:
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def _get(self, key: LabelValues) -> float:
        with self._lock:
            return self._values.get(key, 0.0)

    def items(self) -> list[tuple[LabelValues, float]]:
        with self._lock:
            return list(self._values.items())


class HistogramValue:
    """An immutable snapshot of one histogram label set."""

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(
        self, bounds: tuple[float, ...], counts: tuple[int, ...], total: float
    ) -> None:
        #: Finite bucket upper bounds.
        self.bounds = bounds
        #: Observation counts per bucket, plus one overflow entry.
        self.counts = counts
        #: Sum of every observed value.
        self.sum = total
        #: Total number of observations.
        self.count = sum(counts)

    def percentile(self, q: float) -> float:
        """Estimated ``q``-th percentile (see :func:`bucket_percentile`)."""
        return bucket_percentile(self.bounds, self.counts, q)


class Histogram(_Instrument):
    """Fixed-bucket distribution (Prometheus ``histogram``).

    Buckets are set at construction and shared by every label set, so any
    two snapshots of the same instrument merge by adding counts.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        *,
        buckets: Sequence[float] = LATENCY_BUCKETS_MS,
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError("buckets must be strictly increasing and non-empty")
        if any(not math.isfinite(b) for b in bounds):
            raise ValueError("buckets must be finite (+inf is implicit)")
        self.bounds = bounds
        self._counts: dict[LabelValues, list[int]] = {}
        self._sums: dict[LabelValues, float] = {}

    def labels(self, **labels: str) -> _HistogramChild:
        return _HistogramChild(self, self._key(labels))

    def observe(self, value: float, **labels: str) -> None:
        self._observe(self._key(labels), value)

    def value(self, **labels: str) -> HistogramValue:
        return self._get(self._key(labels))

    def _observe(self, key: LabelValues, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = self._counts[key] = [0] * (len(self.bounds) + 1)
            counts[index] += 1
            self._sums[key] = self._sums.get(key, 0.0) + value

    def _observe_many(self, key: LabelValues, values: Sequence[float]) -> None:
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = self._counts[key] = [0] * (len(self.bounds) + 1)
            total = self._sums.get(key, 0.0)
            for value in values:
                counts[bisect_left(self.bounds, value)] += 1
                total += value
            self._sums[key] = total

    def _merge_counts(
        self, key: LabelValues, deltas: Sequence[int], sum_delta: float
    ) -> None:
        """Add pre-bucketed count deltas (plus their value sum) to ``key``.

        The publisher's buckets must be this instrument's: a source that
        already maintains counts in the same bounds (e.g. the serving
        layer's latency reservoir) syncs in O(buckets) instead of
        re-bucketing every observation.
        """
        if len(deltas) != len(self.bounds) + 1:
            raise ValueError(
                f"expected {len(self.bounds) + 1} bucket counts "
                f"(bounds plus overflow), got {len(deltas)}"
            )
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = self._counts[key] = [0] * (len(self.bounds) + 1)
            for i, delta in enumerate(deltas):
                if delta:
                    counts[i] += delta
            self._sums[key] = self._sums.get(key, 0.0) + sum_delta

    def _get(self, key: LabelValues) -> HistogramValue:
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = [0] * (len(self.bounds) + 1)
            return HistogramValue(
                self.bounds, tuple(counts), self._sums.get(key, 0.0)
            )

    def items(self) -> list[tuple[LabelValues, HistogramValue]]:
        with self._lock:
            return [
                (
                    key,
                    HistogramValue(
                        self.bounds, tuple(counts), self._sums.get(key, 0.0)
                    ),
                )
                for key, counts in self._counts.items()
            ]


#: One exported sample: (metric name, label pairs, value).
MetricSample = tuple[str, tuple[tuple[str, str], ...], float]


class MetricsRegistry:
    """A named collection of instruments, safe for concurrent use.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first call
    registers the instrument, later calls return it (and reject mismatched
    kinds or label names, which would silently split a metric).  *Refresh
    hooks* let pull-model sources (a :class:`~repro.serving.QueryService`
    publishes its counters batch-wise, not per submit) flush pending deltas
    right before an export reads the registry.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, _Instrument] = {}
        self._refresh_hooks: list[Callable[[], None]] = []

    # -- registration --------------------------------------------------
    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        instrument = self._register(Counter, name, help, labelnames)
        assert isinstance(instrument, Counter)
        return instrument

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        instrument = self._register(Gauge, name, help, labelnames)
        assert isinstance(instrument, Gauge)
        return instrument

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        *,
        buckets: Sequence[float] = LATENCY_BUCKETS_MS,
    ) -> Histogram:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                self._check_match(existing, Histogram, name, labelnames)
                assert isinstance(existing, Histogram)
                if existing.bounds != tuple(float(b) for b in buckets):
                    raise ValueError(
                        f"histogram {name!r} already registered with "
                        "different buckets"
                    )
                return existing
            instrument = Histogram(name, help, labelnames, buckets=buckets)
            self._instruments[name] = instrument
            return instrument

    def _register(
        self,
        kind: "type[Counter] | type[Gauge]",
        name: str,
        help: str,
        labelnames: Sequence[str],
    ) -> "Counter | Gauge":
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                self._check_match(existing, kind, name, labelnames)
                assert isinstance(existing, (Counter, Gauge))
                return existing
            instrument = kind(name, help, labelnames)
            self._instruments[name] = instrument
            return instrument

    @staticmethod
    def _check_match(
        existing: _Instrument, kind: type, name: str, labelnames: Sequence[str]
    ) -> None:
        if type(existing) is not kind:
            raise ValueError(
                f"metric {name!r} already registered as a "
                f"{existing.kind}, not a {kind.__name__.lower()}"
            )
        if existing.labelnames != tuple(labelnames):
            raise ValueError(
                f"metric {name!r} already registered with labels "
                f"{existing.labelnames}, not {tuple(labelnames)}"
            )

    # -- refresh hooks -------------------------------------------------
    def register_refresh_hook(self, hook: Callable[[], None]) -> None:
        """Run ``hook()`` before every :meth:`collect` (export freshness)."""
        with self._lock:
            self._refresh_hooks.append(hook)

    def unregister_refresh_hook(self, hook: Callable[[], None]) -> None:
        with self._lock:
            try:
                self._refresh_hooks.remove(hook)
            except ValueError:
                pass

    def refresh(self) -> None:
        """Fire every refresh hook (exporters call this first)."""
        with self._lock:
            hooks = list(self._refresh_hooks)
        for hook in hooks:
            try:
                hook()
            except Exception:  # noqa: BLE001 - a dead source must not kill exports
                pass

    # -- introspection -------------------------------------------------
    def instruments(self) -> list[_Instrument]:
        """Registered instruments, in registration order."""
        with self._lock:
            return list(self._instruments.values())

    def get(self, name: str) -> "_Instrument | None":
        with self._lock:
            return self._instruments.get(name)

    def names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(self._instruments)

    def collect(self) -> Iterator[tuple[_Instrument, list[tuple[LabelValues, object]]]]:
        """Refresh, then yield ``(instrument, [(label values, value)])``.

        The value is a float for counters/gauges and a
        :class:`HistogramValue` for histograms.
        """
        self.refresh()
        for instrument in self.instruments():
            yield instrument, list(instrument.items())  # type: ignore[attr-defined]


_default_lock = threading.Lock()
_default_registry: MetricsRegistry | None = None


def get_registry() -> MetricsRegistry:
    """The per-process default registry (created lazily)."""
    global _default_registry
    with _default_lock:
        if _default_registry is None:
            _default_registry = MetricsRegistry()
        return _default_registry


def set_registry(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Replace the process default (tests); returns the new active registry.

    Passing ``None`` resets to a fresh registry.
    """
    global _default_registry
    with _default_lock:
        _default_registry = registry if registry is not None else MetricsRegistry()
        return _default_registry
