"""Per-query tracing: a lightweight span API with no external deps.

A :class:`Trace` is one request's timeline — a handful of named
:class:`Span` s recorded against an injectable monotonic clock.  The serving
layer opens one trace per submitted query and closes spans as the future
moves through its lifecycle (``admission`` → ``pending`` → ``engine`` →
settle); because the spans are attached to the in-flight entry rather than
to thread-local context, a trace survives the thread hops of the
micro-batching pipeline (submit thread → flusher thread → whichever thread
settles) and even a worker crash: :meth:`Trace.finish` closes every still
open span with the final status, so crash paths yield *complete* traces with
an ``error`` status instead of dangling ones.

The :class:`Tracer` keeps a bounded in-memory ring of recent completed
traces (``tracer.recent(n)`` — what a debug endpoint serves) and optionally
appends every ``sample_every``-th completed trace to a JSONL file for
offline analysis.
"""

from __future__ import annotations

import itertools
import json
import threading
from collections import deque
from typing import IO, Any, Iterator

from repro.utils.timing import SYSTEM_CLOCK, Clock

__all__ = ["PipelineTrace", "Span", "Trace", "TraceLike", "Tracer"]

#: Span/trace terminal status values.
STATUS_OK = "ok"
STATUS_ERROR = "error"


class Span:
    """One named interval inside a trace.

    Cheap on purpose (``__slots__``, two floats): the serving hot path
    allocates several per query.  :meth:`end` is first-wins idempotent so a
    crash-path :meth:`Trace.finish` racing a normal ``end`` cannot reopen or
    reclose a span.
    """

    __slots__ = ("name", "parent", "started", "ended", "status", "detail")

    def __init__(self, name: str, started: float, parent: "Span | None") -> None:
        self.name = name
        self.parent = parent
        self.started = started
        #: Monotonic end time; None while the span is open.
        self.ended: float | None = None
        #: ``"ok"`` / ``"error"``; None while the span is open.
        self.status: str | None = None
        #: Optional error/context note set at end time.
        self.detail: str | None = None

    @property
    def open(self) -> bool:
        return self.ended is None

    @property
    def duration(self) -> float:
        """Seconds from start to end (0.0 while still open)."""
        return 0.0 if self.ended is None else self.ended - self.started

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "parent": self.parent.name if self.parent is not None else None,
            "started": self.started,
            "ended": self.ended,
            "status": self.status,
            "detail": self.detail,
        }

    def __repr__(self) -> str:
        state = f"{self.duration * 1000.0:.3f}ms" if not self.open else "open"
        return f"Span({self.name!r}, {state}, status={self.status!r})"


class Trace:
    """One request's span tree, rooted at the span named after the trace.

    Not a general-purpose distributed trace — one process, one request,
    a few spans — which is exactly why it can be allocation-cheap enough to
    run on every query.
    """

    __slots__ = ("name", "trace_id", "root", "spans", "attrs", "_now", "_tracer")

    def __init__(
        self,
        name: str,
        trace_id: int,
        clock: Clock,
        tracer: "Tracer | None",
        attrs: dict[str, Any] | None = None,
        at: float | None = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        # Bound once: the hot path reads the clock several times per query.
        self._now = clock.monotonic
        self._tracer = tracer
        #: Taken by reference (the tracer hands over a fresh kwargs dict).
        self.attrs: dict[str, Any] = attrs if attrs is not None else {}
        self.root = Span(name, clock.monotonic() if at is None else at, None)
        #: Every span of the trace, in start order (the root first).
        self.spans: list[Span] = [self.root]

    # -- span lifecycle ------------------------------------------------
    def span(
        self, name: str, parent: Span | None = None, at: float | None = None
    ) -> Span:
        """Start (and return) a child span; defaults to a child of the root.

        ``at`` sets an explicit start timestamp: adjacent boundaries (the end
        of one span, the start of the next) can share a single clock read,
        which is what keeps per-query tracing cheap enough for the hot path.
        """
        span = Span(name, self._now() if at is None else at, parent or self.root)
        self.spans.append(span)
        return span

    def end(
        self,
        span: Span,
        status: str = STATUS_OK,
        detail: str | None = None,
        at: float | None = None,
    ) -> None:
        """Close ``span`` (first-wins; closing a closed span is a no-op)."""
        if span.ended is None:
            span.ended = self._now() if at is None else at
            span.status = status
            span.detail = detail

    def finish(self, status: str = STATUS_OK, detail: str | None = None) -> None:
        """Close every open span (the root included) and record the trace.

        Idempotent: only the first call records into the tracer's ring —
        exactly one completion per trace, whichever thread settles first
        (normal answer, deadline expiry, or a worker-crash abort).
        """
        if self.root.ended is not None:
            return
        now = self._now()
        for span in self.spans:
            if span.ended is None:
                span.ended = now
                span.status = status
                span.detail = detail
        if self._tracer is not None:
            self._tracer._record(self)

    # -- introspection -------------------------------------------------
    @property
    def complete(self) -> bool:
        """True when every span (root included) has been closed."""
        return all(span.ended is not None for span in self.spans)

    @property
    def status(self) -> str | None:
        return self.root.status

    @property
    def duration(self) -> float:
        return self.root.duration

    def find(self, name: str) -> Span | None:
        """The first span named ``name``, or None."""
        for span in self.spans:
            if span.name == name:
                return span
        return None

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "attrs": self.attrs,
            "status": self.status,
            "duration_ms": self.duration * 1000.0,
            "spans": [span.to_dict() for span in self.spans],
        }

    def __repr__(self) -> str:
        return (
            f"Trace(#{self.trace_id} {self.name!r}, spans={len(self.spans)}, "
            f"status={self.status!r})"
        )


class PipelineTrace:
    """The serving pipeline's fixed-shape trace, optimized for the hot path.

    A batched query always moves through the same four stages —
    ``query`` (root) → ``admission`` → ``pending`` → ``engine`` — so instead
    of allocating a :class:`Span` per stage up front, this trace records the
    stage boundaries as plain floats (one attribute write each) and
    materializes the span tree lazily, only when somebody actually *reads*
    it (``service.recent_traces()``, the sampled JSONL log, a test).  That
    keeps full per-query tracing cheap enough to leave on in production.

    Stage timestamps double as presence markers: a cache hit never sets
    ``_enqueued`` (no admission/pending/engine spans), a shed query has an
    admission span only, a deadline-expired query stops at ``pending``, and
    a whole-batch crash leaves ``_engine_ended`` unset so :meth:`finish`
    closes the engine span with the final error status — the same
    crash-completeness contract as :class:`Trace`.
    """

    __slots__ = (
        "name",
        "trace_id",
        "service",
        "source",
        "target",
        "_attrs",
        "_tracer",
        "_started",
        "_enqueued",
        "_flushed",
        "_engine_ended",
        "_engine_detail",
        "_ended",
        "_status",
        "_detail",
        "_spans",
    )

    # Slots left *unset* until their stage happens (``__init__`` writes the
    # minimum); readers go through ``getattr(..., None)``.  Declared here so
    # type checkers still see them.
    _attrs: dict[str, Any] | None
    _enqueued: float | None
    _flushed: float | None
    _engine_ended: float | None
    _engine_detail: str | None
    _status: str | None
    _detail: str | None
    _spans: list[Span] | None

    def __init__(
        self,
        name: str,
        tracer: "Tracer",
        started: float,
        service: str,
        source: int,
        target: int,
    ) -> None:
        self.name = name
        # Allocating the id here (rather than in a ``Tracer.pipeline``
        # wrapper) lets the serving layer call this class directly — one
        # Python frame per query instead of two.
        self.trace_id = next(tracer._ids)
        tracer._last_started = self.trace_id
        #: Query identity, held as plain slots: the attrs *dict* is built
        #: lazily on first read so the hot path never allocates one.
        self.service = service
        self.source = source
        self.target = target
        self._tracer = tracer
        self._started = started
        self._ended: float | None = None

    @property
    def attrs(self) -> dict[str, Any]:
        """Trace attributes (query identity plus ad-hoc keys), built lazily."""
        attrs: dict[str, Any] | None = getattr(self, "_attrs", None)
        if attrs is None:
            attrs = self._attrs = {
                "service": self.service,
                "source": self.source,
                "target": self.target,
            }
        return attrs

    # -- stage boundaries (the hot path: one attribute write each) ------
    def enqueued(self, at: float) -> None:
        """Admission passed; the query joined the pending queue at ``at``."""
        self._enqueued = at

    def flushed(self, at: float) -> None:
        """The batch picked the query up at ``at``; the engine call begins."""
        self._flushed = at

    def engine_done(self, at: float, detail: str | None = None) -> None:
        """The engine answered (or failed, when ``detail`` names the error)."""
        self._engine_ended = at
        self._engine_detail = detail

    def finish(self, status: str = STATUS_OK, detail: str | None = None) -> None:
        """Settle the trace (first-wins) and record it with the tracer.

        Inlines :meth:`Tracer._record` (one frame per query saved); the
        sampled-JSONL branch stays a call because it is the rare path.
        """
        if self._ended is not None:
            return
        tracer = self._tracer
        self._ended = tracer._now()
        self._status = status
        self._detail = detail
        completed = next(tracer._completions)
        tracer._last_completed = completed
        tracer._ring.append(self)  # deque appends are atomic
        if (
            tracer.jsonl_path is not None
            and tracer.sample_every > 0
            and completed % tracer.sample_every == 0
        ):
            tracer._write_sample(self)

    # -- lazy span materialization -------------------------------------
    def _build_spans(self) -> list[Span]:
        ended = self._ended
        status: str | None = getattr(self, "_status", None)
        detail: str | None = getattr(self, "_detail", None)
        root = Span(self.name, self._started, None)
        root.ended, root.status, root.detail = ended, status, detail
        spans = [root]
        # ``cache_hit`` can only appear via an attrs mutation, so an unbuilt
        # attrs dict means the query went through the batching pipeline.
        attrs: dict[str, Any] | None = getattr(self, "_attrs", None)
        if attrs is not None and attrs.get("cache_hit"):
            return spans  # answered from cache: no admission/pending/engine
        admission = Span("admission", self._started, root)
        spans.append(admission)
        enqueued: float | None = getattr(self, "_enqueued", None)
        if enqueued is None:  # shed / closed at admission
            admission.ended, admission.status, admission.detail = ended, status, detail
            return spans
        admission.ended, admission.status = enqueued, STATUS_OK
        pending = Span("pending", enqueued, root)
        spans.append(pending)
        flushed: float | None = getattr(self, "_flushed", None)
        if flushed is None:  # expired (or still waiting) in the queue
            pending.ended, pending.status, pending.detail = ended, status, detail
            return spans
        pending.ended, pending.status = flushed, STATUS_OK
        engine = Span("engine", flushed, root)
        spans.append(engine)
        engine_ended: float | None = getattr(self, "_engine_ended", None)
        if engine_ended is not None:
            engine_detail: str | None = getattr(self, "_engine_detail", None)
            engine.ended = engine_ended
            engine.detail = engine_detail
            engine.status = STATUS_OK if engine_detail is None else STATUS_ERROR
        else:  # crashed mid-call (or settled first): close with final status
            engine.ended, engine.status, engine.detail = ended, status, detail
        return spans

    @property
    def spans(self) -> list[Span]:
        """The materialized span tree (root first), built on first read."""
        spans: list[Span] | None = getattr(self, "_spans", None)
        if spans is None:
            spans = self._build_spans()
            if self._ended is not None:
                self._spans = spans  # settled: the tree is final, cache it
        return spans

    @property
    def root(self) -> Span:
        return self.spans[0]

    # -- introspection (same surface as Trace) -------------------------
    @property
    def complete(self) -> bool:
        return self._ended is not None

    @property
    def status(self) -> str | None:
        status: str | None = getattr(self, "_status", None)
        return status

    @property
    def duration(self) -> float:
        return 0.0 if self._ended is None else self._ended - self._started

    def find(self, name: str) -> Span | None:
        for span in self.spans:
            if span.name == name:
                return span
        return None

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "attrs": self.attrs,
            "status": self.status,
            "duration_ms": self.duration * 1000.0,
            "spans": [span.to_dict() for span in self.spans],
        }

    def __repr__(self) -> str:
        return (
            f"PipelineTrace(#{self.trace_id} {self.name!r}, "
            f"status={self.status!r})"
        )


#: What the tracer's ring holds: generic traces and pipeline traces share
#: the whole read surface (``spans`` / ``find`` / ``status`` / ``to_dict``).
TraceLike = Trace | PipelineTrace


class Tracer:
    """Creates traces and keeps a bounded ring of recently completed ones.

    Parameters
    ----------
    clock:
        Monotonic time source shared with whatever the tracer instruments.
    ring_size:
        How many completed traces :meth:`recent` can look back over.
    sample_every:
        Write every Nth *completed* trace to ``jsonl_path`` (1 = all,
        0 = never).  Sampling applies to the log only; the in-memory ring
        always receives every completed trace handed to the tracer.
    jsonl_path:
        Append-mode JSONL sink for sampled traces (one JSON object per
        line); None disables the file sink.
    """

    def __init__(
        self,
        *,
        clock: Clock = SYSTEM_CLOCK,
        ring_size: int = 512,
        sample_every: int = 16,
        jsonl_path: "str | None" = None,
    ) -> None:
        if ring_size < 1:
            raise ValueError("ring_size must be >= 1")
        if sample_every < 0:
            raise ValueError("sample_every must be >= 0 (0 disables the log)")
        self.clock = clock
        self.sample_every = sample_every
        self.jsonl_path = jsonl_path
        self._now = clock.monotonic  # bound once, shared by pipeline traces
        # Lock-free hot path: ``itertools.count`` is atomic under the GIL, so
        # trace ids double as the started/completed totals and the only lock
        # guards the (rare) sampled JSONL write.
        self._ids = itertools.count(1)
        self._completions = itertools.count(1)
        self._last_started = 0
        self._last_completed = 0
        self._lock = threading.Lock()
        self._ring: deque[TraceLike] = deque(maxlen=ring_size)
        self._file: IO[str] | None = None

    # -- creation ------------------------------------------------------
    def trace(self, name: str, at: float | None = None, **attrs: Any) -> Trace:
        """Open a new trace; its root span starts now (or at ``at``).

        ``at`` is reserved for an explicit root-start timestamp and cannot be
        used as an attribute name.
        """
        trace_id = next(self._ids)
        self._last_started = trace_id
        return Trace(name, trace_id, self.clock, self, attrs, at=at)

    def pipeline(
        self, name: str, at: float, service: str, source: int, target: int
    ) -> PipelineTrace:
        """Open a fixed-shape serving-pipeline trace (see :class:`PipelineTrace`).

        Deliberately takes the query identity as positional-friendly named
        parameters rather than ``**attrs``: skipping the kwargs-dict
        allocation is part of what keeps always-on tracing under the
        overhead budget.  (The serving hot path goes one step further and
        constructs :class:`PipelineTrace` directly.)
        """
        return PipelineTrace(name, self, at, service, source, target)

    # -- completion (called by Trace/PipelineTrace.finish) -------------
    def _record(self, trace: TraceLike) -> None:
        completed = next(self._completions)
        self._last_completed = completed
        self._ring.append(trace)  # deque appends are atomic
        if (
            self.jsonl_path is not None
            and self.sample_every > 0
            and completed % self.sample_every == 0
        ):
            self._write_sample(trace)

    def _write_sample(self, trace: TraceLike) -> None:
        path = self.jsonl_path
        assert path is not None
        with self._lock:
            if self._file is None:
                self._file = open(path, "a", encoding="utf-8")
            self._file.write(json.dumps(trace.to_dict()) + "\n")
            self._file.flush()

    # -- introspection -------------------------------------------------
    def recent(self, n: int | None = None) -> list[TraceLike]:
        """The most recent completed traces, newest last (all by default)."""
        while True:
            try:
                traces = list(self._ring)
                break
            except RuntimeError:  # pragma: no cover - a racing append mutated
                continue  # the deque mid-copy; just retry
        return traces if n is None else traces[-n:]

    @property
    def started(self) -> int:
        return self._last_started

    @property
    def completed(self) -> int:
        return self._last_completed

    def close(self) -> None:
        """Close the JSONL sink (idempotent)."""
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    def __iter__(self) -> Iterator[TraceLike]:
        return iter(self.recent())

    def __repr__(self) -> str:
        return (
            f"Tracer(completed={self.completed}, ring={len(self.recent())}, "
            f"sample_every={self.sample_every})"
        )
