"""Structured event log: typed operational events through one sink.

Before this module, the control plane's state changes were silent — a
supervisor restart, a hot swap, a shed query or an injected fault left no
record beyond a mutated counter.  :class:`EventLog` gives them one shared
sink: every emitter produces a typed :class:`Event` (a *kind* from the
``EVENT_*`` vocabulary, a *subject* such as the deployment name, a clock
timestamp and free-form fields), the log keeps a bounded in-memory ring for
introspection ("what did the supervisor do at 14:03?"), optionally appends
JSONL for offline analysis, and mirrors per-kind totals into the metrics
registry so event rates show up on ``/metrics`` too.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any, Mapping

from repro.obs.metrics import MetricsRegistry
from repro.utils.timing import SYSTEM_CLOCK, Clock

__all__ = [
    "Event",
    "EventLog",
    "read_events",
    "EVENT_DEPLOY",
    "EVENT_SWAP",
    "EVENT_UNDEPLOY",
    "EVENT_UPDATE",
    "EVENT_TRAFFIC_INGEST",
    "EVENT_TRAFFIC_ACTION",
    "EVENT_RECOVERY",
    "EVENT_HEALTH",
    "EVENT_SHED",
    "EVENT_DEADLINE",
    "EVENT_FAULT",
    "EVENT_ABORT",
    "EVENT_REPLICA_SPAWN",
    "EVENT_REPLICA_RESPAWN",
    "EVENT_RATE_LIMITED",
    "EVENT_GATEWAY_SHED",
]

# The event vocabulary.  Emitters pass these constants; consumers filter on
# them.  New kinds are fine — the log is schemaless past (kind, subject, at).
EVENT_DEPLOY = "deploy"
#: A zero-downtime engine swap completed (fields: old_spec, new_spec, ...).
EVENT_SWAP = "swap"
EVENT_UNDEPLOY = "undeploy"
#: A live engine was patched in place (fields: changed_edges,
#: dirty_vertices, seconds).
EVENT_UPDATE = "update"
#: The traffic controller accepted edge-weight updates into its pending
#: batch (fields: updates, pending_edges).
EVENT_TRAFFIC_INGEST = "traffic.ingest"
#: The traffic controller executed a policy action (fields: action, reason,
#: raw_updates, coalesced_edges, dirty_estimate, seconds, staleness_p50).
EVENT_TRAFFIC_ACTION = "traffic.action"
#: A supervision recovery ran (fields: action=restart/rehydrate/fallback/park,
#: cause, failed_futures).
EVENT_RECOVERY = "supervision.recovery"
#: A deployment's health state changed (fields: state, cause).
EVENT_HEALTH = "supervision.health"
#: A query was rejected at admission (fields: policy).
EVENT_SHED = "shed"
#: A future settled by deadline expiry (fields: deadline_ms).
EVENT_DEADLINE = "deadline"
#: A fault-injection wrapper fired (fields: fault, batch).
EVENT_FAULT = "fault.injected"
#: A service was aborted, failing its in-flight futures (fields: failed).
EVENT_ABORT = "abort"
#: A replica worker process started (fields: replica, pid).
EVENT_REPLICA_SPAWN = "replica.spawn"
#: A dead replica worker was recovered (fields: replica, action=respawn/lost,
#: cause, failed_requests).
EVENT_REPLICA_RESPAWN = "replica.respawn"
#: The gateway rate-limited a client's HTTP request (fields: client, route,
#: retry_after_ms).
EVENT_RATE_LIMITED = "gateway.rate_limited"
#: The gateway shed an HTTP request at its own admission bound (fields:
#: route, in_flight, max_in_flight, retry_after_ms).
EVENT_GATEWAY_SHED = "gateway.shed"


@dataclass(frozen=True)
class Event:
    """One structured operational event."""

    #: What happened — one of the ``EVENT_*`` kinds (or any dotted string).
    kind: str
    #: What it happened to (deployment or service name; may be empty).
    subject: str
    #: Monotonic clock timestamp of the emit.
    at: float
    #: Free-form structured payload.
    fields: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "subject": self.subject,
            "at": self.at,
            "fields": dict(self.fields),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Event":
        return cls(
            kind=str(payload["kind"]),
            subject=str(payload.get("subject", "")),
            at=float(payload.get("at", 0.0)),
            fields=dict(payload.get("fields", {})),
        )


class EventLog:
    """Bounded, thread-safe event sink with optional JSONL persistence.

    Parameters
    ----------
    capacity:
        In-memory ring size; the oldest events fall off first.
    clock:
        Timestamp source (inject a fake clock for deterministic tests).
    jsonl_path:
        Append every event as one JSON line to this file; None keeps the
        log purely in-memory.
    registry:
        When given, per-kind totals are mirrored into the counter
        ``repro_events_total{kind=...}`` so event rates are scrapeable.
    """

    def __init__(
        self,
        *,
        capacity: int = 4096,
        clock: Clock = SYSTEM_CLOCK,
        jsonl_path: "str | Path | None" = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.clock = clock
        self.jsonl_path = None if jsonl_path is None else Path(jsonl_path)
        self._lock = threading.Lock()
        self._ring: deque[Event] = deque(maxlen=capacity)
        self._total = 0
        self._file: IO[str] | None = None
        self._counter = (
            registry.counter(
                "repro_events_total", "Structured events emitted, by kind.", ("kind",)
            )
            if registry is not None
            else None
        )

    def emit(self, kind: str, subject: str = "", **fields: Any) -> Event:
        """Record one event; returns it (timestamped with the log's clock)."""
        event = Event(kind=kind, subject=subject, at=self.clock.monotonic(), fields=fields)
        path = self.jsonl_path
        with self._lock:
            self._ring.append(event)
            self._total += 1
            if path is not None:
                if self._file is None:
                    self._file = open(path, "a", encoding="utf-8")
                self._file.write(json.dumps(event.to_dict()) + "\n")
                self._file.flush()
        if self._counter is not None:
            self._counter.inc(1.0, kind=kind)
        return event

    # -- introspection -------------------------------------------------
    def events(
        self, kind: str | None = None, subject: str | None = None
    ) -> list[Event]:
        """Events still in the ring, oldest first, optionally filtered."""
        with self._lock:
            events = list(self._ring)
        if kind is not None:
            events = [e for e in events if e.kind == kind]
        if subject is not None:
            events = [e for e in events if e.subject == subject]
        return events

    @property
    def total(self) -> int:
        """Events emitted over the log's lifetime (ring overflow included)."""
        with self._lock:
            return self._total

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def close(self) -> None:
        """Close the JSONL sink (idempotent)."""
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    def __repr__(self) -> str:
        return f"EventLog(events={len(self)}, total={self.total})"


def read_events(path: "str | Path") -> list[Event]:
    """Load a JSONL event file back into :class:`Event` objects."""
    events: list[Event] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(Event.from_dict(json.loads(line)))
    return events
