"""Time-dependent A* search (non-index baseline family of Sec. 6).

Two admissible heuristics are provided:

* :class:`MinCostHeuristic` — one backward Dijkstra on the *free-flow* graph
  (every edge weighted by the minimum of its profile) per target.  This is the
  strongest admissible lower bound that ignores time of day; it is computed
  lazily and cached per target, which matches how the related work deploys
  goal-directed search on time-dependent networks.
* :class:`LandmarkHeuristic` — ALT-style lower bounds from a small set of
  landmarks using the triangle inequality on free-flow distances.  Cheaper per
  target (no per-target Dijkstra) but weaker.

Both heuristics are valid because the free-flow cost never exceeds the
time-dependent cost, so A* with either remains exact on FIFO networks.
"""

from __future__ import annotations

import heapq
import itertools
import math

import numpy as np

from repro.exceptions import DisconnectedQueryError, VertexNotFoundError
from repro.graph.td_graph import TDGraph
from repro.baselines.td_dijkstra import DijkstraResult, _unwind_path

__all__ = ["MinCostHeuristic", "LandmarkHeuristic", "TDAStar", "astar_earliest_arrival"]

_INF = math.inf


def _free_flow_reverse_distances(graph: TDGraph, target: int) -> dict[int, float]:
    """Static Dijkstra on reversed free-flow weights: lower bound to ``target``."""
    dist = {target: 0.0}
    counter = itertools.count()
    heap = [(0.0, next(counter), target)]
    done: set[int] = set()
    while heap:
        d, _, vertex = heapq.heappop(heap)
        if vertex in done:
            continue
        done.add(vertex)
        for predecessor, weight in graph.in_items(vertex):
            candidate = d + weight.min_cost
            if candidate < dist.get(predecessor, _INF):
                dist[predecessor] = candidate
                heapq.heappush(heap, (candidate, next(counter), predecessor))
    return dist


class MinCostHeuristic:
    """Exact free-flow lower bounds to a target (cached per target)."""

    def __init__(self, graph: TDGraph) -> None:
        self.graph = graph
        self._cache: dict[int, dict[int, float]] = {}

    def prepare(self, target: int) -> None:
        """Compute (and cache) the lower-bound table for ``target``."""
        if target not in self._cache:
            self._cache[target] = _free_flow_reverse_distances(self.graph, target)

    def estimate(self, vertex: int, target: int) -> float:
        """Admissible lower bound on the travel cost from ``vertex`` to ``target``."""
        self.prepare(target)
        return self._cache[target].get(vertex, _INF)


class LandmarkHeuristic:
    """ALT landmarks on the free-flow graph.

    ``num_landmarks`` vertices are chosen with a farthest-point strategy; for
    each landmark ``L`` both distance tables ``d(L, ·)`` and ``d(·, L)`` are
    stored, and the estimate is the best triangle-inequality bound
    ``max_L max(d(v, L) - d(t, L), d(L, t) - d(L, v))`` (clamped at zero).
    """

    def __init__(self, graph: TDGraph, num_landmarks: int = 8, seed: int = 0) -> None:
        self.graph = graph
        self.num_landmarks = max(1, int(num_landmarks))
        self._rng = np.random.default_rng(seed)
        self.landmarks: list[int] = []
        self._to_landmark: dict[int, dict[int, float]] = {}
        self._from_landmark: dict[int, dict[int, float]] = {}
        self._select_landmarks()

    def _forward_distances(self, source: int) -> dict[int, float]:
        dist = {source: 0.0}
        counter = itertools.count()
        heap = [(0.0, next(counter), source)]
        done: set[int] = set()
        while heap:
            d, _, vertex = heapq.heappop(heap)
            if vertex in done:
                continue
            done.add(vertex)
            for successor, weight in self.graph.out_items(vertex):
                candidate = d + weight.min_cost
                if candidate < dist.get(successor, _INF):
                    dist[successor] = candidate
                    heapq.heappush(heap, (candidate, next(counter), successor))
        return dist

    def _select_landmarks(self) -> None:
        vertices = list(self.graph.vertices())
        if not vertices:
            return
        first = int(self._rng.choice(vertices))
        self.landmarks = [first]
        self._from_landmark[first] = self._forward_distances(first)
        self._to_landmark[first] = _free_flow_reverse_distances(self.graph, first)
        while len(self.landmarks) < min(self.num_landmarks, len(vertices)):
            # Farthest-point selection w.r.t. the already chosen landmarks.
            best_vertex, best_score = None, -1.0
            reference = self._from_landmark[self.landmarks[-1]]
            for vertex in vertices:
                if vertex in self.landmarks:
                    continue
                score = reference.get(vertex, 0.0)
                if score > best_score:
                    best_vertex, best_score = vertex, score
            if best_vertex is None:
                break
            self.landmarks.append(best_vertex)
            self._from_landmark[best_vertex] = self._forward_distances(best_vertex)
            self._to_landmark[best_vertex] = _free_flow_reverse_distances(
                self.graph, best_vertex
            )

    def prepare(self, target: int) -> None:
        """Landmarks are target-independent; nothing to do."""

    def estimate(self, vertex: int, target: int) -> float:
        """Triangle-inequality lower bound from ``vertex`` to ``target``."""
        best = 0.0
        for landmark in self.landmarks:
            to_l = self._to_landmark[landmark]
            from_l = self._from_landmark[landmark]
            forward = to_l.get(vertex, _INF) - to_l.get(target, _INF)
            backward = from_l.get(target, _INF) - from_l.get(vertex, _INF)
            for bound in (forward, backward):
                if math.isfinite(bound) and bound > best:
                    best = bound
        return best


def astar_earliest_arrival(
    graph: TDGraph,
    source: int,
    target: int,
    departure: float,
    heuristic,
) -> DijkstraResult:
    """Exact earliest-arrival query with goal direction.

    ``heuristic`` must provide ``prepare(target)`` and ``estimate(vertex,
    target)`` returning an admissible lower bound on the remaining travel cost.
    """
    if not graph.has_vertex(source):
        raise VertexNotFoundError(source)
    if not graph.has_vertex(target):
        raise VertexNotFoundError(target)
    heuristic.prepare(target)

    arrivals: dict[int, float] = {source: departure}
    parents: dict[int, int] = {}
    done: set[int] = set()
    counter = itertools.count()
    heap = [(heuristic.estimate(source, target), next(counter), source)]
    settled = 0
    while heap:
        _, _, vertex = heapq.heappop(heap)
        if vertex in done:
            continue
        done.add(vertex)
        settled += 1
        if vertex == target:
            break
        arrival = arrivals[vertex]
        for successor, weight in graph.out_items(vertex):
            if successor in done:
                continue
            candidate = arrival + float(weight.evaluate(arrival))
            if candidate < arrivals.get(successor, _INF):
                arrivals[successor] = candidate
                parents[successor] = vertex
                priority = (candidate - departure) + heuristic.estimate(successor, target)
                heapq.heappush(heap, (priority, next(counter), successor))
    arrival = arrivals.get(target, _INF)
    if not math.isfinite(arrival):
        raise DisconnectedQueryError(source, target)
    return DijkstraResult(
        source=source,
        target=target,
        departure=departure,
        cost=arrival - departure,
        path=_unwind_path(parents, source, target),
        settled=settled,
    )


class TDAStar:
    """Facade exposing the common index-style API (``build``/``query``)."""

    strategy = "astar"

    def __init__(self, graph: TDGraph, heuristic=None) -> None:
        self.graph = graph
        self.heuristic = heuristic if heuristic is not None else MinCostHeuristic(graph)

    @classmethod
    def build(
        cls,
        graph: TDGraph,
        *,
        heuristic: str = "min-cost",
        num_landmarks: int = 8,
        seed: int = 0,
        **_ignored,
    ) -> "TDAStar":
        """Create the search facade with the requested heuristic."""
        if heuristic == "landmarks":
            return cls(graph, LandmarkHeuristic(graph, num_landmarks=num_landmarks, seed=seed))
        return cls(graph, MinCostHeuristic(graph))

    def query(self, source: int, target: int, departure: float) -> DijkstraResult:
        """Scalar travel-cost query (exact).

        Unknown keyword arguments are rejected (a typo like ``departure_time=``
        must fail loudly, not silently answer a different question).
        """
        return astar_earliest_arrival(self.graph, source, target, departure, self.heuristic)

    def memory_breakdown(self):
        """A* stores only the (lazy) heuristic tables; report them as labels."""
        from repro.utils.memory import MemoryBreakdown

        cached_entries = 0
        if isinstance(self.heuristic, MinCostHeuristic):
            cached_entries = sum(len(t) for t in self.heuristic._cache.values())
        elif isinstance(self.heuristic, LandmarkHeuristic):
            cached_entries = sum(
                len(t) for t in self.heuristic._to_landmark.values()
            ) + sum(len(t) for t in self.heuristic._from_landmark.values())
        return MemoryBreakdown(label_points=cached_entries, label_functions=0)
