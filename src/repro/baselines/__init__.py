"""Comparison methods the paper evaluates against, implemented from scratch.

* :mod:`repro.baselines.td_dijkstra` — index-free time-dependent Dijkstra
  (scalar and profile flavours); also the ground truth of the test-suite.
* :mod:`repro.baselines.td_astar` — goal-directed A* with free-flow or
  landmark lower bounds.
* :mod:`repro.baselines.tdg_tree` — TD-G-tree, the hierarchical-partition
  index of Wang et al. (VLDB'19).
* :mod:`repro.baselines.td_h2h` — TD-H2H, the tree decomposition with all
  shortcuts materialised.
"""

from repro.baselines.td_astar import (
    LandmarkHeuristic,
    MinCostHeuristic,
    TDAStar,
    astar_earliest_arrival,
)
from repro.baselines.td_dijkstra import (
    DijkstraResult,
    TDDijkstra,
    earliest_arrival,
    one_to_all,
    profile_search,
)
from repro.baselines.td_h2h import TDH2H, build_td_h2h
from repro.baselines.tdg_tree import GTreeNode, GTreeResult, TDGTree

__all__ = [
    "TDDijkstra",
    "DijkstraResult",
    "earliest_arrival",
    "one_to_all",
    "profile_search",
    "TDAStar",
    "MinCostHeuristic",
    "LandmarkHeuristic",
    "astar_earliest_arrival",
    "TDGTree",
    "GTreeNode",
    "GTreeResult",
    "TDH2H",
    "build_td_h2h",
]
