"""Time-dependent Dijkstra — the index-free reference algorithms.

Two searches are provided:

* :func:`earliest_arrival` — the classic time-dependent Dijkstra for a single
  departure time.  On FIFO networks it is exact, and it is the ground truth
  every index in this library is tested against.
* :func:`profile_search` — a label-correcting search whose labels are whole
  travel-cost functions; it computes the exact shortest travel-cost *function*
  between two vertices (the paper's "cost function query") without an index.

Both run directly on the :class:`~repro.graph.TDGraph`; no preprocessing.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass

from repro.exceptions import DisconnectedQueryError, VertexNotFoundError
from repro.functions.compound import compound, minimum
from repro.functions.piecewise import PiecewiseLinearFunction
from repro.functions.simplify import simplify
from repro.graph.td_graph import TDGraph

__all__ = [
    "DijkstraResult",
    "earliest_arrival",
    "one_to_all",
    "profile_search",
    "TDDijkstra",
]

_INF = math.inf


@dataclass
class DijkstraResult:
    """Result of a scalar time-dependent Dijkstra query."""

    source: int
    target: int
    departure: float
    cost: float
    path: list[int]
    settled: int

    @property
    def arrival(self) -> float:
        return self.departure + self.cost


def earliest_arrival(
    graph: TDGraph, source: int, target: int, departure: float
) -> DijkstraResult:
    """Exact earliest-arrival query by time-dependent Dijkstra."""
    arrivals, parents, settled = _scalar_search(graph, source, departure, target)
    arrival = arrivals.get(target, _INF)
    if not math.isfinite(arrival):
        raise DisconnectedQueryError(source, target)
    return DijkstraResult(
        source=source,
        target=target,
        departure=departure,
        cost=arrival - departure,
        path=_unwind_path(parents, source, target),
        settled=settled,
    )


def one_to_all(graph: TDGraph, source: int, departure: float) -> dict[int, float]:
    """Earliest arrival time at every reachable vertex."""
    arrivals, _, _ = _scalar_search(graph, source, departure, None)
    return arrivals


def _scalar_search(
    graph: TDGraph, source: int, departure: float, target: int | None
) -> tuple[dict[int, float], dict[int, int], int]:
    if not graph.has_vertex(source):
        raise VertexNotFoundError(source)
    if target is not None and not graph.has_vertex(target):
        raise VertexNotFoundError(target)
    arrivals: dict[int, float] = {source: departure}
    parents: dict[int, int] = {}
    done: set[int] = set()
    counter = itertools.count()
    heap: list[tuple[float, int, int]] = [(departure, next(counter), source)]
    settled = 0
    while heap:
        arrival, _, vertex = heapq.heappop(heap)
        if vertex in done:
            continue
        done.add(vertex)
        settled += 1
        if vertex == target:
            break
        for successor, weight in graph.out_items(vertex):
            if successor in done:
                continue
            candidate = arrival + float(weight.evaluate(arrival))
            if candidate < arrivals.get(successor, _INF):
                arrivals[successor] = candidate
                parents[successor] = vertex
                heapq.heappush(heap, (candidate, next(counter), successor))
    return arrivals, parents, settled


def _unwind_path(parents: dict[int, int], source: int, target: int) -> list[int]:
    path = [target]
    cursor = target
    while cursor != source:
        cursor = parents[cursor]
        path.append(cursor)
    path.reverse()
    return path


def profile_search(
    graph: TDGraph,
    source: int,
    target: int | None = None,
    *,
    max_points: int | None = None,
) -> dict[int, PiecewiseLinearFunction]:
    """Label-correcting profile search from ``source``.

    Returns a mapping from every reachable vertex to the exact shortest
    travel-cost function from ``source``.  When ``target`` is given the search
    still computes all labels (profile searches cannot stop early without
    bounds) but the caller typically only reads ``result[target]``.

    ``max_points`` optionally caps label sizes, trading exactness for speed —
    the cap is off by default because this function serves as the ground truth
    in the test-suite.
    """
    if not graph.has_vertex(source):
        raise VertexNotFoundError(source)
    if target is not None and not graph.has_vertex(target):
        raise VertexNotFoundError(target)

    labels: dict[int, PiecewiseLinearFunction] = {
        source: PiecewiseLinearFunction.zero()
    }
    counter = itertools.count()
    heap: list[tuple[float, int, int]] = [(0.0, next(counter), source)]
    in_queue: set[int] = {source}
    while heap:
        _, _, vertex = heapq.heappop(heap)
        in_queue.discard(vertex)
        base = labels[vertex]
        for successor, weight in graph.out_items(vertex):
            candidate = compound(base, weight) if not _is_zero(base) else weight
            if max_points is not None:
                candidate = simplify(candidate, max_points=max_points)
            existing = labels.get(successor)
            if existing is None:
                improved = candidate
            else:
                improved = minimum(existing, candidate)
                if max_points is not None:
                    improved = simplify(improved, max_points=max_points)
                if existing.allclose(improved, tolerance=1e-9):
                    continue
            labels[successor] = improved
            if successor not in in_queue:
                in_queue.add(successor)
                heapq.heappush(heap, (improved.min_cost, next(counter), successor))
    return labels


def _is_zero(func: PiecewiseLinearFunction) -> bool:
    return func.size == 1 and func.costs[0] == 0.0


class TDDijkstra:
    """Facade matching the index API so experiments can treat it uniformly."""

    strategy = "dijkstra"

    def __init__(self, graph: TDGraph) -> None:
        self.graph = graph

    @classmethod
    def build(cls, graph: TDGraph, **_ignored) -> "TDDijkstra":
        """No preprocessing: the "index" is the graph itself."""
        return cls(graph)

    def query(self, source: int, target: int, departure: float) -> DijkstraResult:
        """Scalar travel-cost query (exact).

        Unknown keyword arguments are rejected (a typo like ``departure_time=``
        must fail loudly, not silently answer a different question).
        """
        return earliest_arrival(self.graph, source, target, departure)

    def profile(self, source: int, target: int) -> PiecewiseLinearFunction:
        """Exact shortest travel-cost function from ``source`` to ``target``."""
        labels = profile_search(self.graph, source, target)
        if target not in labels:
            raise DisconnectedQueryError(source, target)
        return labels[target]

    def memory_breakdown(self):
        """An index-free method stores nothing beyond the graph."""
        from repro.utils.memory import MemoryBreakdown

        return MemoryBreakdown()
