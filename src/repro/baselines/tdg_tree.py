"""TD-G-tree — the state-of-the-art baseline the paper compares against.

TD-G-tree (Wang, Li, Tang; VLDB 2019) partitions the road network
hierarchically; every partition node keeps travel-cost-function matrices
between *borders* (vertices with an edge leaving the partition), and queries
assemble the answer bottom-up along the two leaf-to-LCA paths.

The implementation here follows that design:

* **Partitioning** — recursive balanced bisection on vertex coordinates
  (median split, axis alternating per level), falling back to a BFS-based
  bisection when coordinates are absent.  Leaves hold at most ``leaf_size``
  vertices.
* **Leaf matrices** — travel-cost functions between every vertex of the leaf
  and every border of the leaf (both directions), computed by profile searches
  restricted to the leaf subgraph.
* **Internal matrices** — travel-cost functions between all borders of the
  node's children, computed on the "border graph" (children matrices plus the
  original edges crossing between children).
* **Query assembly** — relax arrival times (or profiles) through the border
  sets of every node on the source-side path, across the LCA, and down the
  target-side path.

The known weakness the paper exploits — redundancy across levels and
assembly-induced detours for vertices that are close in the graph but far in
the partition hierarchy — is inherent to this design and is intentionally
reproduced rather than patched.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field

from repro.exceptions import (
    DisconnectedQueryError,
    GraphError,
    IndexBuildError,
    VertexNotFoundError,
)
from repro.functions.compound import compound, minimum, minimum_of
from repro.functions.piecewise import PiecewiseLinearFunction
from repro.functions.simplify import simplify
from repro.graph.td_graph import TDGraph
from repro.utils.memory import DEFAULT_MEMORY_MODEL, MemoryBreakdown, MemoryModel
from repro.utils.timing import Timer

__all__ = ["TDGTree", "GTreeNode", "GTreeResult"]

_INF = math.inf


@dataclass
class GTreeNode:
    """One partition node of the TD-G-tree."""

    node_id: int
    vertices: frozenset[int]
    parent: int | None = None
    children: list[int] = field(default_factory=list)
    borders: tuple[int, ...] = ()
    #: For leaves: functions vertex -> border and border -> vertex.
    vertex_to_border: dict[tuple[int, int], PiecewiseLinearFunction] = field(
        default_factory=dict, repr=False
    )
    border_to_vertex: dict[tuple[int, int], PiecewiseLinearFunction] = field(
        default_factory=dict, repr=False
    )
    #: For internal nodes: functions between all borders of the children.
    matrix: dict[tuple[int, int], PiecewiseLinearFunction] = field(
        default_factory=dict, repr=False
    )

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def matrix_point_count(self) -> int:
        """Interpolation points stored by this node (for the memory model)."""
        total = sum(f.size for f in self.matrix.values())
        total += sum(f.size for f in self.vertex_to_border.values())
        total += sum(f.size for f in self.border_to_vertex.values())
        return total

    def matrix_function_count(self) -> int:
        return (
            len(self.matrix) + len(self.vertex_to_border) + len(self.border_to_vertex)
        )


@dataclass
class GTreeResult:
    """Scalar query answer of the TD-G-tree (API-compatible with the index results)."""

    source: int
    target: int
    departure: float
    cost: float
    strategy: str = "tdg-tree"

    @property
    def arrival(self) -> float:
        return self.departure + self.cost


class TDGTree:
    """Hierarchical border-matrix index over a time-dependent road network."""

    strategy = "tdg-tree"

    def __init__(
        self,
        graph: TDGraph,
        nodes: dict[int, GTreeNode],
        root_id: int,
        leaf_of: dict[int, int],
        *,
        max_points: int | None,
        build_seconds: dict[str, float] | None = None,
    ) -> None:
        self.graph = graph
        self.nodes = nodes
        self.root_id = root_id
        self.leaf_of = leaf_of
        self.max_points = max_points
        self._build_seconds = dict(build_seconds or {})

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: TDGraph,
        *,
        leaf_size: int = 24,
        max_points: int | None = 16,
        **_ignored,
    ) -> "TDGTree":
        """Partition the graph and materialise all border matrices."""
        if graph.num_vertices == 0:
            raise GraphError("cannot build a TD-G-tree over an empty graph")
        timer = Timer()
        with timer.measure("partition"):
            nodes, root_id, leaf_of = _partition(graph, leaf_size)
        tree = cls(
            graph,
            nodes,
            root_id,
            leaf_of,
            max_points=max_points,
            build_seconds=None,
        )
        with timer.measure("borders"):
            tree._compute_borders()
        with timer.measure("leaf_matrices"):
            for node in tree.nodes.values():
                if node.is_leaf:
                    tree._build_leaf_matrices(node)
        with timer.measure("internal_matrices"):
            for node in tree._bottom_up_internal_nodes():
                tree._build_internal_matrix(node)
        tree._build_seconds = timer.as_dict()
        return tree

    def _compute_borders(self) -> None:
        for node in self.nodes.values():
            members = node.vertices
            borders = []
            for vertex in sorted(members):
                neighbourhood = self.graph.neighbors(vertex)
                if any(other not in members for other in neighbourhood):
                    borders.append(vertex)
            node.borders = tuple(borders)
        # The root has no outside, hence no borders; give it all children
        # borders so the cross-LCA step at the root has somewhere to meet.
        root = self.nodes[self.root_id]
        if not root.borders:
            union: list[int] = []
            for child_id in root.children:
                union.extend(self.nodes[child_id].borders)
            root.borders = tuple(sorted(set(union)))

    def _bottom_up_internal_nodes(self) -> list[GTreeNode]:
        depth: dict[int, int] = {self.root_id: 0}
        order = [self.root_id]
        for node_id in order:
            for child in self.nodes[node_id].children:
                depth[child] = depth[node_id] + 1
                order.append(child)
        internal = [self.nodes[i] for i in order if not self.nodes[i].is_leaf]
        internal.sort(key=lambda node: -depth[node.node_id])
        return internal

    def _cap(self, func: PiecewiseLinearFunction) -> PiecewiseLinearFunction:
        return simplify(func, max_points=self.max_points)

    def _build_leaf_matrices(self, node: GTreeNode) -> None:
        subgraph = self.graph.subgraph(node.vertices)
        for border in node.borders:
            forward = _profile_search_directed(subgraph, border, forward=True)
            backward = _profile_search_directed(subgraph, border, forward=False)
            for vertex in node.vertices:
                if vertex in forward:
                    node.border_to_vertex[(border, vertex)] = self._cap(forward[vertex])
                if vertex in backward:
                    node.vertex_to_border[(vertex, border)] = self._cap(backward[vertex])

    def _build_internal_matrix(self, node: GTreeNode) -> None:
        union_borders: list[int] = []
        for child_id in node.children:
            union_borders.extend(self.nodes[child_id].borders)
        union_borders = sorted(set(union_borders))
        border_graph = self._border_graph(node, union_borders)
        for border in union_borders:
            labels = _graph_dict_profile_search(border_graph, border)
            for other, func in labels.items():
                if other == border:
                    continue
                node.matrix[(border, other)] = self._cap(func)

    def _border_graph(
        self, node: GTreeNode, union_borders: list[int]
    ) -> dict[int, dict[int, PiecewiseLinearFunction]]:
        """Adjacency of the border graph used to assemble an internal matrix.

        Edges are (a) the children's own matrices (leaf: vertex/border tables;
        internal: border matrices) restricted to their borders, and (b) the
        original road segments crossing between different children.
        """
        adjacency: dict[int, dict[int, PiecewiseLinearFunction]] = {
            b: {} for b in union_borders
        }

        def add(a: int, b: int, func: PiecewiseLinearFunction) -> None:
            existing = adjacency[a].get(b)
            adjacency[a][b] = func if existing is None else minimum(existing, func)

        for child_id in node.children:
            child = self.nodes[child_id]
            if child.is_leaf:
                for border_a in child.borders:
                    for border_b in child.borders:
                        if border_a == border_b:
                            continue
                        func = child.border_to_vertex.get((border_a, border_b))
                        if func is not None:
                            add(border_a, border_b, func)
            else:
                for (border_a, border_b), func in child.matrix.items():
                    if border_a in adjacency and border_b in adjacency:
                        add(border_a, border_b, func)
        member_of: dict[int, int] = {}
        for child_id in node.children:
            for vertex in self.nodes[child_id].vertices:
                member_of[vertex] = child_id
        for vertex in node.vertices:
            for successor, weight in self.graph.out_items(vertex):
                if successor in node.vertices and member_of.get(vertex) != member_of.get(successor):
                    if vertex in adjacency and successor in adjacency:
                        add(vertex, successor, weight)
        return adjacency

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _path_to_root(self, node_id: int) -> list[int]:
        path = [node_id]
        while self.nodes[path[-1]].parent is not None:
            path.append(self.nodes[path[-1]].parent)
        return path

    def _lca(self, first_leaf: int, second_leaf: int) -> int:
        first_path = set(self._path_to_root(first_leaf))
        for node_id in self._path_to_root(second_leaf):
            if node_id in first_path:
                return node_id
        raise IndexBuildError("partition nodes do not share a root")  # pragma: no cover

    def query(self, source: int, target: int, departure: float) -> GTreeResult:
        """Scalar travel-cost query via bottom-up border assembly.

        Unknown keyword arguments are rejected (a typo like ``departure_time=``
        must fail loudly, not silently answer a different question).
        """
        self._require(source, target)
        if source == target:
            return GTreeResult(source, target, departure, 0.0)
        leaf_s = self.leaf_of[source]
        leaf_d = self.leaf_of[target]
        if leaf_s == leaf_d:
            cost = _local_scalar_query(self.graph, source, target, departure)
            return GTreeResult(source, target, departure, cost, strategy="tdg-tree-local")

        lca = self._lca(leaf_s, leaf_d)
        up_path = self._strict_path(leaf_s, lca)
        down_path = self._strict_path(leaf_d, lca)

        # Arrivals at the borders of the source leaf.
        leaf_node = self.nodes[leaf_s]
        arrivals: dict[int, float] = {}
        for border in leaf_node.borders:
            func = leaf_node.vertex_to_border.get((source, border))
            if func is None:
                if border == source:
                    arrivals[border] = departure
                continue
            arrivals[border] = departure + float(func.evaluate(departure))
        if source in leaf_node.borders:
            arrivals[source] = departure

        # Upward sweep: relax through the matrices of every strict ancestor
        # below the LCA (the LCA itself is only used for the cross step).
        for node_id in up_path[1:-1]:
            arrivals = self._relax_scalar(
                arrivals, self.nodes[node_id], self.nodes[node_id].borders
            )
        # Cross the LCA towards the borders of the target-side child.
        target_side = down_path[-2]
        arrivals = self._relax_scalar(
            arrivals, self.nodes[lca], self.nodes[target_side].borders
        )
        # Downward sweep.
        for node_id in reversed(down_path[1:-1]):
            child_id = down_path[down_path.index(node_id) - 1]
            arrivals = self._relax_scalar(
                arrivals, self.nodes[node_id], self.nodes[child_id].borders
            )

        # Finally from the borders of the target leaf to the target itself.
        leaf_node_d = self.nodes[leaf_d]
        best = _INF
        for border, arrival in arrivals.items():
            if border == target:
                best = min(best, arrival)
                continue
            func = leaf_node_d.border_to_vertex.get((border, target))
            if func is None:
                continue
            best = min(best, arrival + float(func.evaluate(arrival)))
        if not math.isfinite(best):
            # The assembly only sees paths that stay inside each partition; on
            # sparse planar networks a partition can be internally disconnected
            # and the assembly finds no route even though one exists in the
            # full graph.  Fall back to plain TD-Dijkstra in that case (the
            # original G-tree sidesteps this by partitioning on connectivity).
            cost = _local_scalar_query(self.graph, source, target, departure)
            return GTreeResult(source, target, departure, cost, strategy="tdg-tree-fallback")
        return GTreeResult(source, target, departure, best - departure)

    def _strict_path(self, leaf_id: int, lca: int) -> list[int]:
        """Nodes from ``leaf_id`` up to and including ``lca``."""
        path = []
        cursor = leaf_id
        while cursor != lca:
            path.append(cursor)
            parent = self.nodes[cursor].parent
            if parent is None:  # pragma: no cover - defensive
                raise IndexBuildError("LCA walk escaped the partition tree")
            cursor = parent
        path.append(lca)
        return path

    def _relax_scalar(
        self,
        arrivals: dict[int, float],
        through: GTreeNode,
        target_borders: tuple[int, ...],
    ) -> dict[int, float]:
        """One assembly step: earliest arrivals at ``target_borders`` through a node matrix."""
        result: dict[int, float] = {}
        for border in target_borders:
            best = arrivals.get(border, _INF)
            for from_border, arrival in arrivals.items():
                if from_border == border:
                    continue
                func = through.matrix.get((from_border, border))
                if func is None:
                    continue
                candidate = arrival + float(func.evaluate(arrival))
                if candidate < best:
                    best = candidate
            if math.isfinite(best):
                result[border] = best
        return result

    def profile(self, source: int, target: int):
        """Profile query: assemble travel-cost functions instead of scalars."""
        self._require(source, target)
        if source == target:
            return PiecewiseLinearFunction.zero()
        leaf_s = self.leaf_of[source]
        leaf_d = self.leaf_of[target]
        if leaf_s == leaf_d:
            labels = _profile_search_directed(self.graph, source, forward=True)
            if target not in labels:
                raise DisconnectedQueryError(source, target)
            return self._cap(labels[target])

        lca = self._lca(leaf_s, leaf_d)
        up_path = self._strict_path(leaf_s, lca)
        down_path = self._strict_path(leaf_d, lca)

        leaf_node = self.nodes[leaf_s]
        labels: dict[int, PiecewiseLinearFunction] = {}
        for border in leaf_node.borders:
            if border == source:
                labels[border] = PiecewiseLinearFunction.zero()
                continue
            func = leaf_node.vertex_to_border.get((source, border))
            if func is not None:
                labels[border] = func

        for node_id in up_path[1:-1]:
            labels = self._relax_profile(
                labels, self.nodes[node_id], self.nodes[node_id].borders
            )
        target_side = down_path[-2]
        labels = self._relax_profile(
            labels, self.nodes[lca], self.nodes[target_side].borders
        )
        for node_id in reversed(down_path[1:-1]):
            child_id = down_path[down_path.index(node_id) - 1]
            labels = self._relax_profile(
                labels, self.nodes[node_id], self.nodes[child_id].borders
            )

        leaf_node_d = self.nodes[leaf_d]
        candidates = []
        for border, func in labels.items():
            if border == target:
                candidates.append(func)
                continue
            last_leg = leaf_node_d.border_to_vertex.get((border, target))
            if last_leg is None:
                continue
            candidates.append(compound(func, last_leg, via=border))
        if not candidates:
            # Same fallback as the scalar query: assembly found no route
            # because a partition is internally disconnected.
            labels = _profile_search_directed(self.graph, source, forward=True)
            if target not in labels:
                raise DisconnectedQueryError(source, target)
            return self._cap(labels[target])
        return self._cap(minimum_of(candidates))

    def _relax_profile(
        self,
        labels: dict[int, PiecewiseLinearFunction],
        through: GTreeNode,
        target_borders: tuple[int, ...],
    ) -> dict[int, PiecewiseLinearFunction]:
        result: dict[int, PiecewiseLinearFunction] = {}
        for border in target_borders:
            candidates = []
            if border in labels:
                candidates.append(labels[border])
            for from_border, func in labels.items():
                if from_border == border:
                    continue
                leg = through.matrix.get((from_border, border))
                if leg is None:
                    continue
                candidates.append(compound(func, leg, via=from_border))
            if candidates:
                result[border] = self._cap(minimum_of(candidates))
        return result

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def memory_breakdown(self, model: MemoryModel = DEFAULT_MEMORY_MODEL) -> MemoryBreakdown:
        """Analytic memory footprint of all matrices."""
        points = sum(node.matrix_point_count() for node in self.nodes.values())
        functions = sum(node.matrix_function_count() for node in self.nodes.values())
        return MemoryBreakdown(
            label_points=points,
            label_functions=functions,
            structure_nodes=len(self.nodes),
            model=model,
        )

    def statistics(self) -> dict[str, float]:
        """Shape and build-time summary of the partition hierarchy."""
        num_leaves = sum(1 for node in self.nodes.values() if node.is_leaf)
        return {
            "num_partitions": len(self.nodes),
            "num_leaves": num_leaves,
            "num_borders": sum(len(node.borders) for node in self.nodes.values()),
            "build_seconds": sum(self._build_seconds.values()),
            **{f"build_{k}_seconds": v for k, v in self._build_seconds.items()},
        }

    def _require(self, source: int, target: int) -> None:
        if source not in self.leaf_of:
            raise VertexNotFoundError(source)
        if target not in self.leaf_of:
            raise VertexNotFoundError(target)


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------
def _partition(
    graph: TDGraph, leaf_size: int
) -> tuple[dict[int, GTreeNode], int, dict[int, int]]:
    if leaf_size < 2:
        raise IndexBuildError("leaf_size must be at least 2")
    nodes: dict[int, GTreeNode] = {}
    leaf_of: dict[int, int] = {}
    counter = itertools.count()

    def split(members: list[int], axis: int) -> tuple[list[int], list[int]]:
        coords = {v: graph.coordinate(v) for v in members}
        if all(c is not None for c in coords.values()):
            members = sorted(members, key=lambda v: coords[v][axis % 2])
        else:
            members = _bfs_order(graph, members)
        middle = len(members) // 2
        return members[:middle], members[middle:]

    def build(members: list[int], axis: int, parent: int | None) -> int:
        node_id = next(counter)
        node = GTreeNode(node_id=node_id, vertices=frozenset(members), parent=parent)
        nodes[node_id] = node
        if len(members) <= leaf_size:
            for vertex in members:
                leaf_of[vertex] = node_id
            return node_id
        left, right = split(members, axis)
        if not left or not right:  # pragma: no cover - degenerate split
            for vertex in members:
                leaf_of[vertex] = node_id
            return node_id
        node.children.append(build(left, axis + 1, node_id))
        node.children.append(build(right, axis + 1, node_id))
        return node_id

    root_id = build(sorted(graph.vertices()), 0, None)
    return nodes, root_id, leaf_of


def _bfs_order(graph: TDGraph, members: list[int]) -> list[int]:
    member_set = set(members)
    order: list[int] = []
    seen: set[int] = set()
    for start in members:
        if start in seen:
            continue
        queue = [start]
        seen.add(start)
        while queue:
            vertex = queue.pop(0)
            order.append(vertex)
            for neighbor in graph.neighbors(vertex):
                if neighbor in member_set and neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(neighbor)
    return order


# ----------------------------------------------------------------------
# Restricted profile searches used by the matrices
# ----------------------------------------------------------------------
def _profile_search_directed(
    graph: TDGraph, origin: int, *, forward: bool
) -> dict[int, PiecewiseLinearFunction]:
    """Profile search from/towards ``origin`` restricted to ``graph``.

    ``forward=True`` computes functions *from* ``origin`` to every vertex;
    ``forward=False`` computes functions *from every vertex to* ``origin``
    (relaxation over incoming edges).
    """
    labels: dict[int, PiecewiseLinearFunction] = {origin: PiecewiseLinearFunction.zero()}
    counter = itertools.count()
    heap = [(0.0, next(counter), origin)]
    in_queue = {origin}
    while heap:
        _, _, vertex = heapq.heappop(heap)
        in_queue.discard(vertex)
        base = labels[vertex]
        edges = graph.out_items(vertex) if forward else graph.in_items(vertex)
        for other, weight in edges:
            if forward:
                candidate = compound(base, weight) if base.size > 1 or base.costs[0] else weight
            else:
                candidate = compound(weight, base) if base.size > 1 or base.costs[0] else weight
            existing = labels.get(other)
            if existing is None:
                improved = candidate
            else:
                improved = minimum(existing, candidate)
                if existing.allclose(improved, tolerance=1e-9):
                    continue
            labels[other] = improved
            if other not in in_queue:
                in_queue.add(other)
                heapq.heappush(heap, (improved.min_cost, next(counter), other))
    return labels


def _graph_dict_profile_search(
    adjacency: dict[int, dict[int, PiecewiseLinearFunction]], origin: int
) -> dict[int, PiecewiseLinearFunction]:
    """Forward profile search over a plain adjacency dictionary (border graphs)."""
    labels: dict[int, PiecewiseLinearFunction] = {origin: PiecewiseLinearFunction.zero()}
    counter = itertools.count()
    heap = [(0.0, next(counter), origin)]
    in_queue = {origin}
    while heap:
        _, _, vertex = heapq.heappop(heap)
        in_queue.discard(vertex)
        base = labels[vertex]
        for other, weight in adjacency.get(vertex, {}).items():
            candidate = compound(base, weight) if base.size > 1 or base.costs[0] else weight
            existing = labels.get(other)
            if existing is None:
                improved = candidate
            else:
                improved = minimum(existing, candidate)
                if existing.allclose(improved, tolerance=1e-9):
                    continue
            labels[other] = improved
            if other not in in_queue:
                in_queue.add(other)
                heapq.heappush(heap, (improved.min_cost, next(counter), other))
    return labels


def _local_scalar_query(graph: TDGraph, source: int, target: int, departure: float) -> float:
    """Same-leaf fallback: plain time-dependent Dijkstra on the full graph."""
    from repro.baselines.td_dijkstra import earliest_arrival

    return earliest_arrival(graph, source, target, departure).cost
