"""TD-H2H — tree decomposition with *all* shortcuts materialised.

The paper's second baseline extends the static H2H labelling [Ouyang et al.,
SIGMOD'18] to the time-dependent setting: every tree node stores the shortest
travel-cost functions to **all** of its ancestors.  Queries are then answered
with the constant-hop cut lookup only, which makes them extremely fast, but
the label size grows with ``n · h(T_G)`` functions and becomes prohibitive on
larger networks — exactly the trade-off Table 3/Table 4 and Fig. 9 document.

In this library TD-H2H is simply the ``strategy="full"`` configuration of
:class:`~repro.core.index.TDTreeIndex`; this module provides it under its own
name so experiment code reads like the paper.
"""

from __future__ import annotations

from repro.core.index import TDTreeIndex
from repro.graph.td_graph import TDGraph

__all__ = ["TDH2H", "build_td_h2h"]


class TDH2H(TDTreeIndex):
    """A :class:`TDTreeIndex` whose every candidate shortcut is materialised."""

    @classmethod
    def build(  # type: ignore[override]
        cls,
        graph: TDGraph,
        *,
        max_points: int | None = 16,
        tolerance: float = 0.0,
        validate: bool = True,
        **_ignored,
    ) -> "TDH2H":
        """Build the full-shortcut index (budget-free, largest memory footprint)."""
        index = TDTreeIndex._build(
            graph,
            strategy="full",
            max_points=max_points,
            tolerance=tolerance,
            validate=validate,
        )
        index.__class__ = cls
        return index  # type: ignore[return-value]


def build_td_h2h(graph: TDGraph, **kwargs) -> TDH2H:
    """Convenience function mirroring the other baselines' ``build`` helpers."""
    return TDH2H.build(graph, **kwargs)
