"""Synthetic time-dependent edge-weight generation.

The paper derives time-dependent weights from static road networks following
Li et al. [17]: each edge carries a daily piecewise-linear profile with a
configurable number of interpolation points ``c`` (2 to 6).  Real traffic
traces are not publicly available, so this module synthesises congestion
profiles with the same structure:

* a free-flow base cost derived from the edge length,
* one or two rush-hour peaks at configurable times of day,
* exactly ``c`` interpolation points over an 86 400-second horizon,
* the FIFO (non-overtaking) property enforced, which every algorithm in this
  library relies on for correctness.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidFunctionError
from repro.functions.piecewise import PiecewiseLinearFunction
from repro.functions.profile import DAY_SECONDS

__all__ = [
    "WeightGenerator",
    "constant_weight",
    "daily_profile",
    "enforce_fifo",
]

#: Default rush-hour peak centres (8:00 and 17:30) in seconds since midnight.
_DEFAULT_PEAKS = (8 * 3600.0, 17.5 * 3600.0)


def constant_weight(cost: float) -> PiecewiseLinearFunction:
    """A time-independent edge weight (used for static baselines and tests)."""
    if cost < 0:
        raise InvalidFunctionError("edge costs must be non-negative")
    return PiecewiseLinearFunction.constant(cost)


def enforce_fifo(
    times: np.ndarray, costs: np.ndarray, margin: float = 1e-3
) -> np.ndarray:
    """Adjust ``costs`` in place-order so the profile satisfies FIFO.

    The FIFO property requires every slope to be at least ``-1``; equivalently
    ``c_{i+1} >= c_i - (t_{i+1} - t_i)``.  A single forward pass raises any
    violating cost to the smallest admissible value (plus ``margin``).
    """
    fixed = np.array(costs, dtype=np.float64, copy=True)
    for i in range(1, fixed.shape[0]):
        lower = fixed[i - 1] - (times[i] - times[i - 1]) + margin
        if fixed[i] < lower:
            fixed[i] = lower
    return np.maximum(fixed, margin)


def daily_profile(
    base_cost: float,
    num_points: int = 3,
    *,
    peak_factor: float = 1.8,
    peak_times: tuple[float, ...] = _DEFAULT_PEAKS,
    peak_width: float = 2.5 * 3600.0,
    horizon: float = DAY_SECONDS,
    rng: np.random.Generator | None = None,
    jitter: float = 0.15,
) -> PiecewiseLinearFunction:
    """Build a daily congestion profile with ``num_points`` interpolation points.

    Parameters
    ----------
    base_cost:
        Free-flow travel cost of the edge in seconds (must be positive).
    num_points:
        Number of interpolation points ``c`` (the paper sweeps 2..6).
    peak_factor:
        Multiplicative slowdown at the centre of a rush-hour peak.
    peak_times / peak_width:
        Centres and width (seconds) of the Gaussian-shaped congestion bumps.
    horizon:
        Length of the time domain (defaults to one day).
    rng:
        Optional random generator used to jitter sampling times and peak
        heights so that different edges get different profiles.
    jitter:
        Relative magnitude of the random perturbation applied to the congestion
        multiplier at every sampled point.

    Returns
    -------
    PiecewiseLinearFunction
        A FIFO-compliant profile with exactly ``num_points`` points whose value
        never falls below ``base_cost``.
    """
    if base_cost <= 0:
        raise InvalidFunctionError("base_cost must be positive")
    if num_points < 1:
        raise InvalidFunctionError("num_points must be at least 1")
    if num_points == 1:
        return PiecewiseLinearFunction.constant(base_cost)

    if rng is None:
        rng = np.random.default_rng()

    # Sample times: evenly spaced over the horizon with a small jitter, always
    # keeping t_1 = 0 and t_c = horizon so the whole day is covered.
    times = np.linspace(0.0, horizon, num_points)
    if num_points > 2:
        span = horizon / (num_points - 1)
        offsets = rng.uniform(-0.25, 0.25, size=num_points - 2) * span
        times[1:-1] = times[1:-1] + offsets
        times = np.sort(times)
        # Guarantee strict monotonicity even under adverse jitter.
        for i in range(1, num_points):
            if times[i] <= times[i - 1]:
                times[i] = times[i - 1] + 1.0

    multiplier = np.ones(num_points, dtype=np.float64)
    for centre in peak_times:
        bump = (peak_factor - 1.0) * np.exp(
            -0.5 * ((times - centre) / peak_width) ** 2
        )
        multiplier += bump
    if jitter > 0:
        multiplier *= 1.0 + rng.uniform(-jitter, jitter, size=num_points)
    multiplier = np.maximum(multiplier, 1.0)

    costs = base_cost * multiplier
    costs = enforce_fifo(times, costs)
    costs = np.maximum(costs, base_cost * 0.5)
    return PiecewiseLinearFunction(times, costs, validate=False)


class WeightGenerator:
    """Reusable, seeded factory of daily congestion profiles.

    The generator guarantees reproducibility: the profile attached to an edge
    depends only on the seed and on the order of :meth:`profile_for` calls,
    which the dataset catalog fixes.

    Parameters
    ----------
    num_points:
        Number of interpolation points per edge (the paper's ``c``).
    seed:
        Seed of the internal :class:`numpy.random.Generator`.
    peak_factor, jitter, horizon:
        Passed through to :func:`daily_profile`.
    """

    def __init__(
        self,
        num_points: int = 3,
        seed: int = 0,
        *,
        peak_factor: float = 1.8,
        jitter: float = 0.15,
        horizon: float = DAY_SECONDS,
    ) -> None:
        if num_points < 1:
            raise InvalidFunctionError("num_points must be at least 1")
        self.num_points = int(num_points)
        self.peak_factor = float(peak_factor)
        self.jitter = float(jitter)
        self.horizon = float(horizon)
        self._rng = np.random.default_rng(seed)

    def profile_for(self, base_cost: float) -> PiecewiseLinearFunction:
        """Return a fresh daily profile whose free-flow cost is ``base_cost``."""
        return daily_profile(
            base_cost,
            self.num_points,
            peak_factor=self.peak_factor,
            jitter=self.jitter,
            horizon=self.horizon,
            rng=self._rng,
        )

    def perturbed(self, weight: PiecewiseLinearFunction, scale: float = 0.2) -> PiecewiseLinearFunction:
        """Return a randomly perturbed copy of an existing weight function.

        Used by the index-update experiment (Fig. 10): a traffic incident
        changes the cost profile of an edge without changing the topology.
        """
        factor = 1.0 + self._rng.uniform(-scale, scale, size=weight.size)
        costs = enforce_fifo(weight.times, np.maximum(weight.costs * factor, 1e-3))
        return PiecewiseLinearFunction(weight.times, costs, weight.via, validate=False)
