"""Convenience constructors for :class:`~repro.graph.TDGraph`.

These builders cover the common ways users hold road-network data before
adopting this library: flat edge lists with static costs, edge lists with
explicit interpolation points, and :mod:`networkx` graphs.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.exceptions import GraphError
from repro.functions.piecewise import PiecewiseLinearFunction
from repro.graph.td_graph import TDGraph
from repro.graph.weights import WeightGenerator

__all__ = [
    "from_static_edge_list",
    "from_td_edge_list",
    "from_networkx",
    "to_networkx",
    "paper_example_graph",
]


def from_static_edge_list(
    edges: Iterable[tuple[int, int, float]],
    *,
    bidirectional: bool = True,
    num_points: int = 1,
    seed: int = 0,
    coordinates: Mapping[int, tuple[float, float]] | None = None,
) -> TDGraph:
    """Build a time-dependent graph from static ``(u, v, cost)`` triples.

    When ``num_points`` is 1 the costs stay constant; otherwise each edge gets a
    synthetic daily congestion profile whose free-flow cost equals the static
    cost (so the static graph is the lower envelope of the generated one).
    """
    generator = WeightGenerator(num_points, seed=seed) if num_points > 1 else None
    graph = TDGraph()
    for u, v, cost in edges:
        if cost < 0:
            raise GraphError(f"edge ({u}, {v}) has a negative static cost")
        if generator is None:
            weight: PiecewiseLinearFunction = PiecewiseLinearFunction.constant(cost)
            reverse = weight
        else:
            weight = generator.profile_for(cost)
            reverse = generator.profile_for(cost)
        if bidirectional:
            graph.add_bidirectional_edge(u, v, weight, reverse)
        else:
            graph.add_edge(u, v, weight)
    if coordinates:
        for vertex, coord in coordinates.items():
            graph.add_vertex(vertex, coord)
    return graph


def from_td_edge_list(
    edges: Iterable[tuple[int, int, Sequence[tuple[float, float]]]],
    *,
    bidirectional: bool = False,
    coordinates: Mapping[int, tuple[float, float]] | None = None,
) -> TDGraph:
    """Build a graph from ``(u, v, [(t, c), ...])`` triples."""
    graph = TDGraph()
    for u, v, points in edges:
        weight = PiecewiseLinearFunction.from_points(points)
        if bidirectional:
            graph.add_bidirectional_edge(u, v, weight)
        else:
            graph.add_edge(u, v, weight)
    if coordinates:
        for vertex, coord in coordinates.items():
            graph.add_vertex(vertex, coord)
    return graph


def from_networkx(nx_graph, weight_attribute: str = "weight") -> TDGraph:
    """Convert a networkx (Di)Graph into a :class:`TDGraph`.

    Edge attributes may be either :class:`PiecewiseLinearFunction` instances,
    lists of ``(t, c)`` pairs, or plain numbers (interpreted as constant
    costs).  Node attribute ``pos`` is carried over as the coordinate.
    """
    graph = TDGraph()
    for node, data in nx_graph.nodes(data=True):
        position = data.get("pos")
        graph.add_vertex(int(node), tuple(position) if position is not None else None)
    directed = nx_graph.is_directed()
    for u, v, data in nx_graph.edges(data=True):
        raw = data.get(weight_attribute, 1.0)
        weight = _coerce_weight(raw)
        if directed:
            graph.add_edge(int(u), int(v), weight)
        else:
            graph.add_bidirectional_edge(int(u), int(v), weight)
    return graph


def to_networkx(graph: TDGraph):
    """Convert to a :class:`networkx.DiGraph` (weights become PLF attributes)."""
    import networkx as nx  # local import: optional dependency in practice

    nx_graph = nx.DiGraph()
    for vertex in graph.vertices():
        coordinate = graph.coordinate(vertex)
        if coordinate is not None:
            nx_graph.add_node(vertex, pos=coordinate)
        else:
            nx_graph.add_node(vertex)
    for u, v, weight in graph.edges():
        nx_graph.add_edge(u, v, weight=weight, free_flow=weight.min_cost)
    return nx_graph


def _coerce_weight(raw) -> PiecewiseLinearFunction:
    if isinstance(raw, PiecewiseLinearFunction):
        return raw
    if isinstance(raw, (int, float)):
        return PiecewiseLinearFunction.constant(float(raw))
    return PiecewiseLinearFunction.from_points(raw)


def paper_example_graph() -> TDGraph:
    """The 15-vertex running example of the paper (Fig. 1a).

    Edge weights for ``e_{1,2}``, ``e_{2,9}``, ``e_{1,4}`` and ``e_{4,9}`` follow
    Fig. 1b exactly (times in minutes); the remaining edges carry simple
    synthetic profiles.  Vertices are numbered 1..15 like in the paper.
    The graph is undirected in the paper's sense: ``w_{u,v}(t) = w_{v,u}(t)``.
    """
    figure_weights = {
        (1, 2): [(0, 10), (20, 10), (60, 15)],
        (2, 9): [(0, 5), (30, 10), (60, 15)],
        (1, 4): [(0, 5), (30, 15), (60, 25)],
        (4, 9): [(0, 5), (60, 15)],
    }
    # Topology of Fig. 1a (17 undirected edges over 15 vertices).
    topology = [
        (1, 2), (1, 3), (1, 4), (2, 3), (2, 9), (3, 5), (4, 5), (4, 9),
        (4, 10), (5, 10), (3, 6), (6, 7), (6, 8), (2, 8), (10, 12), (10, 13),
        (1, 11), (11, 15), (5, 14),
    ]
    graph = TDGraph()
    default_points = {
        0: [(0, 8), (30, 12), (60, 9)],
        1: [(0, 6), (25, 9), (60, 7)],
        2: [(0, 12), (20, 16), (60, 11)],
        3: [(0, 7), (40, 10), (60, 8)],
    }
    for index, (u, v) in enumerate(topology):
        points = figure_weights.get((u, v)) or figure_weights.get((v, u))
        if points is None:
            points = default_points[index % len(default_points)]
        weight = PiecewiseLinearFunction.from_points(points)
        graph.add_bidirectional_edge(u, v, weight)
    return graph
