"""Validation of time-dependent graphs.

The index-construction and query algorithms assume that the input graph is

* non-empty,
* (strongly) connected, so every query has an answer,
* FIFO: no edge allows overtaking by departing later,
* non-negative in cost.

:func:`validate_graph` checks all of these and returns a structured report so
callers can decide whether a violation is fatal for their use case.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import GraphError
from repro.graph.td_graph import TDGraph

__all__ = ["ValidationReport", "validate_graph", "is_strongly_connected"]


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_graph`."""

    num_vertices: int
    num_edges: int
    is_connected: bool
    is_strongly_connected: bool
    non_fifo_edges: list[tuple[int, int]] = field(default_factory=list)
    negative_cost_edges: list[tuple[int, int]] = field(default_factory=list)
    isolated_vertices: list[int] = field(default_factory=list)

    @property
    def is_valid(self) -> bool:
        """True when the graph satisfies every assumption of the index."""
        return (
            self.num_vertices > 0
            and self.is_strongly_connected
            and not self.non_fifo_edges
            and not self.negative_cost_edges
        )

    def raise_if_invalid(self) -> None:
        """Raise :class:`~repro.exceptions.GraphError` describing the first problem."""
        if self.num_vertices == 0:
            raise GraphError("the graph has no vertices")
        if self.negative_cost_edges:
            u, v = self.negative_cost_edges[0]
            raise GraphError(f"edge ({u}, {v}) has negative travel costs")
        if self.non_fifo_edges:
            u, v = self.non_fifo_edges[0]
            raise GraphError(f"edge ({u}, {v}) violates the FIFO property")
        if not self.is_strongly_connected:
            raise GraphError("the graph is not strongly connected")


def validate_graph(graph: TDGraph, fifo_tolerance: float = 1e-6) -> ValidationReport:
    """Check structural and functional invariants of a time-dependent graph."""
    non_fifo: list[tuple[int, int]] = []
    negative: list[tuple[int, int]] = []
    for u, v, weight in graph.edges():
        if not weight.is_nonnegative():
            negative.append((u, v))
        if not weight.is_fifo(tolerance=fifo_tolerance):
            non_fifo.append((u, v))
    isolated = [v for v in graph.vertices() if graph.degree(v) == 0]
    connected = _is_weakly_connected(graph)
    strongly = is_strongly_connected(graph)
    return ValidationReport(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        is_connected=connected,
        is_strongly_connected=strongly,
        non_fifo_edges=non_fifo,
        negative_cost_edges=negative,
        isolated_vertices=isolated,
    )


def is_strongly_connected(graph: TDGraph) -> bool:
    """Return whether every vertex can reach every other along directed edges."""
    if graph.num_vertices == 0:
        return False
    start = next(iter(graph.vertices()))
    return (
        len(_reachable(graph, start, forward=True)) == graph.num_vertices
        and len(_reachable(graph, start, forward=False)) == graph.num_vertices
    )


def _is_weakly_connected(graph: TDGraph) -> bool:
    if graph.num_vertices == 0:
        return False
    start = next(iter(graph.vertices()))
    seen = {start}
    stack = [start]
    while stack:
        vertex = stack.pop()
        for neighbor in graph.neighbors(vertex):
            if neighbor not in seen:
                seen.add(neighbor)
                stack.append(neighbor)
    return len(seen) == graph.num_vertices


def _reachable(graph: TDGraph, start: int, forward: bool) -> set[int]:
    seen = {start}
    stack = [start]
    while stack:
        vertex = stack.pop()
        neighbors = graph.out_neighbors(vertex) if forward else graph.in_neighbors(vertex)
        for neighbor in neighbors:
            if neighbor not in seen:
                seen.add(neighbor)
                stack.append(neighbor)
    return seen
