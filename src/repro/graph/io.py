"""Serialisation of time-dependent graphs.

Two formats are supported:

* **JSON** — self-describing, versioned; the default for examples and tests.
* **TD-DIMACS text** — a line-based format modelled on the DIMACS shortest-path
  challenge files the paper's datasets come from, extended with interpolation
  points: ``a <u> <v> <k> <t1> <c1> ... <tk> <ck>``.  This keeps the repository
  interoperable with tooling that consumes the original benchmark files.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.exceptions import SerializationError
from repro.functions.piecewise import PiecewiseLinearFunction
from repro.graph.td_graph import TDGraph

__all__ = [
    "save_graph_json",
    "load_graph_json",
    "save_graph_dimacs",
    "load_graph_dimacs",
]

_JSON_FORMAT_VERSION = 1


def save_graph_json(graph: TDGraph, path: str | Path) -> None:
    """Write ``graph`` to ``path`` in the library's JSON format."""
    payload = {
        "format": "repro-td-graph",
        "version": _JSON_FORMAT_VERSION,
        "vertices": [
            {"id": v, "coordinate": graph.coordinate(v)} for v in sorted(graph.vertices())
        ],
        "edges": [
            {
                "source": u,
                "target": v,
                "points": [[float(t), float(c)] for t, c in weight.points()],
            }
            for u, v, weight in sorted(graph.edges(), key=lambda e: (e[0], e[1]))
        ],
    }
    Path(path).write_text(json.dumps(payload), encoding="utf-8")


def load_graph_json(path: str | Path) -> TDGraph:
    """Load a graph written by :func:`save_graph_json`."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SerializationError(f"cannot read graph JSON from {path}: {exc}") from exc
    if payload.get("format") != "repro-td-graph":
        raise SerializationError(f"{path} is not a repro time-dependent graph file")
    if payload.get("version") != _JSON_FORMAT_VERSION:
        raise SerializationError(
            f"unsupported graph file version {payload.get('version')!r}"
        )
    graph = TDGraph()
    for vertex in payload.get("vertices", []):
        coordinate = vertex.get("coordinate")
        graph.add_vertex(
            int(vertex["id"]),
            tuple(coordinate) if coordinate is not None else None,
        )
    for edge in payload.get("edges", []):
        weight = PiecewiseLinearFunction.from_points(
            [(float(t), float(c)) for t, c in edge["points"]]
        )
        graph.add_edge(int(edge["source"]), int(edge["target"]), weight)
    return graph


def save_graph_dimacs(graph: TDGraph, path: str | Path, comment: str = "") -> None:
    """Write ``graph`` in the extended TD-DIMACS text format."""
    lines = []
    if comment:
        for row in comment.splitlines():
            lines.append(f"c {row}")
    lines.append(f"p sp {graph.num_vertices} {graph.num_edges}")
    for vertex in sorted(graph.vertices()):
        coordinate = graph.coordinate(vertex)
        if coordinate is not None:
            lines.append(f"v {vertex} {coordinate[0]:.3f} {coordinate[1]:.3f}")
    for u, v, weight in sorted(graph.edges(), key=lambda e: (e[0], e[1])):
        points = " ".join(f"{t:.3f} {c:.6f}" for t, c in weight.points())
        lines.append(f"a {u} {v} {weight.size} {points}")
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def load_graph_dimacs(path: str | Path) -> TDGraph:
    """Load a graph written by :func:`save_graph_dimacs`."""
    graph = TDGraph()
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise SerializationError(f"cannot read graph from {path}: {exc}") from exc
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("c") or line.startswith("p"):
            continue
        fields = line.split()
        try:
            if fields[0] == "v":
                graph.add_vertex(int(fields[1]), (float(fields[2]), float(fields[3])))
            elif fields[0] == "a":
                u, v, count = int(fields[1]), int(fields[2]), int(fields[3])
                raw = [float(x) for x in fields[4 : 4 + 2 * count]]
                if len(raw) != 2 * count:
                    raise SerializationError(
                        f"{path}:{line_number}: expected {count} interpolation points"
                    )
                points = list(zip(raw[0::2], raw[1::2]))
                graph.add_edge(u, v, PiecewiseLinearFunction.from_points(points))
            else:
                raise SerializationError(
                    f"{path}:{line_number}: unknown record type {fields[0]!r}"
                )
        except (ValueError, IndexError) as exc:
            raise SerializationError(f"{path}:{line_number}: malformed line") from exc
    return graph
