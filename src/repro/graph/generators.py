"""Synthetic road-network generators.

The paper evaluates on five real DIMACS road networks (California, San
Francisco, Colorado, Florida, Western USA).  Those graphs have millions of
edges and are not shipped here; instead this module generates planar,
road-like networks with the structural properties that matter for the
algorithms under study:

* low, slowly growing treewidth (grids, ring-radial "spider webs" and Delaunay
  triangulations of random points all have this property),
* average degree between 2 and 4 like real road graphs,
* 2-D coordinates (needed by the TD-G-tree spatial partitioning baseline and
  by the A* heuristic),
* bidirectional edges with daily time-dependent congestion profiles.

Every generator is deterministic given its ``seed``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import GraphError
from repro.graph.td_graph import TDGraph
from repro.graph.weights import WeightGenerator

__all__ = [
    "grid_network",
    "ring_radial_network",
    "random_geometric_network",
    "ensure_connected",
]

#: Travel speed used to convert Euclidean edge length to free-flow seconds.
_FREE_FLOW_SPEED = 13.9  # metres per second (~50 km/h)


def grid_network(
    rows: int,
    cols: int,
    *,
    num_points: int = 3,
    seed: int = 0,
    cell_size: float = 500.0,
    diagonal_probability: float = 0.1,
    removal_probability: float = 0.05,
) -> TDGraph:
    """Generate a Manhattan-style grid road network.

    Parameters
    ----------
    rows, cols:
        Grid dimensions; the graph has ``rows * cols`` vertices.
    num_points:
        Interpolation points per edge profile (the paper's ``c``).
    seed:
        Seed controlling profiles, diagonals and road removals.
    cell_size:
        Edge length of a grid cell in metres.
    diagonal_probability:
        Probability of adding a diagonal road inside a cell (adds realism and
        slightly raises the treewidth).
    removal_probability:
        Probability of removing a non-bridge grid road (dead ends, one-ways
        collapsed), keeping the network connected.
    """
    if rows < 2 or cols < 2:
        raise GraphError("grid_network requires at least a 2x2 grid")
    rng = np.random.default_rng(seed)
    weights = WeightGenerator(num_points, seed=seed + 1)
    graph = TDGraph()

    def vid(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            graph.add_vertex(vid(r, c), (c * cell_size, r * cell_size))

    candidate_edges: list[tuple[int, int, float]] = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                candidate_edges.append((vid(r, c), vid(r, c + 1), cell_size))
            if r + 1 < rows:
                candidate_edges.append((vid(r, c), vid(r + 1, c), cell_size))
            if (
                r + 1 < rows
                and c + 1 < cols
                and rng.random() < diagonal_probability
            ):
                candidate_edges.append(
                    (vid(r, c), vid(r + 1, c + 1), cell_size * math.sqrt(2.0))
                )

    keep_mask = rng.random(len(candidate_edges)) >= removal_probability
    for keep, (u, v, length) in zip(keep_mask, candidate_edges):
        if not keep:
            continue
        base_cost = length / _FREE_FLOW_SPEED
        graph.add_bidirectional_edge(
            u, v, weights.profile_for(base_cost), weights.profile_for(base_cost)
        )
    ensure_connected(graph, weights)
    return graph


def ring_radial_network(
    rings: int,
    spokes: int,
    *,
    num_points: int = 3,
    seed: int = 0,
    ring_spacing: float = 800.0,
) -> TDGraph:
    """Generate a ring-and-radial ("spider web") road network.

    This topology mimics cities with a dense centre and arterial roads: ``rings``
    concentric rings each containing ``spokes`` vertices, connected along the
    rings and radially, plus a central vertex.
    """
    if rings < 1 or spokes < 3:
        raise GraphError("ring_radial_network requires rings >= 1 and spokes >= 3")
    weights = WeightGenerator(num_points, seed=seed + 1)
    graph = TDGraph()

    centre = 0
    graph.add_vertex(centre, (0.0, 0.0))

    def vid(ring: int, spoke: int) -> int:
        return 1 + ring * spokes + (spoke % spokes)

    for ring in range(rings):
        radius = (ring + 1) * ring_spacing
        for spoke in range(spokes):
            angle = 2.0 * math.pi * spoke / spokes
            graph.add_vertex(
                vid(ring, spoke), (radius * math.cos(angle), radius * math.sin(angle))
            )

    def add_road(u: int, v: int) -> None:
        (x1, y1), (x2, y2) = graph.coordinate(u), graph.coordinate(v)
        length = math.hypot(x1 - x2, y1 - y2)
        base_cost = max(length, 1.0) / _FREE_FLOW_SPEED
        graph.add_bidirectional_edge(
            u, v, weights.profile_for(base_cost), weights.profile_for(base_cost)
        )

    for spoke in range(spokes):
        add_road(centre, vid(0, spoke))
        for ring in range(rings):
            add_road(vid(ring, spoke), vid(ring, spoke + 1))
            if ring + 1 < rings:
                add_road(vid(ring, spoke), vid(ring + 1, spoke))
    return graph


def random_geometric_network(
    num_vertices: int,
    *,
    num_points: int = 3,
    seed: int = 0,
    area_size: float = 20_000.0,
    edge_keep_probability: float = 0.55,
) -> TDGraph:
    """Generate a planar road network from a Delaunay triangulation.

    Random points are scattered over a square area, triangulated (scipy's
    Delaunay), and a random subset of the triangulation edges is kept so the
    average degree lands in the road-network range (~2.5–4).  Connectivity is
    then restored by re-adding the cheapest dropped edges between components.
    """
    if num_vertices < 4:
        raise GraphError("random_geometric_network requires at least 4 vertices")
    from scipy.spatial import Delaunay  # local import: scipy is heavyweight

    rng = np.random.default_rng(seed)
    weights = WeightGenerator(num_points, seed=seed + 1)
    points = rng.uniform(0.0, area_size, size=(num_vertices, 2))
    triangulation = Delaunay(points)

    graph = TDGraph()
    for vertex in range(num_vertices):
        graph.add_vertex(vertex, (float(points[vertex, 0]), float(points[vertex, 1])))

    edge_set: set[tuple[int, int]] = set()
    for simplex in triangulation.simplices:
        for i in range(3):
            u, v = int(simplex[i]), int(simplex[(i + 1) % 3])
            edge_set.add((min(u, v), max(u, v)))

    dropped: list[tuple[int, int]] = []
    for u, v in sorted(edge_set):
        if rng.random() > edge_keep_probability:
            dropped.append((u, v))
            continue
        length = float(np.linalg.norm(points[u] - points[v]))
        base_cost = max(length, 1.0) / _FREE_FLOW_SPEED
        graph.add_bidirectional_edge(
            u, v, weights.profile_for(base_cost), weights.profile_for(base_cost)
        )

    # Restore connectivity with the dropped Delaunay edges (they are planar, so
    # re-adding them keeps the network road-like).
    components = _connected_components(graph)
    while len(components) > 1:
        comp_of = {}
        for idx, comp in enumerate(components):
            for vertex in comp:
                comp_of[vertex] = idx
        added = False
        for u, v in dropped:
            if comp_of[u] != comp_of[v]:
                length = float(np.linalg.norm(points[u] - points[v]))
                base_cost = max(length, 1.0) / _FREE_FLOW_SPEED
                graph.add_bidirectional_edge(
                    u, v, weights.profile_for(base_cost), weights.profile_for(base_cost)
                )
                added = True
                break
        if not added:  # pragma: no cover - Delaunay graphs are connected
            ensure_connected(graph, weights)
            break
        components = _connected_components(graph)
    return graph


def ensure_connected(graph: TDGraph, weights: WeightGenerator) -> None:
    """Connect all components of ``graph`` by adding short bridging roads.

    Components are linked through their (coordinate-wise) closest vertex pair;
    vertices without coordinates are linked arbitrarily.  The operation is a
    no-op for connected graphs.
    """
    components = _connected_components(graph)
    while len(components) > 1:
        base = components[0]
        other = components[1]
        u, v, length = _closest_pair(graph, base, other)
        base_cost = max(length, 1.0) / _FREE_FLOW_SPEED
        graph.add_bidirectional_edge(
            u, v, weights.profile_for(base_cost), weights.profile_for(base_cost)
        )
        components = _connected_components(graph)


def _connected_components(graph: TDGraph) -> list[list[int]]:
    """Connected components of the undirected skeleton (BFS)."""
    seen: set[int] = set()
    components: list[list[int]] = []
    for start in graph.vertices():
        if start in seen:
            continue
        queue = [start]
        seen.add(start)
        component = []
        while queue:
            vertex = queue.pop()
            component.append(vertex)
            for neighbor in graph.neighbors(vertex):
                if neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(neighbor)
        components.append(component)
    return components


def _closest_pair(
    graph: TDGraph, first: list[int], second: list[int]
) -> tuple[int, int, float]:
    """Closest vertex pair between two components (Euclidean, if coordinates exist)."""
    best: tuple[int, int, float] | None = None
    for u in first:
        cu = graph.coordinate(u)
        for v in second:
            cv = graph.coordinate(v)
            if cu is None or cv is None:
                return first[0], second[0], 1000.0
            dist = math.hypot(cu[0] - cv[0], cu[1] - cv[1])
            if best is None or dist < best[2]:
                best = (u, v, dist)
    assert best is not None
    return best
