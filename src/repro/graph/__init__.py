"""Time-dependent road-network substrate.

Contains the :class:`TDGraph` data structure plus everything needed to obtain
one: synthetic road-network generators, synthetic congestion-profile
generators, file I/O and validation.
"""

from repro.graph.builders import (
    from_networkx,
    from_static_edge_list,
    from_td_edge_list,
    paper_example_graph,
    to_networkx,
)
from repro.graph.generators import (
    ensure_connected,
    grid_network,
    random_geometric_network,
    ring_radial_network,
)
from repro.graph.io import (
    load_graph_dimacs,
    load_graph_json,
    save_graph_dimacs,
    save_graph_json,
)
from repro.graph.td_graph import TDGraph
from repro.graph.validation import ValidationReport, is_strongly_connected, validate_graph
from repro.graph.weights import WeightGenerator, constant_weight, daily_profile, enforce_fifo

__all__ = [
    "TDGraph",
    "WeightGenerator",
    "constant_weight",
    "daily_profile",
    "enforce_fifo",
    "grid_network",
    "ring_radial_network",
    "random_geometric_network",
    "ensure_connected",
    "from_static_edge_list",
    "from_td_edge_list",
    "from_networkx",
    "to_networkx",
    "paper_example_graph",
    "save_graph_json",
    "load_graph_json",
    "save_graph_dimacs",
    "load_graph_dimacs",
    "validate_graph",
    "ValidationReport",
    "is_strongly_connected",
]
