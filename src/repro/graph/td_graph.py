"""The time-dependent directed graph (Definition 1).

A :class:`TDGraph` is a directed graph whose every edge ``(u, v)`` carries a
piecewise-linear travel-cost function ``w_{u,v}(t)``.  Vertices are
non-negative integers (which is what lets the provenance metadata inside
:class:`~repro.functions.PiecewiseLinearFunction` reference them compactly);
optional 2-D coordinates can be attached for generators, partition-based
baselines and visualisation.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.exceptions import (
    EdgeNotFoundError,
    GraphError,
    VertexNotFoundError,
)
from repro.functions.piecewise import PiecewiseLinearFunction

__all__ = ["TDGraph"]


class TDGraph:
    """A directed graph with time-dependent (PLF) edge weights.

    The class intentionally exposes a small, dictionary-backed API rather than
    wrapping :mod:`networkx`: the index-construction algorithms mutate working
    copies heavily (vertex elimination) and profit from the direct adjacency
    access.

    Examples
    --------
    >>> from repro import TDGraph, PiecewiseLinearFunction
    >>> g = TDGraph()
    >>> f = PiecewiseLinearFunction.from_points([(0, 10), (20, 10), (60, 15)])
    >>> g.add_bidirectional_edge(1, 2, f)
    >>> g.weight(1, 2)(0.0)
    10.0
    """

    __slots__ = ("_out", "_in", "_coordinates")

    def __init__(self) -> None:
        # vertex -> {neighbor -> PiecewiseLinearFunction}
        self._out: dict[int, dict[int, PiecewiseLinearFunction]] = {}
        self._in: dict[int, dict[int, PiecewiseLinearFunction]] = {}
        self._coordinates: dict[int, tuple[float, float]] = {}

    # ------------------------------------------------------------------
    # Vertices
    # ------------------------------------------------------------------
    def add_vertex(self, vertex: int, coordinate: tuple[float, float] | None = None) -> None:
        """Add a vertex (idempotent).  Vertices must be non-negative integers."""
        _check_vertex_id(vertex)
        if vertex not in self._out:
            self._out[vertex] = {}
            self._in[vertex] = {}
        if coordinate is not None:
            self._coordinates[vertex] = (float(coordinate[0]), float(coordinate[1]))

    def has_vertex(self, vertex: int) -> bool:
        """Return whether ``vertex`` is in the graph."""
        return vertex in self._out

    def remove_vertex(self, vertex: int) -> None:
        """Remove ``vertex`` and every incident edge."""
        if vertex not in self._out:
            raise VertexNotFoundError(vertex)
        for succ in list(self._out[vertex]):
            del self._in[succ][vertex]
        for pred in list(self._in[vertex]):
            del self._out[pred][vertex]
        del self._out[vertex]
        del self._in[vertex]
        self._coordinates.pop(vertex, None)

    def vertices(self) -> Iterator[int]:
        """Iterate over the vertex identifiers."""
        return iter(self._out)

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n = |V|``."""
        return len(self._out)

    def coordinate(self, vertex: int) -> tuple[float, float] | None:
        """Return the vertex coordinate, or ``None`` if not set."""
        return self._coordinates.get(vertex)

    def coordinates(self) -> dict[int, tuple[float, float]]:
        """Return a copy of the coordinate table."""
        return dict(self._coordinates)

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------
    def add_edge(
        self, source: int, target: int, weight: PiecewiseLinearFunction
    ) -> None:
        """Add (or replace) the directed edge ``source -> target``."""
        if source == target:
            raise GraphError(f"self-loop on vertex {source} is not allowed")
        if not isinstance(weight, PiecewiseLinearFunction):
            raise GraphError("edge weights must be PiecewiseLinearFunction instances")
        self.add_vertex(source)
        self.add_vertex(target)
        self._out[source][target] = weight
        self._in[target][source] = weight

    def add_bidirectional_edge(
        self,
        u: int,
        v: int,
        weight: PiecewiseLinearFunction,
        reverse_weight: PiecewiseLinearFunction | None = None,
    ) -> None:
        """Add both ``u -> v`` and ``v -> u``.

        When ``reverse_weight`` is omitted, the same function is used in both
        directions (the setting of the paper's running example, where
        ``w_{u,v}(t) = w_{v,u}(t)``).
        """
        self.add_edge(u, v, weight)
        self.add_edge(v, u, reverse_weight if reverse_weight is not None else weight)

    def has_edge(self, source: int, target: int) -> bool:
        """Return whether the directed edge ``source -> target`` exists."""
        return source in self._out and target in self._out[source]

    def weight(self, source: int, target: int) -> PiecewiseLinearFunction:
        """Return the weight function of ``source -> target``."""
        try:
            return self._out[source][target]
        except KeyError:
            if source not in self._out:
                raise VertexNotFoundError(source) from None
            raise EdgeNotFoundError(source, target) from None

    def set_weight(
        self, source: int, target: int, weight: PiecewiseLinearFunction
    ) -> None:
        """Replace the weight of an existing edge (used by index updates)."""
        if not self.has_edge(source, target):
            raise EdgeNotFoundError(source, target)
        self._out[source][target] = weight
        self._in[target][source] = weight

    def remove_edge(self, source: int, target: int) -> None:
        """Remove the directed edge ``source -> target``."""
        if not self.has_edge(source, target):
            raise EdgeNotFoundError(source, target)
        del self._out[source][target]
        del self._in[target][source]

    def edges(self) -> Iterator[tuple[int, int, PiecewiseLinearFunction]]:
        """Iterate over ``(source, target, weight)`` triples."""
        for source, succ in self._out.items():
            for target, weight in succ.items():
                yield source, target, weight

    @property
    def num_edges(self) -> int:
        """Number of directed edges ``m = |E|``."""
        return sum(len(succ) for succ in self._out.values())

    # ------------------------------------------------------------------
    # Neighbourhoods
    # ------------------------------------------------------------------
    def out_neighbors(self, vertex: int) -> Iterator[int]:
        """Successors of ``vertex``."""
        try:
            return iter(self._out[vertex])
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def in_neighbors(self, vertex: int) -> Iterator[int]:
        """Predecessors of ``vertex``."""
        try:
            return iter(self._in[vertex])
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def out_items(self, vertex: int) -> Iterable[tuple[int, PiecewiseLinearFunction]]:
        """``(successor, weight)`` pairs of ``vertex``."""
        try:
            return self._out[vertex].items()
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def in_items(self, vertex: int) -> Iterable[tuple[int, PiecewiseLinearFunction]]:
        """``(predecessor, weight)`` pairs of ``vertex``."""
        try:
            return self._in[vertex].items()
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def neighbors(self, vertex: int) -> set[int]:
        """Undirected neighbourhood ``N(v)``: union of successors and predecessors."""
        if vertex not in self._out:
            raise VertexNotFoundError(vertex)
        return set(self._out[vertex]) | set(self._in[vertex])

    def degree(self, vertex: int) -> int:
        """Undirected degree of ``vertex`` (size of :meth:`neighbors`)."""
        return len(self.neighbors(vertex))

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def copy(self) -> "TDGraph":
        """Return a shallow copy (weight functions are shared, structure is not)."""
        clone = TDGraph()
        for vertex in self._out:
            clone._out[vertex] = dict(self._out[vertex])
            clone._in[vertex] = dict(self._in[vertex])
        clone._coordinates = dict(self._coordinates)
        return clone

    def subgraph(self, vertices: Iterable[int]) -> "TDGraph":
        """Return the subgraph induced by ``vertices``."""
        selected = set(vertices)
        missing = [v for v in selected if v not in self._out]
        if missing:
            raise VertexNotFoundError(missing[0])
        sub = TDGraph()
        for vertex in selected:
            sub.add_vertex(vertex, self._coordinates.get(vertex))
        for vertex in selected:
            for target, weight in self._out[vertex].items():
                if target in selected:
                    sub.add_edge(vertex, target, weight)
        return sub

    def total_interpolation_points(self) -> int:
        """Total number of interpolation points stored on all directed edges."""
        return sum(weight.size for _, _, weight in self.edges())

    def undirected_adjacency(self) -> dict[int, set[int]]:
        """Return the undirected skeleton as an adjacency dictionary."""
        return {v: self.neighbors(v) for v in self._out}

    def __contains__(self, vertex: int) -> bool:
        return vertex in self._out

    def __repr__(self) -> str:
        return f"TDGraph(num_vertices={self.num_vertices}, num_edges={self.num_edges})"


def _check_vertex_id(vertex: int) -> None:
    if not isinstance(vertex, (int,)) or isinstance(vertex, bool) or vertex < 0:
        raise GraphError(
            f"vertices must be non-negative integers, got {vertex!r}"
        )
