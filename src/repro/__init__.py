"""repro — time-dependent shortest-path queries with tree-decomposition shortcuts.

A pure-Python reproduction of *"Querying Shortest Path on Large Time-Dependent
Road Networks with Shortcuts"* (Gong, Zeng, Chen; ICDE 2024 / arXiv:2303.03720).

Quick start
-----------
>>> from repro import create_engine
>>> from repro.graph import grid_network
>>> graph = grid_network(6, 6, seed=1)
>>> engine = create_engine("td-appro?budget_fraction=0.3", graph)
>>> route = engine.query(0, 35, departure=8 * 3600)
>>> profile = engine.profile(0, 35)

Every method the paper evaluates — the td-* index configurations and the four
baselines — is an engine behind the same :class:`repro.api.Engine` protocol;
see :mod:`repro.api` for the registry and the typed result types.

Package layout
--------------
``repro.api``
    The public surface: the ``Engine`` protocol, the string-spec registry
    (``create_engine`` / ``register_engine``) and the unified ``Route`` /
    ``RouteMatrix`` / ``RouteProfile`` result types.
``repro.functions``
    Piecewise-linear travel-cost function algebra (Compound, minimum, ...).
``repro.graph``
    Time-dependent graph structure, generators, I/O, validation.
``repro.core``
    The paper's contribution: TFP tree decomposition, shortcut selection
    (exact DP and 0.5-approximation) and the query algorithms.
``repro.persistence``
    Versioned on-disk index snapshots (``TDTreeIndex.save`` / ``load``).
``repro.serving``
    Serving stack: micro-batching ``QueryService`` workers under an
    ``EngineHost`` control plane (named deployments, zero-downtime hot
    swap, async facade).
``repro.baselines``
    TD-Dijkstra, TD-A*, TD-G-tree and TD-H2H comparison methods.
``repro.datasets``
    Scaled dataset catalog mirroring the paper's Table 2 and the query
    workload generator.
``repro.experiments``
    Harness that regenerates every table and figure of the evaluation,
    driven by the engine registry.
"""

from repro.core.index import TDTreeIndex
from repro.core.query import EarliestArrivalResult, ProfileResult
from repro.functions.piecewise import PiecewiseLinearFunction
from repro.graph.td_graph import TDGraph

from repro import api
from repro.api import (
    BuildConfig,
    Engine,
    EngineCapabilities,
    QueryOptions,
    Route,
    RouteMatrix,
    RouteProfile,
    available_engines,
    create_engine,
    register_engine,
)

__version__ = "1.2.0"

__all__ = [
    "TDGraph",
    "TDTreeIndex",
    "PiecewiseLinearFunction",
    "EarliestArrivalResult",
    "ProfileResult",
    "api",
    "Engine",
    "EngineCapabilities",
    "BuildConfig",
    "QueryOptions",
    "Route",
    "RouteMatrix",
    "RouteProfile",
    "create_engine",
    "register_engine",
    "available_engines",
    "__version__",
]
