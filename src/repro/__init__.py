"""repro — time-dependent shortest-path queries with tree-decomposition shortcuts.

A pure-Python reproduction of *"Querying Shortest Path on Large Time-Dependent
Road Networks with Shortcuts"* (Gong, Zeng, Chen; ICDE 2024 / arXiv:2303.03720).

Quick start
-----------
>>> from repro import TDTreeIndex
>>> from repro.graph import grid_network
>>> graph = grid_network(6, 6, seed=1)
>>> index = TDTreeIndex.build(graph, strategy="approx", budget_fraction=0.3)
>>> answer = index.query(0, 35, departure=8 * 3600)
>>> profile = index.profile(0, 35)

Package layout
--------------
``repro.functions``
    Piecewise-linear travel-cost function algebra (Compound, minimum, ...).
``repro.graph``
    Time-dependent graph structure, generators, I/O, validation.
``repro.core``
    The paper's contribution: TFP tree decomposition, shortcut selection
    (exact DP and 0.5-approximation) and the query algorithms.
``repro.persistence``
    Versioned on-disk index snapshots (``TDTreeIndex.save`` / ``load``).
``repro.serving``
    Micro-batching ``QueryService`` with result caching and service stats.
``repro.baselines``
    TD-Dijkstra, TD-A*, TD-G-tree and TD-H2H comparison methods.
``repro.datasets``
    Scaled dataset catalog mirroring the paper's Table 2 and the query
    workload generator.
``repro.experiments``
    Harness that regenerates every table and figure of the evaluation.
"""

from repro.core.index import TDTreeIndex
from repro.core.query import EarliestArrivalResult, ProfileResult
from repro.functions.piecewise import PiecewiseLinearFunction
from repro.graph.td_graph import TDGraph

__version__ = "1.0.0"

__all__ = [
    "TDGraph",
    "TDTreeIndex",
    "PiecewiseLinearFunction",
    "EarliestArrivalResult",
    "ProfileResult",
    "__version__",
]
