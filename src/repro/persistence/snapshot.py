"""Versioned on-disk snapshots of a built :class:`~repro.core.index.TDTreeIndex`.

Building the index is by far the most expensive step of the pipeline
(decomposition + shortcut construction + selection); a serving fleet should
pay it once and ship the result to every worker.  A snapshot is a directory

``<path>/manifest.json``
    Human-readable metadata: format version, build strategy and parameters,
    selection summary, and the element counts the loader cross-checks.
``<path>/arrays.npz``
    Every numeric payload packed into flat numpy buffers.  All
    piecewise-linear functions — per-node ``Ws``/``Wd`` label lists, graph
    edge weights, shortcut pairs — reuse :class:`~repro.functions.batch.PLFBatch`'s
    ragged ``times``/``costs``/``via``/``offsets`` layout (via
    :meth:`PLFBatch.to_arrays`), so the whole index is a handful of
    contiguous arrays rather than millions of Python objects.

The round trip is **bit-identical**: breakpoint times, costs and ``via``
provenance are stored as raw ``float64``/``int64`` buffers and dictionary
iteration orders (bags, label lists, shortcut keys, tree-node insertion) are
preserved, so a loaded index answers every query — scalar, profile and
batched — with exactly the same floating-point results as the index that was
saved.  Loading skips decomposition, catalog construction and selection
entirely, which makes it one to two orders of magnitude faster than
rebuilding (``benchmarks/bench_serving.py`` enforces >= 10x on scaled CAL).

Versioning policy
-----------------
``FORMAT_VERSION`` is bumped whenever the array layout or manifest schema
changes incompatibly.  Loaders refuse snapshots from a different major
version with :class:`~repro.exceptions.SnapshotError` instead of guessing:
an index snapshot feeds query answers to users, so a silently-misread buffer
is worse than a failed load.  Within a version, unknown *extra* manifest keys
are ignored, which leaves room for forward-compatible additions.
"""

from __future__ import annotations

import json
import os
import uuid
import zipfile
from pathlib import Path

import numpy as np

from repro import __version__
from repro.exceptions import InvalidFunctionError, SnapshotError
from repro.functions.batch import PLFBatch
from repro.graph.td_graph import TDGraph

__all__ = [
    "FORMAT_VERSION",
    "MANIFEST_NAME",
    "ARRAYS_NAME",
    "MMAP_MODES",
    "save_index",
    "load_index",
    "read_manifest",
]

#: Major version of the on-disk layout; bumped on incompatible changes.
FORMAT_VERSION = 1

#: The format tag every manifest carries (guards against unrelated JSON files).
FORMAT_TAG = "repro-tdtree-index-snapshot"

MANIFEST_NAME = "manifest.json"
ARRAYS_NAME = "arrays.npz"


# ----------------------------------------------------------------------
# Saving
# ----------------------------------------------------------------------
def save_index(index, path, *, engine_spec: str | None = None) -> Path:
    """Write ``index`` to the snapshot directory ``path``.

    The directory is created if needed.  Overwriting an existing snapshot is
    safe against torn writes: each file is written to a temporary name and
    atomically renamed (arrays first, manifest last), and both carry a shared
    random token that the loader cross-checks — a reader racing a re-save
    either sees a complete old/new snapshot or gets a
    :class:`~repro.exceptions.SnapshotError`, never a silent mix.  Returns
    the directory path.

    ``engine_spec`` records the registry spec the index was built from
    (``"td-appro?budget_fraction=0.3"``); the manifest carries it together
    with the registry's mutation counter so
    ``create_engine("snapshot:<path>")`` can rehydrate the snapshot into the
    engine it came from.  Manifests written before these fields existed (or
    with ``engine_spec=None``) still load — the fields are additive.
    """
    from repro.core.index import TDTreeIndex  # local import: avoid cycle

    if not isinstance(index, TDTreeIndex):
        raise SnapshotError(f"can only snapshot a TDTreeIndex, got {type(index).__name__}")
    directory = Path(path)
    directory.mkdir(parents=True, exist_ok=True)

    from repro.core.shortcuts import pack_shortcut_pairs

    token = uuid.uuid4().hex
    arrays: dict[str, np.ndarray] = {"snapshot_token": np.array([token])}
    arrays.update(_pack_graph(index.graph))
    arrays.update(index.tree.to_arrays())
    arrays.update(pack_shortcut_pairs(index.shortcuts))

    from repro.api.registry import registry_version

    manifest = {
        "format": FORMAT_TAG,
        "format_version": FORMAT_VERSION,
        "repro_version": __version__,
        "arrays_file": ARRAYS_NAME,
        "snapshot_token": token,
        # The originating engine spec (None when saved through the bare
        # index surface) plus the registry mutation counter at save time —
        # what "snapshot:<path>" specs rehydrate from.
        "engine_spec": engine_spec,
        "registry_version": registry_version(),
        "strategy": index.strategy,
        "max_points": index.max_points,
        "tolerance": index.tolerance,
        "catalog_size": index._catalog_size,
        "build_seconds": dict(index._build_seconds),
        "selection": {
            "method": index.selection.method,
            "total_utility": index.selection.total_utility,
            "total_weight": index.selection.total_weight,
            "budget": index.selection.budget,
        },
        "counts": {
            "vertices": index.graph.num_vertices,
            "edges": index.graph.num_edges,
            "tree_nodes": index.tree.num_nodes,
            "shortcut_pairs": len(index.shortcuts),
            "label_points": index.tree.label_point_count(),
        },
    }

    arrays_tmp = directory / f"{ARRAYS_NAME}.{token}.tmp"
    manifest_tmp = directory / f"{MANIFEST_NAME}.{token}.tmp"
    try:
        with open(arrays_tmp, "wb") as handle:
            np.savez(handle, **arrays)
        os.replace(arrays_tmp, directory / ARRAYS_NAME)
        with open(manifest_tmp, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(manifest_tmp, directory / MANIFEST_NAME)
    finally:
        for leftover in (arrays_tmp, manifest_tmp):
            leftover.unlink(missing_ok=True)
    return directory


def _pack_graph(graph: TDGraph) -> dict[str, np.ndarray]:
    """Flatten the graph into vertex/edge arrays plus one edge-weight batch."""
    vertices = np.fromiter(graph.vertices(), dtype=np.int64, count=graph.num_vertices)
    sources, targets, weights = [], [], []
    for source, target, weight in graph.edges():
        sources.append(source)
        targets.append(target)
        weights.append(weight)
    coords = graph.coordinates()
    coord_vertices = np.array(sorted(coords), dtype=np.int64)
    coord_xy = np.array(
        [coords[v] for v in coord_vertices], dtype=np.float64
    ).reshape(coord_vertices.size, 2)
    out = {
        "graph_vertex": vertices,
        "graph_edge_src": np.array(sources, dtype=np.int64),
        "graph_edge_dst": np.array(targets, dtype=np.int64),
        "graph_coord_vertex": coord_vertices,
        "graph_coord_xy": coord_xy,
    }
    out.update(PLFBatch.from_functions(weights).to_arrays("graph_weight_"))
    return out


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------
def read_manifest(path) -> dict:
    """Read and validate the manifest of the snapshot at ``path``."""
    directory = Path(path)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.is_file():
        raise SnapshotError(f"no index snapshot at {directory} (missing {MANIFEST_NAME})")
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"unreadable snapshot manifest at {manifest_path}: {exc}") from exc
    if not isinstance(manifest, dict) or manifest.get("format") != FORMAT_TAG:
        raise SnapshotError(f"{manifest_path} is not a {FORMAT_TAG} manifest")
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise SnapshotError(
            f"snapshot format version {version!r} is not supported by this build "
            f"(expected {FORMAT_VERSION}); re-create the snapshot with save()"
        )
    return manifest


#: Memory-map modes accepted by :func:`load_index` (read-only / copy-on-write;
#: writable maps would let a query mutate the shared snapshot under every
#: other replica's feet).
MMAP_MODES = ("r", "c")


def load_index(path, *, mmap_mode: str | None = None):
    """Load a snapshot directory back into a :class:`TDTreeIndex`.

    With ``mmap_mode=None`` (the default) every array is read eagerly into
    process-private heap memory.  Pass ``mmap_mode="r"`` (read-only) or
    ``"c"`` (copy-on-write) to memory-map the ``.npz`` members in place
    instead: the ragged PLF buffers — the dominant payload — then live in the
    OS page cache, shared physically between every process that maps the same
    snapshot.  That is what makes N-replica serving
    (:class:`~repro.serving.replica.ReplicaPool`) cost one index's worth of
    RAM instead of N.  ``np.load`` silently ignores ``mmap_mode`` for ``.npz``
    archives, so the mapping is done member-by-member here — ``np.savez``
    stores members uncompressed, which keeps their byte ranges mappable.

    Raises :class:`~repro.exceptions.SnapshotError` when the snapshot is
    missing, malformed, fails the manifest count cross-checks, or was written
    by an incompatible format version.
    """
    from repro.core.index import TDTreeIndex
    from repro.core.selection import SelectionResult
    from repro.core.shortcuts import unpack_shortcut_pairs
    from repro.core.tree_decomposition import TFPTreeDecomposition

    if mmap_mode is not None and mmap_mode not in MMAP_MODES:
        raise SnapshotError(
            f"unsupported mmap_mode {mmap_mode!r}: snapshot arrays may only be "
            f"mapped read-only ('r') or copy-on-write ('c')"
        )
    directory = Path(path)
    manifest = read_manifest(directory)
    arrays_path = directory / str(manifest.get("arrays_file", ARRAYS_NAME))
    if not arrays_path.is_file():
        raise SnapshotError(f"snapshot at {directory} is missing {arrays_path.name}")
    try:
        if mmap_mode is not None:
            arrays = _mmap_npz(arrays_path, mmap_mode)
        else:
            with np.load(arrays_path) as archive:
                arrays = {name: archive[name] for name in archive.files}
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        raise SnapshotError(f"unreadable snapshot arrays at {arrays_path}: {exc}") from exc

    expected_token = manifest.get("snapshot_token")
    if expected_token is not None:
        stored = arrays.get("snapshot_token")
        stored_token = str(stored[0]) if stored is not None and stored.size else None
        if stored_token != expected_token:
            raise SnapshotError(
                f"snapshot at {directory} is torn: manifest and arrays come "
                f"from different save() calls (a concurrent re-save?)"
            )

    try:
        graph = _unpack_graph(arrays)
        tree = TFPTreeDecomposition.from_arrays(arrays)
        shortcuts = unpack_shortcut_pairs(arrays)
    except KeyError as exc:
        raise SnapshotError(
            f"snapshot at {directory} is missing array {exc.args[0]!r}"
        ) from None
    except InvalidFunctionError as exc:
        # PLFBatch.from_arrays raises this for missing or corrupt ragged
        # buffers; keep the documented SnapshotError contract for callers
        # that fall back to a rebuild on a bad snapshot.
        raise SnapshotError(f"corrupt snapshot at {directory}: {exc}") from exc

    counts = manifest.get("counts", {})
    _check_count(counts, "vertices", graph.num_vertices, directory)
    _check_count(counts, "edges", graph.num_edges, directory)
    _check_count(counts, "tree_nodes", tree.num_nodes, directory)
    _check_count(counts, "shortcut_pairs", len(shortcuts), directory)

    selection_meta = manifest.get("selection", {})
    selection = SelectionResult(
        selected=set(shortcuts),
        total_utility=float(selection_meta.get("total_utility", 0.0)),
        total_weight=int(selection_meta.get("total_weight", 0)),
        method=str(selection_meta.get("method", "none")),
        budget=selection_meta.get("budget"),
    )
    max_points = manifest.get("max_points")
    return TDTreeIndex(
        graph,
        tree,
        shortcuts,
        strategy=str(manifest.get("strategy", "basic")),
        selection=selection,
        catalog_size=int(manifest.get("catalog_size", len(shortcuts))),
        build_seconds=dict(manifest.get("build_seconds", {})),
        max_points=None if max_points is None else int(max_points),
        tolerance=float(manifest.get("tolerance", 0.0)),
    )


def _check_count(counts: dict, key: str, actual: int, directory: Path) -> None:
    expected = counts.get(key)
    if expected is not None and int(expected) != actual:
        raise SnapshotError(
            f"snapshot at {directory} is inconsistent: manifest says "
            f"{key}={expected}, arrays contain {actual}"
        )


def _mmap_npz(path: Path, mode: str) -> dict[str, np.ndarray]:
    """Map every member of an ``.npz`` archive without copying the payload.

    ``np.savez`` writes a plain ZIP of ``.npy`` members with ``ZIP_STORED``
    (no compression), so each member's array body is a contiguous byte range
    of the archive file — directly mappable once its offset is known.  For
    each member this parses the ZIP local file header (the central directory's
    ``header_offset`` points at it; the 30-byte fixed part carries the name
    and extra-field lengths at offsets 26 and 28) and then the ``.npy`` header
    to find dtype/shape/order and the first payload byte.

    Members that cannot be mapped — compressed (not produced by ``np.savez``,
    but tolerated), zero-size (``mmap`` rejects empty ranges), or object-dtype
    — fall back to an eager read.  Returned arrays are plain ``ndarray`` views
    whose ``.base`` is the underlying :class:`numpy.memmap`, so callers (and
    tests) can tell mapped from copied.
    """
    arrays: dict[str, np.ndarray] = {}
    with zipfile.ZipFile(path) as archive:
        for info in archive.infolist():
            member = info.filename
            key = member[: -len(".npy")] if member.endswith(".npy") else member
            if info.compress_type != zipfile.ZIP_STORED:
                with archive.open(info) as handle:
                    arrays[key] = np.lib.format.read_array(handle)
                continue
            arrays[key] = _mmap_member(path, info, mode)
    return arrays


def _mmap_member(path: Path, info: zipfile.ZipInfo, mode: str) -> np.ndarray:
    """Map one stored ``.npy`` member of ``path`` as an ndarray view."""
    with open(path, "rb") as handle:
        handle.seek(info.header_offset)
        local = handle.read(30)
        if len(local) != 30 or local[:4] != b"PK\x03\x04":
            raise SnapshotError(
                f"corrupt snapshot archive {path}: member {info.filename!r} "
                f"has no local file header at offset {info.header_offset}"
            )
        name_len = int.from_bytes(local[26:28], "little")
        extra_len = int.from_bytes(local[28:30], "little")
        handle.seek(info.header_offset + 30 + name_len + extra_len)
        version = np.lib.format.read_magic(handle)
        if version == (1, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_1_0(handle)
        elif version == (2, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_2_0(handle)
        else:  # pragma: no cover - np.savez only emits 1.0/2.0 headers
            raise SnapshotError(
                f"cannot map snapshot member {info.filename!r}: "
                f"unsupported .npy format version {version}"
            )
        data_offset = handle.tell()
        if dtype.hasobject or int(np.prod(shape)) == 0:
            # Object arrays need pickle; empty ranges cannot be mmapped.
            handle.seek(info.header_offset + 30 + name_len + extra_len)
            return np.lib.format.read_array(handle)
    mapped: np.memmap = np.memmap(
        path,
        dtype=dtype,
        mode=mode,
        offset=data_offset,
        shape=shape,
        order="F" if fortran else "C",
    )
    return mapped.view(np.ndarray)


def _unpack_graph(arrays: dict) -> TDGraph:
    graph = TDGraph()
    for vertex in arrays["graph_vertex"]:
        graph.add_vertex(int(vertex))
    for vertex, (x, y) in zip(arrays["graph_coord_vertex"], arrays["graph_coord_xy"]):
        graph.add_vertex(int(vertex), (float(x), float(y)))
    weights = PLFBatch.from_arrays(arrays, "graph_weight_")
    sources = arrays["graph_edge_src"]
    targets = arrays["graph_edge_dst"]
    if not (sources.size == targets.size == weights.count):
        raise SnapshotError(
            f"edge arrays disagree: {sources.size} sources, {targets.size} "
            f"targets, {weights.count} weight functions"
        )
    for i in range(weights.count):
        graph.add_edge(int(sources[i]), int(targets[i]), weights.function(i))
    return graph
