"""On-disk persistence for built indexes (:mod:`repro.persistence.snapshot`).

``TDTreeIndex.save(path)`` / ``TDTreeIndex.load(path)`` are thin wrappers over
:func:`save_index` / :func:`load_index`; use the functions directly when you
want to inspect a snapshot's manifest without materialising the index.
"""

from repro.persistence.snapshot import (
    ARRAYS_NAME,
    FORMAT_VERSION,
    MANIFEST_NAME,
    MMAP_MODES,
    load_index,
    read_manifest,
    save_index,
)

__all__ = [
    "ARRAYS_NAME",
    "FORMAT_VERSION",
    "MANIFEST_NAME",
    "MMAP_MODES",
    "load_index",
    "read_manifest",
    "save_index",
]
