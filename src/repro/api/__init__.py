"""``repro.api`` — the public, typed surface of the library.

One engine abstraction covers the paper's whole evaluation matrix: the five
``td-*`` tree-decomposition configurations and the four baselines all
implement the :class:`Engine` protocol, are built from a string spec through
the registry, and answer with the shared :class:`Route` / :class:`RouteMatrix`
/ :class:`RouteProfile` result types.

Quick start
-----------
>>> from repro.api import create_engine
>>> from repro.graph import grid_network
>>> graph = grid_network(6, 6, seed=1)
>>> engine = create_engine("td-appro?budget_fraction=0.3", graph)
>>> route = engine.query(0, 35, departure=8 * 3600)
>>> route.cost > 0 and route.path()[0] == 0
True
>>> engine.capabilities().batch
True

Any engine — including the index-free baselines — drops straight into the
serving layer::

    from repro.serving import QueryService
    with QueryService(create_engine("td-dijkstra", graph)) as service:
        cost = service.submit(0, 35, 8 * 3600).result()

Third-party engines register with :func:`register_engine` (or a
``repro.engines`` packaging entry point) and immediately work everywhere an
engine spec is accepted — the experiment runners, the contract test-suite,
the serving layer.
"""

from repro.api.adapters import (
    EngineAdapter,
    TDAStarEngine,
    TDDijkstraEngine,
    TDGTreeEngine,
    TDTreeEngine,
)
from repro.api.engine import Engine, engine_supports
from repro.api.registry import (
    ENTRY_POINT_GROUP,
    EngineEntry,
    available_engines,
    create_engine,
    engine_entry,
    parse_engine_spec,
    register_engine,
    registered_engines,
    registry_version,
    unregister_engine,
)
from repro.api.types import (
    UNSET,
    BuildConfig,
    EngineCapabilities,
    QueryOptions,
    Route,
    RouteMatrix,
    RouteProfile,
)

__all__ = [
    # protocol + result types
    "Engine",
    "engine_supports",
    "EngineCapabilities",
    "Route",
    "RouteMatrix",
    "RouteProfile",
    # configuration
    "BuildConfig",
    "QueryOptions",
    "UNSET",
    # registry
    "ENTRY_POINT_GROUP",
    "EngineEntry",
    "register_engine",
    "unregister_engine",
    "create_engine",
    "parse_engine_spec",
    "available_engines",
    "engine_entry",
    "registered_engines",
    "registry_version",
    # built-in adapters
    "EngineAdapter",
    "TDTreeEngine",
    "TDDijkstraEngine",
    "TDAStarEngine",
    "TDGTreeEngine",
]
