"""String-spec engine registry: ``register_engine`` / ``create_engine``.

An engine *spec* is a name plus optional URL-style options::

    create_engine("td-appro", graph)
    create_engine("td-appro?budget_fraction=0.3&max_points=16", graph)
    create_engine("td-astar?heuristic=landmarks&num_landmarks=4", graph)

Option values are coerced (``"0.3"`` → float, ``"16"`` → int, ``"true"`` →
bool, ``"none"`` → None) and validated against the engine factory's
signature — an option the factory does not accept raises
:class:`~repro.exceptions.UnknownEngineOptionError` naming the accepted ones,
so typos fail loudly instead of silently building a different engine.

Specs also come in a *scheme* form, ``name:argument``, where everything
between the name and the ``?`` is passed to the factory as its ``path``
option.  The built-in ``snapshot`` engine uses it to make saved indexes
first-class engine specs::

    create_engine("snapshot:/var/indexes/cal", graph=None)

rehydrates the snapshot via :func:`repro.persistence.load_index` — no graph
required, the snapshot embeds its own.  Factories that can build without a
graph register with ``graph_optional=True``.

Third-party engines plug in two ways:

* directly — ``register_engine("my-engine", factory)`` (or as a decorator);
* via packaging entry points — any installed distribution advertising a
  factory under the ``repro.engines`` group is registered lazily the first
  time an unknown name is looked up.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, overload

from repro.api.engine import Engine
from repro.api.types import BuildConfig
from repro.exceptions import EngineSpecError, UnknownEngineError, UnknownEngineOptionError
from repro.graph.td_graph import TDGraph

__all__ = [
    "ENTRY_POINT_GROUP",
    "EngineEntry",
    "register_engine",
    "unregister_engine",
    "create_engine",
    "parse_engine_spec",
    "available_engines",
    "engine_entry",
    "registered_engines",
    "registry_version",
]

#: Packaging entry-point group scanned for third-party engine factories.
ENTRY_POINT_GROUP = "repro.engines"

#: A build factory: ``factory(graph, **options) -> Engine``.  Keyword-only
#: option parameters double as the accepted-option declaration (validated
#: via ``inspect.signature`` before the factory is called).
EngineFactory = Callable[..., Engine]


@dataclass(frozen=True)
class EngineEntry:
    """One registered engine: its factory plus display metadata."""

    name: str
    factory: EngineFactory
    description: str = ""
    #: Name used in the paper's evaluation tables (``"TD-appro"``), when the
    #: engine corresponds to a compared method; the experiment runners derive
    #: their method tables from exactly these.
    paper_name: str | None = None
    #: True when the factory accepts ``graph=None`` (it brings its own data —
    #: e.g. the ``snapshot`` engine embeds the graph in the snapshot).
    graph_optional: bool = False

    def accepts_any_option(self) -> bool:
        """True when the factory takes ``**options`` (it validates itself)."""
        return any(
            p.kind is inspect.Parameter.VAR_KEYWORD
            for p in inspect.signature(self.factory).parameters.values()
        )

    def accepted_options(self) -> tuple[str, ...]:
        """The factory's explicitly named option parameters.

        Empty means "takes no named options"; check :meth:`accepts_any_option`
        to distinguish a zero-option factory from a ``**options`` one.
        """
        parameters = list(inspect.signature(self.factory).parameters.values())
        return tuple(
            p.name
            for p in parameters[1:]  # parameters[0] is the graph
            if p.kind
            in (inspect.Parameter.KEYWORD_ONLY, inspect.Parameter.POSITIONAL_OR_KEYWORD)
        )


_REGISTRY: dict[str, EngineEntry] = {}
_entry_points_scanned = False
#: Bumped on every (un)registration; lets registry views cache snapshots.
_registry_version = 0


def registry_version() -> int:
    """Monotonic counter of registry mutations (cache-invalidation token)."""
    return _registry_version


@overload
def register_engine(
    name: str,
    factory: EngineFactory,
    *,
    description: str = ...,
    paper_name: str | None = ...,
    replace: bool = ...,
    graph_optional: bool = ...,
) -> EngineFactory: ...


@overload
def register_engine(
    name: str,
    factory: None = None,
    *,
    description: str = ...,
    paper_name: str | None = ...,
    replace: bool = ...,
    graph_optional: bool = ...,
) -> Callable[[EngineFactory], EngineFactory]: ...


def register_engine(
    name: str,
    factory: EngineFactory | None = None,
    *,
    description: str = "",
    paper_name: str | None = None,
    replace: bool = False,
    graph_optional: bool = False,
) -> Callable[[EngineFactory], EngineFactory] | EngineFactory:
    """Register ``factory`` under ``name`` (directly or as a decorator).

    ::

        register_engine("my-engine", build_my_engine)

        @register_engine("my-engine", description="...")
        def build_my_engine(graph: TDGraph, *, alpha: float = 1.0) -> Engine:
            ...

    Re-registering an existing name raises unless ``replace=True`` — losing
    an engine to a silent overwrite is a debugging tarpit.
    """

    def _register(f: EngineFactory) -> EngineFactory:
        global _registry_version
        # ":" is the scheme separator in specs ("snapshot:<path>"), so a name
        # containing one could never be resolved back.
        if not name or "?" in name or ":" in name:
            raise EngineSpecError(f"invalid engine name {name!r}")
        if name in _REGISTRY and not replace:
            raise EngineSpecError(
                f"engine {name!r} is already registered; pass replace=True to override"
            )
        _REGISTRY[name] = EngineEntry(
            name=name,
            factory=f,
            description=description,
            paper_name=paper_name,
            graph_optional=graph_optional,
        )
        _registry_version += 1
        return f

    if factory is not None:
        return _register(factory)
    return _register


def unregister_engine(name: str) -> None:
    """Remove a registered engine (no-op when absent; used by tests)."""
    global _registry_version
    if _REGISTRY.pop(name, None) is not None:
        _registry_version += 1


def _scan_entry_points() -> None:
    """Register engines advertised by installed distributions (best effort)."""
    global _entry_points_scanned
    if _entry_points_scanned:
        return
    _entry_points_scanned = True
    try:
        from importlib.metadata import entry_points
    except ImportError:  # pragma: no cover - importlib.metadata is stdlib
        return
    for entry_point in entry_points(group=ENTRY_POINT_GROUP):
        if entry_point.name in _REGISTRY:
            continue
        try:
            loaded = entry_point.load()
        except Exception:  # pragma: no cover - broken third-party package
            continue
        register_engine(
            entry_point.name,
            loaded,
            # Factories may annotate themselves so packaged engines carry the
            # same metadata as directly registered ones (a paper_name opts
            # into the experiment runners' method tables).
            description=str(
                getattr(loaded, "engine_description", f"entry point {entry_point.value}")
            ),
            paper_name=getattr(loaded, "paper_name", None),
        )


def engine_entry(name: str) -> EngineEntry:
    """Resolve a bare engine name to its registry entry."""
    entry = _REGISTRY.get(name)
    if entry is None:
        _scan_entry_points()
        entry = _REGISTRY.get(name)
    if entry is None:
        raise UnknownEngineError(name, available_engines())
    return entry


def available_engines() -> tuple[str, ...]:
    """All registered engine names (entry points included), registration order."""
    _scan_entry_points()
    return tuple(_REGISTRY)


def registered_engines() -> Iterator[EngineEntry]:
    """Iterate the registry entries (metadata included), registration order."""
    _scan_entry_points()
    return iter(tuple(_REGISTRY.values()))


# ----------------------------------------------------------------------
# Spec parsing
# ----------------------------------------------------------------------
def _coerce(value: str) -> object:
    """Coerce one query-string value: bool/None/int/float, else the string."""
    lowered = value.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if lowered in ("none", "null"):
        return None
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        pass
    return value


def parse_engine_spec(spec: str) -> tuple[str, dict[str, object]]:
    """Split ``"name?key=value&..."`` into the name and coerced options.

    The scheme form ``"name:argument?key=value"`` surfaces the argument as a
    ``path`` option (kept verbatim — a filesystem path is not coerced), so
    ``"snapshot:/var/idx/cal"`` parses as ``("snapshot", {"path":
    "/var/idx/cal"})``.
    """
    if not isinstance(spec, str) or not spec:
        raise EngineSpecError(f"engine spec must be a non-empty string, got {spec!r}")
    name, _, query = spec.partition("?")
    if not name:
        raise EngineSpecError(f"engine spec {spec!r} has no engine name")
    options: dict[str, object] = {}
    scheme, sep, argument = name.partition(":")
    if sep:
        if not scheme or not argument:
            raise EngineSpecError(
                f"malformed scheme spec {spec!r} (expected name:argument)"
            )
        name = scheme
        options["path"] = argument
    if query:
        for item in query.split("&"):
            if not item:
                continue
            key, sep, raw = item.partition("=")
            if not sep or not key:
                raise EngineSpecError(
                    f"malformed option {item!r} in engine spec {spec!r} "
                    "(expected key=value)"
                )
            if key in options:
                raise EngineSpecError(
                    f"option {key!r} given twice in engine spec {spec!r}"
                )
            options[key] = _coerce(raw)
    return name, options


def _validate_options(entry: EngineEntry, options: dict[str, object]) -> None:
    if entry.accepts_any_option():
        return  # factory takes **options: it validates (or tolerates) itself
    accepted = entry.accepted_options()
    for key in options:
        if key not in accepted:
            raise UnknownEngineOptionError(entry.name, key, accepted)


def create_engine(
    spec: str,
    graph: Optional[TDGraph] = None,
    *,
    config: Optional[BuildConfig] = None,
    **options: object,
) -> Engine:
    """Build the engine described by ``spec`` over ``graph``.

    Options merge in increasing precedence: ``config`` (a typed
    :class:`~repro.api.BuildConfig`), then the spec's query string, then
    explicit keyword ``options``.  The merged options are validated against
    the factory signature before anything is built.

    ``graph`` may be omitted only for engines registered with
    ``graph_optional=True`` (they bring their own data — e.g.
    ``"snapshot:<path>"`` rehydrates a saved index, graph included);
    for every other engine a missing graph raises
    :class:`~repro.exceptions.EngineSpecError` up front instead of a
    confusing failure deep inside the build.
    """
    name, spec_options = parse_engine_spec(spec)
    entry = engine_entry(name)
    if graph is None and not entry.graph_optional:
        raise EngineSpecError(
            f"engine {name!r} requires a graph to build on "
            "(only snapshot-style engines accept graph=None)"
        )
    merged: dict[str, object] = {}
    if config is not None:
        merged.update(config.to_options())
    merged.update(spec_options)
    merged.update(options)
    _validate_options(entry, merged)
    return entry.factory(graph, **merged)
