"""Typed configuration and result types of the unified engine API.

Every engine — the five ``td-*`` tree-decomposition configurations and the
four baselines — answers queries with the same small vocabulary:

* :class:`Route` — one scalar travel-cost answer, with lazy path expansion;
* :class:`RouteMatrix` — a batch of scalar answers (aligned arrays), each row
  expandable to a :class:`Route` and a path on demand;
* :class:`RouteProfile` — a whole travel-cost function ``f_{s,d}(t)`` with an
  exact :meth:`~RouteProfile.best_departure` minimiser;
* :class:`BuildConfig` / :class:`QueryOptions` — typed knobs for construction
  and querying;
* :class:`EngineCapabilities` — which optional parts of the protocol an
  engine implements (``profile`` / ``batch`` / ``update`` / ``paths``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator, Mapping, Union

import numpy as np

from repro.exceptions import UnsupportedCapabilityError
from repro.functions.profile import best_departure as _best_departure

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.functions.piecewise import PiecewiseLinearFunction

__all__ = [
    "UNSET",
    "BuildConfig",
    "QueryOptions",
    "EngineCapabilities",
    "Route",
    "RouteMatrix",
    "RouteProfile",
]


class _Unset(enum.Enum):
    """Type of the :data:`UNSET` sentinel (an enum so mypy can narrow it)."""

    TOKEN = 0

    def __repr__(self) -> str:
        return "UNSET"


#: Sentinel distinguishing "not configured — use the engine's default" from
#: an explicit value (``max_points=None`` legitimately means *exact*).
UNSET = _Unset.TOKEN


@dataclass(frozen=True)
class BuildConfig:
    """Typed construction knobs shared by the built-in engines.

    Every field defaults to "engine default": :data:`UNSET` for knobs where
    ``None`` is itself meaningful (``max_points=None`` keeps functions exact),
    plain ``None`` for the budget pair.  :meth:`to_options` collapses the
    config to the option dict understood by
    :func:`repro.api.create_engine` — unset fields are simply absent, so each
    engine keeps its own defaults (e.g. ``td-h2h`` caps functions at 16
    points while ``td-appro`` defaults to 32).

    ``extras`` carries engine-specific options (``heuristic`` for
    ``td-astar``, ``leaf_size`` for ``tdg-tree``, ...); unknown options are
    rejected at build time with
    :class:`~repro.exceptions.UnknownEngineOptionError`.
    """

    budget: int | None = None
    budget_fraction: float | None = None
    max_points: Union[int, None, _Unset] = UNSET
    tolerance: Union[float, _Unset] = UNSET
    validate: Union[bool, _Unset] = UNSET
    use_batch_kernels: Union[bool, _Unset] = UNSET
    extras: Mapping[str, object] = field(default_factory=dict)

    def to_options(self) -> dict[str, object]:
        """The explicitly-configured fields as an engine option dict."""
        options: dict[str, object] = dict(self.extras)
        if self.budget is not None:
            options["budget"] = self.budget
        if self.budget_fraction is not None:
            options["budget_fraction"] = self.budget_fraction
        for name in ("max_points", "tolerance", "validate", "use_batch_kernels"):
            value = getattr(self, name)
            if value is not UNSET:
                options[name] = value
        return options


@dataclass(frozen=True)
class QueryOptions:
    """Per-query knobs of :meth:`repro.api.Engine.query` / ``batch_query``.

    ``want_path``
        Record path provenance during the query so :meth:`Route.path` does
        not need a second traversal.  Paths stay available lazily either way
        (for engines advertising ``capabilities().paths``); the flag only
        moves the cost to query time.
    ``want_arrival``
        Ask the engine to materialise arrival times eagerly.  All built-in
        engines derive arrivals for free (``departure + cost``), so this is
        advisory — third-party engines backed by remote services use it to
        skip work the caller does not need.
    """

    want_path: bool = False
    want_arrival: bool = False


#: Default options: cost only, paths lazily.
DEFAULT_QUERY_OPTIONS = QueryOptions()


@dataclass(frozen=True)
class EngineCapabilities:
    """Which optional protocol methods an engine actually implements.

    ``query`` and ``capabilities`` are mandatory; everything else is
    advertised here.  Calling an unadvertised method raises
    :class:`~repro.exceptions.UnsupportedCapabilityError` instead of
    returning wrong answers.
    """

    #: Whole travel-cost-function queries (:meth:`repro.api.Engine.profile`).
    profile: bool = False
    #: Vectorized batch queries (:meth:`repro.api.Engine.batch_query`).
    batch: bool = False
    #: Incremental edge-weight updates (:meth:`repro.api.Engine.update_edges`).
    update: bool = False
    #: Vertex-path reconstruction (:meth:`Route.path`).
    paths: bool = False


@dataclass
class Route:
    """One scalar travel-cost answer of any engine.

    The path is reconstructed lazily: engines that already walked the graph
    (TD-Dijkstra, TD-A*) attach it directly, index engines attach a factory
    that expands tree-level provenance (or re-runs the query with hop
    recording) only when :meth:`path` is first called.
    """

    engine: str
    source: int
    target: int
    departure: float
    cost: float
    #: Lazy caches: excluded from equality so calling ``path()`` on one of two
    #: otherwise-identical routes does not make them compare unequal.
    _path: list[int] | None = field(default=None, repr=False, compare=False)
    _path_factory: Callable[[], list[int]] | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def arrival(self) -> float:
        """Arrival time at the target (``departure + cost``)."""
        return self.departure + self.cost

    def path(self) -> list[int]:
        """The vertex path realising :attr:`cost` (cached after first call)."""
        if self._path is None:
            if self._path_factory is None:
                raise UnsupportedCapabilityError(self.engine, "paths")
            self._path = self._path_factory()
        return self._path


@dataclass
class RouteProfile:
    """A whole travel-cost function ``f_{s,d}(t)`` answered by an engine."""

    engine: str
    source: int
    target: int
    function: "PiecewiseLinearFunction"
    #: Maps a departure time to the vertex path taken at that departure;
    #: wired by engines that support path reconstruction so routes derived
    #: from this profile (:meth:`route_at`) expand like directly-queried ones.
    _path_factory: Callable[[float], list[int]] | None = field(
        default=None, repr=False, compare=False
    )

    def cost_at(self, departure: float) -> float:
        """Evaluate the profile at one departure time."""
        return float(self.function.evaluate(departure))

    def route_at(self, departure: float) -> Route:
        """The profile's answer at one departure, as a :class:`Route`."""
        departure = float(departure)
        factory: Callable[[], list[int]] | None = None
        if self._path_factory is not None:
            path_factory = self._path_factory
            factory = lambda: path_factory(departure)  # noqa: E731
        return Route(
            engine=self.engine,
            source=self.source,
            target=self.target,
            departure=departure,
            cost=self.cost_at(departure),
            _path_factory=factory,
        )

    def best_departure(self, start: float, end: float) -> tuple[float, float]:
        """Exact ``(departure, cost)`` minimising the profile in a window.

        The minimum of a piecewise-linear profile over ``[start, end]`` lies
        at a breakpoint or a window endpoint; exactly those candidates are
        evaluated (no sampling grid), ties resolving to the earliest
        departure.
        """
        return _best_departure(self.function, start, end)


@dataclass(eq=False)
class RouteMatrix:
    """A batch of scalar answers: aligned input arrays plus costs.

    Historically batch results exposed only costs and arrivals; a
    :class:`RouteMatrix` additionally reconstructs per-row vertex paths
    lazily through the engine's path factory (one scalar path-recording
    query per requested row — paths are only worth vectorising if something
    asks for all of them, which serving traffic never does).

    Equality is value-based over the aligned arrays (a generated dataclass
    ``__eq__`` would raise numpy's ambiguous-truth-value error instead of
    returning a bool).
    """

    engine: str
    sources: np.ndarray
    targets: np.ndarray
    departures: np.ndarray
    costs: np.ndarray
    _path_factory: Callable[[int, int, float], list[int]] | None = field(
        default=None, repr=False, compare=False
    )
    _paths: dict[int, list[int]] = field(
        default_factory=dict, repr=False, compare=False
    )

    @property
    def arrivals(self) -> np.ndarray:
        """Arrival times at the targets (``departures + costs``)."""
        return self.departures + self.costs

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RouteMatrix):
            return NotImplemented
        return (
            self.engine == other.engine
            and np.array_equal(self.sources, other.sources)
            and np.array_equal(self.targets, other.targets)
            and np.array_equal(self.departures, other.departures)
            and np.array_equal(self.costs, other.costs)
        )

    def __len__(self) -> int:
        return int(self.costs.size)

    def path(self, i: int) -> list[int]:
        """Vertex path of row ``i`` (computed on first access, then cached)."""
        if i not in self._paths:
            if self._path_factory is None:
                raise UnsupportedCapabilityError(self.engine, "paths")
            self._paths[i] = self._path_factory(
                int(self.sources[i]), int(self.targets[i]), float(self.departures[i])
            )
        return self._paths[i]

    def route(self, i: int) -> Route:
        """Row ``i`` as a :class:`Route` (sharing the lazy path machinery)."""
        source = int(self.sources[i])
        target = int(self.targets[i])
        departure = float(self.departures[i])
        factory: Callable[[], list[int]] | None = None
        if self._path_factory is not None:
            factory = lambda: self.path(i)  # noqa: E731 - tiny closure
        return Route(
            engine=self.engine,
            source=source,
            target=target,
            departure=departure,
            cost=float(self.costs[i]),
            _path=self._paths.get(i),
            _path_factory=factory,
        )

    def __iter__(self) -> Iterator[Route]:
        return (self.route(i) for i in range(len(self)))
