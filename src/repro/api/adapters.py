"""Built-in engines: adapters putting every method behind the one protocol.

Nine engines ship with the library, mirroring the paper's evaluation:

=================== ========================================================
spec name            method
=================== ========================================================
``td-basic``         tree decomposition only (TD-basic)
``td-dp``            shortcuts via the exact DP selection (TD-dp)
``td-appro``         shortcuts via the 0.5-approximation (TD-appro)
``td-full``          every candidate shortcut materialised
``td-h2h``           TD-H2H (same labels as ``td-full``, baseline defaults)
``td-dijkstra``      index-free time-dependent Dijkstra (TD-Dijkstra)
``td-astar``         goal-directed A*, free-flow lower bounds (TD-A*)
``td-astar-landmarks``  A* with ALT landmark bounds
``tdg-tree``         TD-G-tree hierarchical border matrices (TD-G-tree)
=================== ========================================================

Each adapter normalises its method's native results (`EarliestArrivalResult`,
`DijkstraResult`, `GTreeResult`, plain functions) into the shared
:class:`~repro.api.Route` / :class:`~repro.api.RouteMatrix` /
:class:`~repro.api.RouteProfile` types and advertises exactly what it can do
through :class:`~repro.api.EngineCapabilities`.

Adapters also forward unknown attribute reads to the wrapped object (a
migration aid: legacy code reaching for ``index.shortcuts`` or
``index.selection`` keeps working on an engine); new code should use the
typed surface or the explicit ``.index`` handle.
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING, Any, Callable, ClassVar, Mapping

import numpy as np

from repro.api.engine import Engine
from repro.api.registry import parse_engine_spec, register_engine
from repro.api.types import (
    DEFAULT_QUERY_OPTIONS,
    EngineCapabilities,
    QueryOptions,
    Route,
    RouteMatrix,
    RouteProfile,
)
from repro.baselines.td_astar import TDAStar
from repro.baselines.td_dijkstra import TDDijkstra
from repro.baselines.td_h2h import TDH2H
from repro.baselines.tdg_tree import TDGTree
from repro.core.index import TDTreeIndex
from repro.exceptions import EngineSpecError, StaleRouteError, UnsupportedCapabilityError
from repro.graph.td_graph import TDGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.update import UpdateReport
    from repro.functions.piecewise import PiecewiseLinearFunction
    from repro.utils.memory import MemoryBreakdown

__all__ = [
    "EngineAdapter",
    "TDTreeEngine",
    "TDDijkstraEngine",
    "TDAStarEngine",
    "TDGTreeEngine",
]


class EngineAdapter:
    """Shared scaffolding of the built-in engines.

    Subclasses set :attr:`CAPABILITIES` and implement :meth:`query` plus the
    ``_*_impl`` hooks for whatever they advertise; the public ``profile`` /
    ``batch_query`` / ``update_edges`` wrappers enforce the capability flags
    so an unadvertised call always raises
    :class:`~repro.exceptions.UnsupportedCapabilityError`.
    """

    CAPABILITIES: ClassVar[EngineCapabilities] = EngineCapabilities()

    def __init__(self, index: Any, name: str) -> None:
        #: The wrapped native object (a ``TDTreeIndex`` or baseline instance).
        self.index = index
        #: Registry spec name this engine was created under.
        self.name = name
        #: The underlying road network.
        self.graph: TDGraph = index.graph

    # -- protocol ------------------------------------------------------
    def capabilities(self) -> EngineCapabilities:
        """The engine's capability flags."""
        return self.CAPABILITIES

    def query(
        self,
        source: int,
        target: int,
        departure: float,
        *,
        options: QueryOptions | None = None,
    ) -> Route:
        raise NotImplementedError  # pragma: no cover - subclasses implement

    def profile(self, source: int, target: int) -> RouteProfile:
        """Whole travel-cost-function query (gated on ``capabilities().profile``)."""
        self._require("profile")
        return self._profile_impl(int(source), int(target))

    def batch_query(
        self,
        sources: np.ndarray,
        targets: np.ndarray,
        departures: np.ndarray,
        *,
        options: QueryOptions | None = None,
    ) -> RouteMatrix:
        """Vectorized scalar queries (gated on ``capabilities().batch``)."""
        self._require("batch")
        return self._batch_impl(
            sources, targets, departures, options or DEFAULT_QUERY_OPTIONS
        )

    def update_edges(
        self, changes: Mapping[tuple[int, int], "PiecewiseLinearFunction"]
    ) -> "UpdateReport":
        """Apply edge-weight changes (gated on ``capabilities().update``)."""
        self._require("update")
        return self._update_impl(changes)

    def memory_breakdown(self) -> "MemoryBreakdown":
        """Analytic memory footprint of the wrapped method."""
        return self.index.memory_breakdown()

    # -- hooks ---------------------------------------------------------
    def _profile_impl(self, source: int, target: int) -> RouteProfile:
        raise UnsupportedCapabilityError(self.name, "profile")  # pragma: no cover

    def _batch_impl(
        self,
        sources: np.ndarray,
        targets: np.ndarray,
        departures: np.ndarray,
        options: QueryOptions,
    ) -> RouteMatrix:
        raise UnsupportedCapabilityError(self.name, "batch")  # pragma: no cover

    def _update_impl(
        self, changes: Mapping[tuple[int, int], "PiecewiseLinearFunction"]
    ) -> "UpdateReport":
        raise UnsupportedCapabilityError(self.name, "update")  # pragma: no cover

    # -- plumbing ------------------------------------------------------
    def _require(self, capability: str) -> None:
        if not getattr(self.CAPABILITIES, capability):
            raise UnsupportedCapabilityError(self.name, capability)

    def __getattr__(self, attr: str) -> Any:
        # Migration aid: legacy attribute reads (``engine.shortcuts``,
        # ``engine.selection``, ``engine.statistics()``) resolve against the
        # wrapped native object.  Only reached when normal lookup fails.
        try:
            index = object.__getattribute__(self, "index")
        except AttributeError:
            raise AttributeError(attr) from None
        return getattr(index, attr)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(name={self.name!r}, "
            f"vertices={self.graph.num_vertices})"
        )


class _WeakEpochHook:
    """Index invalidation hook that does not keep the engine wrapper alive.

    Wrapping a long-lived index (the documented snapshot-serving pattern)
    must not pin every wrapper ever created: the hook holds only weak
    references and unregisters itself from the index once its engine died —
    the same discipline :class:`repro.serving.QueryService` applies to its
    cache hook.
    """

    __slots__ = ("_engine_ref", "_index_ref")

    def __init__(self, engine: "TDTreeEngine", index: TDTreeIndex) -> None:
        self._engine_ref = weakref.ref(engine)
        self._index_ref = weakref.ref(index)

    def __call__(self) -> None:
        engine = self._engine_ref()
        if engine is not None:
            engine._epoch += 1
            return
        index = self._index_ref()
        if index is not None:
            unregister = getattr(index, "unregister_invalidation_hook", None)
            if unregister is not None:
                unregister(self)


# ----------------------------------------------------------------------
# Tree-decomposition engines (td-basic / td-dp / td-appro / td-full / td-h2h)
# ----------------------------------------------------------------------
class TDTreeEngine(EngineAdapter):
    """Adapter over a built :class:`~repro.core.index.TDTreeIndex`.

    Also the right wrapper for an index loaded from a snapshot::

        engine = TDTreeEngine(TDTreeIndex.load(path), name="td-appro")

    Lazy path reconstruction re-runs the query, so it is only valid while the
    index still answers like it did at query time: every ``update_edges``
    bumps an epoch, and a stale route's ``path()`` raises
    :class:`~repro.exceptions.StaleRouteError` instead of returning a path
    from the updated network that no longer realises the recorded cost.
    ``QueryOptions(want_path=True)`` records provenance at query time and is
    immune.
    """

    CAPABILITIES = EngineCapabilities(profile=True, batch=True, update=True, paths=True)

    index: TDTreeIndex

    def __init__(self, index: TDTreeIndex, name: str) -> None:
        super().__init__(index, name)
        #: Bumped whenever an update changes query answers (see query()).
        self._epoch = 0
        register = getattr(index, "register_invalidation_hook", None)
        if register is not None:
            register(_WeakEpochHook(self, index))

    def query(
        self,
        source: int,
        target: int,
        departure: float,
        *,
        options: QueryOptions | None = None,
    ) -> Route:
        opts = options or DEFAULT_QUERY_OPTIONS
        source, target, departure = int(source), int(target), float(departure)
        result = self.index._query(source, target, departure, need_path=opts.want_path)
        if opts.want_path:
            # Resolve now: hop expansion reads the live tree labels, so only
            # a path materialised at query time is immune to later updates.
            return Route(
                engine=self.name,
                source=source,
                target=target,
                departure=departure,
                cost=float(result.cost),
                _path=result.path(),
            )
        # Lazy: only pay the path traversal if the path is read — guarded by
        # the epoch so a post-update read raises StaleRouteError instead of
        # returning a path from a different network.
        epoch = self._epoch
        return Route(
            engine=self.name,
            source=source,
            target=target,
            departure=departure,
            cost=float(result.cost),
            _path_factory=lambda: self._checked_path(epoch, source, target, departure),
        )

    def _profile_impl(self, source: int, target: int) -> RouteProfile:
        result = self.index._profile(source, target)
        epoch = self._epoch
        return RouteProfile(
            engine=self.name,
            source=source,
            target=target,
            function=result.function,
            _path_factory=lambda d: self._checked_path(epoch, source, target, float(d)),
        )

    def _batch_impl(
        self,
        sources: np.ndarray,
        targets: np.ndarray,
        departures: np.ndarray,
        options: QueryOptions,
    ) -> RouteMatrix:
        result = self.index._batch_query(sources, targets, departures)
        epoch = self._epoch
        matrix = RouteMatrix(
            engine=self.name,
            sources=result.sources,
            targets=result.targets,
            departures=result.departures,
            costs=result.costs,
            _path_factory=lambda s, t, d: self._checked_path(epoch, s, t, d),
        )
        if options.want_path:
            # Record provenance at query time: every row's path is resolved
            # now, so later path(i) reads are immune to index updates.
            for i in range(len(matrix)):
                matrix.path(i)
        return matrix

    def _update_impl(
        self, changes: Mapping[tuple[int, int], "PiecewiseLinearFunction"]
    ) -> "UpdateReport":
        return self.index.update_edges(dict(changes))

    def _checked_path(
        self, epoch: int, source: int, target: int, departure: float
    ) -> list[int]:
        """Reconstruct a path lazily, refusing if the index changed since."""
        if epoch != self._epoch:
            raise StaleRouteError(self.name)
        return self._scalar_path(source, target, departure)

    def _scalar_path(self, source: int, target: int, departure: float) -> list[int]:
        return self.index._query(source, target, departure, need_path=True).path()

    def statistics(self) -> Any:
        """Index statistics (:class:`~repro.core.index.IndexStatistics`)."""
        return self.index.statistics()

    # The serving layer registers its cache-invalidation hooks through the
    # engine, so updates applied via either surface drop stale answers.
    def register_invalidation_hook(self, hook: Callable[[], None]) -> None:
        self.index.register_invalidation_hook(hook)

    def unregister_invalidation_hook(self, hook: Callable[[], None]) -> None:
        self.index.unregister_invalidation_hook(hook)

    @classmethod
    def build(cls, graph: TDGraph, **options: Any) -> "TDTreeEngine":
        """Build from scratch; ``strategy`` selects the td-* configuration."""
        strategy = str(options.pop("strategy", "approx"))
        name = str(options.pop("name", f"td-{'appro' if strategy == 'approx' else strategy}"))
        index = TDTreeIndex._build(graph, strategy=strategy, **options)
        return cls(index, name=name)


# ----------------------------------------------------------------------
# Baseline engines
# ----------------------------------------------------------------------
class _GraphSearchEngine(EngineAdapter):
    """Shared adapter for engines whose backend runs a graph search.

    TD-Dijkstra and TD-A* both return a
    :class:`~repro.baselines.td_dijkstra.DijkstraResult` whose path was
    materialised by the search itself; normalising that into a :class:`Route`
    lives here once.
    """

    def query(
        self,
        source: int,
        target: int,
        departure: float,
        *,
        options: QueryOptions | None = None,
    ) -> Route:
        result = self.index.query(int(source), int(target), float(departure))
        # The search walked the graph anyway: the path is already known.
        return Route(
            engine=self.name,
            source=result.source,
            target=result.target,
            departure=result.departure,
            cost=float(result.cost),
            _path=list(result.path),
        )


class TDDijkstraEngine(_GraphSearchEngine):
    """Index-free exact reference: time-dependent Dijkstra."""

    CAPABILITIES = EngineCapabilities(profile=True, batch=False, update=False, paths=True)

    index: TDDijkstra

    def _profile_impl(self, source: int, target: int) -> RouteProfile:
        function = self.index.profile(source, target)
        return RouteProfile(
            engine=self.name,
            source=source,
            target=target,
            function=function,
            _path_factory=lambda d: list(
                self.index.query(source, target, float(d)).path
            ),
        )

    @classmethod
    def build(cls, graph: TDGraph, **options: Any) -> "TDDijkstraEngine":
        name = str(options.pop("name", "td-dijkstra"))
        return cls(TDDijkstra(graph), name=name)


class TDAStarEngine(_GraphSearchEngine):
    """Goal-directed A* (exact); heuristic chosen at build time."""

    CAPABILITIES = EngineCapabilities(profile=False, batch=False, update=False, paths=True)

    index: TDAStar

    @classmethod
    def build(cls, graph: TDGraph, **options: Any) -> "TDAStarEngine":
        name = str(options.pop("name", "td-astar"))
        return cls(TDAStar.build(graph, **options), name=name)


class TDGTreeEngine(EngineAdapter):
    """TD-G-tree hierarchical border-matrix index (no path reconstruction)."""

    CAPABILITIES = EngineCapabilities(profile=True, batch=False, update=False, paths=False)

    index: TDGTree

    def query(
        self,
        source: int,
        target: int,
        departure: float,
        *,
        options: QueryOptions | None = None,
    ) -> Route:
        result = self.index.query(int(source), int(target), float(departure))
        return Route(
            engine=self.name,
            source=result.source,
            target=result.target,
            departure=result.departure,
            cost=float(result.cost),
        )

    def _profile_impl(self, source: int, target: int) -> RouteProfile:
        function = self.index.profile(source, target)
        return RouteProfile(
            engine=self.name, source=source, target=target, function=function
        )

    @classmethod
    def build(cls, graph: TDGraph, **options: Any) -> "TDGTreeEngine":
        name = str(options.pop("name", "tdg-tree"))
        return cls(TDGTree.build(graph, **options), name=name)


# ----------------------------------------------------------------------
# Registry entries (typed factories: the keyword-only parameters are the
# accepted-option declarations create_engine validates specs against)
# ----------------------------------------------------------------------
def _td_tree_factory(
    graph: TDGraph,
    *,
    name: str,
    strategy: str,
    budget: int | None = None,
    budget_fraction: float | None = None,
    max_points: int | None = 32,
    tolerance: float = 0.0,
    validate: bool = True,
    use_batch_kernels: bool = True,
) -> TDTreeEngine:
    index = TDTreeIndex._build(
        graph,
        strategy=strategy,
        budget=budget,
        budget_fraction=budget_fraction,
        max_points=max_points,
        tolerance=tolerance,
        validate=validate,
        use_batch_kernels=use_batch_kernels,
    )
    return TDTreeEngine(index, name=name)


@register_engine(
    "td-basic",
    description="TFP tree decomposition only, no shortcuts (TD-basic)",
    paper_name="TD-basic",
)
def build_td_basic(
    graph: TDGraph,
    *,
    max_points: int | None = 32,
    tolerance: float = 0.0,
    validate: bool = True,
    use_batch_kernels: bool = True,
) -> Engine:
    """Build the shortcut-free index engine."""
    return _td_tree_factory(
        graph,
        name="td-basic",
        strategy="basic",
        max_points=max_points,
        tolerance=tolerance,
        validate=validate,
        use_batch_kernels=use_batch_kernels,
    )


@register_engine(
    "td-dp",
    description="budgeted shortcuts chosen by the exact DP selection (TD-dp)",
    paper_name="TD-dp",
)
def build_td_dp(
    graph: TDGraph,
    *,
    budget: int | None = None,
    budget_fraction: float | None = None,
    max_points: int | None = 32,
    tolerance: float = 0.0,
    validate: bool = True,
    use_batch_kernels: bool = True,
) -> Engine:
    """Build the exact-DP shortcut-selection engine."""
    return _td_tree_factory(
        graph,
        name="td-dp",
        strategy="dp",
        budget=budget,
        budget_fraction=budget_fraction,
        max_points=max_points,
        tolerance=tolerance,
        validate=validate,
        use_batch_kernels=use_batch_kernels,
    )


@register_engine(
    "td-appro",
    description="budgeted shortcuts via the 0.5-approximation (TD-appro)",
    paper_name="TD-appro",
)
def build_td_appro(
    graph: TDGraph,
    *,
    budget: int | None = None,
    budget_fraction: float | None = None,
    max_points: int | None = 32,
    tolerance: float = 0.0,
    validate: bool = True,
    use_batch_kernels: bool = True,
) -> Engine:
    """Build the greedy 0.5-approximation engine (the paper's headline method)."""
    return _td_tree_factory(
        graph,
        name="td-appro",
        strategy="approx",
        budget=budget,
        budget_fraction=budget_fraction,
        max_points=max_points,
        tolerance=tolerance,
        validate=validate,
        use_batch_kernels=use_batch_kernels,
    )


@register_engine(
    "td-full",
    description="every candidate shortcut materialised (budget-free)",
)
def build_td_full(
    graph: TDGraph,
    *,
    max_points: int | None = 32,
    tolerance: float = 0.0,
    validate: bool = True,
    use_batch_kernels: bool = True,
) -> Engine:
    """Build the full-shortcut engine (largest memory, fastest queries)."""
    return _td_tree_factory(
        graph,
        name="td-full",
        strategy="full",
        max_points=max_points,
        tolerance=tolerance,
        validate=validate,
        use_batch_kernels=use_batch_kernels,
    )


@register_engine(
    "td-h2h",
    description="TD-H2H baseline: full shortcuts with the paper's defaults",
    paper_name="TD-H2H",
)
def build_td_h2h(
    graph: TDGraph,
    *,
    max_points: int | None = 16,
    tolerance: float = 0.0,
    validate: bool = True,
    use_batch_kernels: bool = True,
) -> Engine:
    """Build the TD-H2H baseline (same labels as ``td-full``, 16-point cap)."""
    index = TDH2H._build(
        graph,
        strategy="full",
        max_points=max_points,
        tolerance=tolerance,
        validate=validate,
        use_batch_kernels=use_batch_kernels,
    )
    return TDTreeEngine(index, name="td-h2h")


@register_engine(
    "td-dijkstra",
    description="index-free time-dependent Dijkstra (exact reference)",
    paper_name="TD-Dijkstra",
)
def build_td_dijkstra(graph: TDGraph) -> Engine:
    """Build the index-free reference engine (no options: no preprocessing)."""
    return TDDijkstraEngine(TDDijkstra(graph), name="td-dijkstra")


@register_engine(
    "td-astar",
    description="goal-directed A* with free-flow or landmark lower bounds",
    paper_name="TD-A*",
)
def build_td_astar(
    graph: TDGraph,
    *,
    heuristic: str = "min-cost",
    num_landmarks: int = 8,
    seed: int = 0,
) -> Engine:
    """Build the A* engine (``heuristic``: ``min-cost`` or ``landmarks``)."""
    return TDAStarEngine(
        TDAStar.build(
            graph, heuristic=heuristic, num_landmarks=num_landmarks, seed=seed
        ),
        name="td-astar",
    )


@register_engine(
    "td-astar-landmarks",
    description="A* with ALT landmark lower bounds (cheaper prepare, weaker bound)",
)
def build_td_astar_landmarks(
    graph: TDGraph,
    *,
    num_landmarks: int = 8,
    seed: int = 0,
) -> Engine:
    """Build the landmark-heuristic A* engine."""
    return TDAStarEngine(
        TDAStar.build(
            graph, heuristic="landmarks", num_landmarks=num_landmarks, seed=seed
        ),
        name="td-astar-landmarks",
    )


#: td-* build strategy -> registry spec name, used to name engines rehydrated
#: from snapshots whose manifest predates the ``engine_spec`` field.
_STRATEGY_SPEC_NAMES = {
    "basic": "td-basic",
    "dp": "td-dp",
    "approx": "td-appro",
    "full": "td-full",
}


@register_engine(
    "snapshot",
    description="rehydrate a saved index snapshot (spec form: snapshot:<directory>)",
    graph_optional=True,
)
def build_snapshot_engine(
    graph: TDGraph | None = None,
    *,
    path: str,
    name: str | None = None,
    mmap_mode: str | None = None,
) -> Engine:
    """Load the snapshot directory ``path`` into a servable engine.

    The spec form is ``"snapshot:<directory>"`` — the scheme argument becomes
    the ``path`` option.  The engine is named after the manifest's
    ``engine_spec`` (recorded by :func:`repro.persistence.save_index` when
    the spec is known), falling back to the build strategy for manifests
    written before that field existed; pass ``name=...`` to override.
    Snapshots embed their graph, so passing one is a usage error, not a
    merge.

    ``mmap_mode="r"`` (spec form ``"snapshot:<dir>?mmap_mode=r"``) maps the
    array buffers instead of copying them, so co-resident processes serving
    the same snapshot share one physical copy — the replica workers of
    :class:`~repro.serving.replica.ReplicaPool` rehydrate this way.
    """
    from repro.persistence import load_index, read_manifest

    if graph is not None:
        raise EngineSpecError(
            "snapshot engines embed their own graph; build with "
            "create_engine('snapshot:<path>', graph=None)"
        )
    manifest = read_manifest(path)
    if name is None:
        recorded = manifest.get("engine_spec")
        if recorded:
            name = parse_engine_spec(str(recorded))[0]
        else:
            name = _STRATEGY_SPEC_NAMES.get(
                str(manifest.get("strategy", "")), "td-snapshot"
            )
    return TDTreeEngine(load_index(path, mmap_mode=mmap_mode), name=name)


@register_engine(
    "faulty",
    description="fault-injection wrapper over any engine (spec form: faulty:<inner-spec>)",
    graph_optional=True,
)
def build_faulty_engine(
    graph: TDGraph | None = None,
    *,
    path: str,
    fail_batch: int = 0,
    crash_batch: int = 0,
    poison_from: int = 0,
    latency_every: int = 0,
    latency_ms: float = 0.0,
    seed: int = 0,
    **inner_options: Any,
) -> Engine:
    """Wrap the inner engine spec ``path`` in a deterministic fault injector.

    The spec form is ``"faulty:<inner-spec>"`` — e.g.
    ``"faulty:td-appro?crash_batch=3&budget_fraction=0.4"``.  The fault
    options configure the :class:`~repro.serving.faults.FaultPlan`; every
    other option is forwarded to the inner engine's factory.  ``graph`` is
    optional only because the inner spec may be (``"faulty:snapshot:/dir"``);
    graph-requiring inner engines still demand one.
    """
    from repro.api import create_engine
    from repro.serving.faults import FaultPlan, FaultyEngine

    inner = create_engine(path, graph, **inner_options)
    plan = FaultPlan(
        fail_batch=int(fail_batch),
        crash_batch=int(crash_batch),
        poison_from=int(poison_from),
        latency_every=int(latency_every),
        latency_ms=float(latency_ms),
        seed=int(seed),
    )
    return FaultyEngine(inner, plan)


@register_engine(
    "tdg-tree",
    description="TD-G-tree hierarchical border-matrix index (VLDB'19 baseline)",
    paper_name="TD-G-tree",
)
def build_tdg_tree(
    graph: TDGraph,
    *,
    leaf_size: int = 24,
    max_points: int | None = 16,
) -> Engine:
    """Build the TD-G-tree baseline engine."""
    return TDGTreeEngine(
        TDGTree.build(graph, leaf_size=leaf_size, max_points=max_points),
        name="tdg-tree",
    )
