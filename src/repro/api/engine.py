"""The :class:`Engine` protocol — one typed interface for every method.

The paper's evaluation pits TD-basic/TD-dp/TD-appro/TD-full against
TD-Dijkstra, TD-A*, TD-G-tree and TD-H2H; in this library all nine are
*engines*: objects satisfying the structural protocol below.  Workload code
(the experiment runners, the serving layer, the contract test-suite) is
written once against the protocol and runs against any registered engine.

Construction is the registry's job — :func:`repro.api.create_engine` resolves
a spec string to a build factory and returns a ready engine — so the protocol
itself covers the built surface: ``query`` and ``capabilities`` are
mandatory, ``profile`` / ``batch_query`` / ``update_edges`` are present on
every engine but advertised via :class:`~repro.api.EngineCapabilities`
flags and raise :class:`~repro.exceptions.UnsupportedCapabilityError` when
unadvertised.  Engine classes conventionally also expose a ``build``
classmethod (``Engine.build(graph, **options)``) that mirrors their
registered factory.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Protocol, runtime_checkable

from repro.api.types import EngineCapabilities, QueryOptions, Route, RouteMatrix, RouteProfile

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.functions.piecewise import PiecewiseLinearFunction
    from repro.graph.td_graph import TDGraph
    from repro.utils.memory import MemoryBreakdown

__all__ = ["Engine", "engine_supports"]


def engine_supports(engine: object, capability: str) -> bool:
    """True when ``engine`` advertises ``capability`` (profile/batch/...).

    The single place encoding the engine-vs-legacy probe: objects exposing
    ``capabilities()`` are asked; anything else (a bare
    :class:`~repro.core.index.TDTreeIndex` or third-party lookalike that
    predates the flags) falls back to attribute probing.  Both the serving
    layer and the experiment runners route through this helper so the two
    can never disagree about what an object supports.
    """
    capabilities = getattr(engine, "capabilities", None)
    if callable(capabilities):
        return bool(getattr(capabilities(), capability, False))
    legacy_attr = {
        "profile": "profile",
        "batch": "batch_query",
        "update": "update_edges",
    }
    return hasattr(engine, legacy_attr.get(capability, capability))


@runtime_checkable
class Engine(Protocol):
    """Structural interface every query engine implements.

    ``isinstance(obj, Engine)`` checks method presence (it cannot check
    signatures); the shared contract suite in ``tests/api`` checks behaviour.
    """

    #: Registry spec name of the engine (``"td-appro"``, ``"td-dijkstra"``...).
    name: str
    #: The time-dependent road network the engine answers queries over.
    graph: "TDGraph"

    def capabilities(self) -> EngineCapabilities:
        """Which optional protocol methods this engine supports."""
        ...

    def query(
        self,
        source: int,
        target: int,
        departure: float,
        *,
        options: QueryOptions | None = None,
    ) -> Route:
        """Scalar travel-cost query: minimum cost departing at ``departure``."""
        ...

    def profile(self, source: int, target: int) -> RouteProfile:
        """Whole travel-cost-function query (requires ``capabilities().profile``)."""
        ...

    def batch_query(
        self,
        sources: "np.ndarray",
        targets: "np.ndarray",
        departures: "np.ndarray",
        *,
        options: QueryOptions | None = None,
    ) -> RouteMatrix:
        """Vectorized scalar queries (requires ``capabilities().batch``)."""
        ...

    def update_edges(
        self, changes: Mapping[tuple[int, int], "PiecewiseLinearFunction"]
    ) -> object:
        """Apply edge-weight changes (requires ``capabilities().update``)."""
        ...

    def memory_breakdown(self) -> "MemoryBreakdown":
        """Analytic memory footprint of whatever the engine stores."""
        ...
