"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the individual failure modes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidFunctionError",
    "GraphError",
    "EdgeNotFoundError",
    "VertexNotFoundError",
    "DisconnectedQueryError",
    "IndexNotBuiltError",
    "IndexBuildError",
    "SelectionError",
    "DatasetError",
    "SerializationError",
    "SnapshotError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class InvalidFunctionError(ReproError, ValueError):
    """A piecewise-linear travel-cost function is malformed.

    Raised when breakpoint times are not strictly increasing, costs are
    negative, array shapes disagree, or a function violates the FIFO property
    in a context that requires it.
    """


class GraphError(ReproError, ValueError):
    """A time-dependent graph is malformed or an operation on it is invalid."""


class VertexNotFoundError(GraphError, KeyError):
    """A referenced vertex does not exist in the graph."""

    def __init__(self, vertex: object):
        super().__init__(f"vertex {vertex!r} is not in the graph")
        self.vertex = vertex


class EdgeNotFoundError(GraphError, KeyError):
    """A referenced edge does not exist in the graph."""

    def __init__(self, source: object, target: object):
        super().__init__(f"edge ({source!r}, {target!r}) is not in the graph")
        self.source = source
        self.target = target


class DisconnectedQueryError(ReproError):
    """The destination is not reachable from the source at the query time."""

    def __init__(self, source: object, target: object):
        super().__init__(
            f"no time-dependent path from {source!r} to {target!r} exists"
        )
        self.source = source
        self.target = target


class IndexNotBuiltError(ReproError, RuntimeError):
    """An index operation was attempted before the index was built."""


class IndexBuildError(ReproError, RuntimeError):
    """Index construction failed."""


class SelectionError(ReproError, ValueError):
    """Shortcut selection received invalid parameters (e.g. negative budget)."""


class DatasetError(ReproError, ValueError):
    """A dataset name or configuration is unknown or inconsistent."""


class SerializationError(ReproError, ValueError):
    """Loading or saving a graph/index from disk failed."""


class SnapshotError(SerializationError):
    """An index snapshot is missing, corrupt, or has an incompatible version."""
