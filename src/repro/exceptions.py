"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the individual failure modes.

Errors with parameterized constructors (``VertexNotFoundError(vertex)``,
``WorkerCrashedError(deployment, cause)``, ...) define ``__reduce__``
explicitly: the default ``Exception`` reduction replays ``self.args`` — the
*formatted message* — into ``__init__``, which either raises ``TypeError`` or
silently corrupts the typed attributes on unpickle.  The serving layer ships
these errors across process boundaries (replica workers answer over
``multiprocessing`` queues), so every typed error must survive a pickle
round-trip with its attributes intact; ``tests/test_exceptions.py`` enforces
this for the whole hierarchy.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidFunctionError",
    "GraphError",
    "EdgeNotFoundError",
    "VertexNotFoundError",
    "DisconnectedQueryError",
    "IndexNotBuiltError",
    "IndexBuildError",
    "SelectionError",
    "DatasetError",
    "SerializationError",
    "SnapshotError",
    "EngineError",
    "UnknownEngineError",
    "EngineSpecError",
    "UnknownEngineOptionError",
    "UnsupportedCapabilityError",
    "StaleRouteError",
    "ServiceClosedError",
    "AdmissionRejectedError",
    "DeadlineExceededError",
    "WorkerCrashedError",
    "HostError",
    "UnknownDeploymentError",
    "DuplicateDeploymentError",
    "TrafficControlError",
    "NoTrafficControllerError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class InvalidFunctionError(ReproError, ValueError):
    """A piecewise-linear travel-cost function is malformed.

    Raised when breakpoint times are not strictly increasing, costs are
    negative, array shapes disagree, or a function violates the FIFO property
    in a context that requires it.
    """


class GraphError(ReproError, ValueError):
    """A time-dependent graph is malformed or an operation on it is invalid."""


class VertexNotFoundError(GraphError, KeyError):
    """A referenced vertex does not exist in the graph."""

    def __init__(self, vertex: object):
        super().__init__(f"vertex {vertex!r} is not in the graph")
        self.vertex = vertex

    def __reduce__(self):
        return (type(self), (self.vertex,))


class EdgeNotFoundError(GraphError, KeyError):
    """A referenced edge does not exist in the graph."""

    def __init__(self, source: object, target: object):
        super().__init__(f"edge ({source!r}, {target!r}) is not in the graph")
        self.source = source
        self.target = target

    def __reduce__(self):
        return (type(self), (self.source, self.target))


class DisconnectedQueryError(ReproError):
    """The destination is not reachable from the source at the query time."""

    def __init__(self, source: object, target: object):
        super().__init__(
            f"no time-dependent path from {source!r} to {target!r} exists"
        )
        self.source = source
        self.target = target

    def __reduce__(self):
        return (type(self), (self.source, self.target))


class IndexNotBuiltError(ReproError, RuntimeError):
    """An index operation was attempted before the index was built."""


class IndexBuildError(ReproError, RuntimeError):
    """Index construction failed."""


class SelectionError(ReproError, ValueError):
    """Shortcut selection received invalid parameters (e.g. negative budget)."""


class DatasetError(ReproError, ValueError):
    """A dataset name or configuration is unknown or inconsistent."""


class SerializationError(ReproError, ValueError):
    """Loading or saving a graph/index from disk failed."""


class SnapshotError(SerializationError):
    """An index snapshot is missing, corrupt, or has an incompatible version."""


class EngineError(ReproError):
    """Base class for errors raised by the :mod:`repro.api` engine layer."""


class UnknownEngineError(EngineError, KeyError):
    """An engine spec names an engine that is not registered."""

    def __init__(self, name: str, available: tuple[str, ...] = ()):
        hint = f"; registered engines: {', '.join(available)}" if available else ""
        super().__init__(f"unknown engine {name!r}{hint}")
        self.name = name
        self.available = available

    def __str__(self) -> str:
        # KeyError.__str__ returns repr(args[0]), which would wrap the whole
        # message in quotes; show the plain message instead.
        return str(self.args[0]) if self.args else ""

    def __reduce__(self):
        return (type(self), (self.name, self.available))


class EngineSpecError(EngineError, ValueError):
    """An engine spec string is malformed (bad name or query-string options)."""


class UnknownEngineOptionError(EngineError, TypeError):
    """An engine was given an option its build factory does not accept."""

    def __init__(self, engine: str, option: str, accepted: tuple[str, ...] = ()):
        hint = (
            f"; accepted options: {', '.join(accepted)}"
            if accepted
            else " (this engine takes no options)"
        )
        super().__init__(f"engine {engine!r} does not accept option {option!r}{hint}")
        self.engine = engine
        self.option = option
        self.accepted = accepted

    def __reduce__(self):
        return (type(self), (self.engine, self.option, self.accepted))


class StaleRouteError(EngineError, RuntimeError):
    """A lazily-reconstructed path was requested after the index changed.

    Route costs are snapshots of the network at query time; reconstructing
    the path against an index that has since been updated could return a path
    that does not realise the recorded cost.  Re-run the query, or pass
    ``QueryOptions(want_path=True)`` to record provenance at query time.
    """

    def __init__(self, engine: str):
        super().__init__(
            f"engine {engine!r} was updated after this result was computed; "
            "re-run the query, or request paths eagerly with "
            "QueryOptions(want_path=True)"
        )
        self.engine = engine

    def __reduce__(self):
        return (type(self), (self.engine,))


class ServiceClosedError(ReproError, RuntimeError):
    """A query was submitted to a :class:`~repro.serving.QueryService` after
    :meth:`~repro.serving.QueryService.close`.

    Subclasses :class:`RuntimeError` for drop-in compatibility with code that
    caught the untyped error raised before this class existed.  The
    :class:`~repro.serving.EngineHost` hot-swap path relies on this being a
    *dedicated* type: a submitter racing a swap catches exactly this error
    and retries against the replacement service.
    """

    def __init__(self, operation: str = "submit"):
        super().__init__(
            f"cannot {operation}: this QueryService has been closed "
            "(a swapped-out deployment? re-resolve the service and retry)"
        )
        self.operation = operation

    def __reduce__(self):
        return (type(self), (self.operation,))


class AdmissionRejectedError(ReproError, RuntimeError):
    """A query was shed at admission because the service is over capacity.

    Raised by :meth:`~repro.serving.QueryService.submit` when ``max_pending``
    queries are already in flight and the overflow policy is ``"shed"`` (or a
    ``"block"`` wait ran past its admission timeout).  Shedding is the
    overload contract: the caller gets an immediate, typed rejection it can
    retry with backoff (see :func:`~repro.serving.retry_submit`) instead of a
    latency cliff for everyone.
    """

    def __init__(self, max_pending: int, policy: str = "shed"):
        super().__init__(
            f"admission queue full ({max_pending} queries in flight, "
            f"policy={policy!r}): query shed — back off and retry"
        )
        self.max_pending = max_pending
        self.policy = policy

    def __reduce__(self):
        return (type(self), (self.max_pending, self.policy))


class DeadlineExceededError(ReproError, TimeoutError):
    """A submitted query's deadline elapsed before an answer was delivered.

    Settles the :class:`~repro.serving.ServiceFuture` (it never blocks a
    consumer past the deadline, even if the worker is wedged inside the
    engine).  Subclasses :class:`TimeoutError` so callers treating deadlines
    as plain timeouts keep working.
    """

    def __init__(self, deadline_ms: float | None = None):
        detail = f" ({deadline_ms:g} ms)" if deadline_ms is not None else ""
        super().__init__(
            f"query deadline{detail} elapsed before an answer was delivered"
        )
        self.deadline_ms = deadline_ms

    def __reduce__(self):
        return (type(self), (self.deadline_ms,))


class WorkerCrashedError(ReproError, RuntimeError):
    """A serving worker died or wedged and its in-flight queries were failed.

    Raised into the futures a supervisor aborts when it detects a dead
    flusher thread, a wedged batch, or a persistently failing engine; also
    raised by :meth:`~repro.serving.EngineHost.submit` when a deployment is
    ``UNHEALTHY`` and no fallback engine is configured.
    """

    def __init__(self, deployment: str, cause: str):
        super().__init__(
            f"serving worker for {deployment!r} crashed: {cause} "
            "(in-flight queries failed; the supervisor restarts the service)"
        )
        self.deployment = deployment
        self.cause = cause

    def __reduce__(self):
        return (type(self), (self.deployment, self.cause))


class HostError(ReproError):
    """Base class for errors raised by :class:`~repro.serving.EngineHost`."""


class UnknownDeploymentError(HostError, KeyError):
    """A host operation referenced a deployment name that does not exist."""

    def __init__(self, name: str, available: tuple[str, ...] = ()):
        hint = f"; active deployments: {', '.join(available)}" if available else (
            "; no deployments are active"
        )
        super().__init__(f"unknown deployment {name!r}{hint}")
        self.name = name
        self.available = available

    def __str__(self) -> str:
        # KeyError.__str__ returns repr(args[0]); show the plain message.
        return str(self.args[0]) if self.args else ""

    def __reduce__(self):
        return (type(self), (self.name, self.available))


class DuplicateDeploymentError(HostError, ValueError):
    """``deploy`` was asked to reuse a live deployment name (use ``swap``)."""

    def __init__(self, name: str):
        super().__init__(
            f"deployment {name!r} already exists; use swap({name!r}, ...) to "
            "replace its engine without downtime, or undeploy it first"
        )
        self.name = name

    def __reduce__(self):
        return (type(self), (self.name,))


class TrafficControlError(ReproError, RuntimeError):
    """Base class for errors raised by the :mod:`repro.traffic` control loop."""


class NoTrafficControllerError(TrafficControlError, KeyError):
    """An update was routed to a deployment with no attached controller.

    The gateway's ``POST /v1/deployments/{name}/updates`` route only works
    for deployments whose :class:`~repro.traffic.TrafficController` was
    registered with ``GatewayApp.attach_controller``; everything else gets
    this typed 404 instead of a silent drop.
    """

    def __init__(self, deployment: str, available: tuple[str, ...] = ()):
        hint = (
            f"; deployments with controllers: {', '.join(available)}"
            if available
            else "; no traffic controllers are attached"
        )
        super().__init__(
            f"no traffic controller attached for deployment {deployment!r}{hint}"
        )
        self.deployment = deployment
        self.available = available

    def __str__(self) -> str:
        # KeyError.__str__ returns repr(args[0]); show the plain message.
        return str(self.args[0]) if self.args else ""

    def __reduce__(self):
        return (type(self), (self.deployment, self.available))


class UnsupportedCapabilityError(EngineError, RuntimeError):
    """An engine method was called that the engine does not advertise.

    Check :meth:`repro.api.Engine.capabilities` before calling ``profile``,
    ``batch_query`` or ``update_edges`` on an arbitrary engine.
    """

    def __init__(self, engine: str, capability: str):
        super().__init__(
            f"engine {engine!r} does not support {capability!r} "
            f"(capabilities().{capability} is False)"
        )
        self.engine = engine
        self.capability = capability

    def __reduce__(self):
        return (type(self), (self.engine, self.capability))
