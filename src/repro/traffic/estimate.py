"""Dirty-cone estimation: how much index would an update touch?

The policy layer must predict the cost of patching in place *before*
committing to it.  The incremental repair in
:func:`repro.core.update.apply_edge_updates` walks dirty vertices bottom-up
in elimination order, propagating through tree-decomposition bags whenever a
recomputed bag function actually changed.  :func:`estimate_dirty_vertices`
simulates exactly that walk *structurally* — assuming every dirty recompute
changes — so it is a **sound upper bound** on the repair's
``num_dirty_vertices`` for any update, and **exact** for saturating updates
(changes large enough that every recomputed bag function moves, e.g. a
closure or a large incident delay), because then the structural cone and the
value cone coincide.

The simulation costs set operations over bag members only — no PLF
arithmetic — so it is orders of magnitude cheaper than the repair it
predicts, cheap enough to run on every control step.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterable

__all__ = ["estimate_dirty_vertices"]


def estimate_dirty_vertices(
    tree: Any, changed_edges: Iterable[tuple[int, int]]
) -> int:
    """Upper-bound the vertices :func:`apply_edge_updates` would process.

    Parameters
    ----------
    tree:
        The built index's tree decomposition
        (:attr:`repro.core.index.TDTreeIndex.tree`), read-only.
    changed_edges:
        The ``(source, target)`` pairs of the update batch (direction
        irrelevant; both orientations are seeded, as in the repair).

    Mirrors the repair's heap loop structure for structure: seed the lower
    endpoint of every changed edge, pop in elimination order, and whenever a
    popped vertex holds a dirty bag function assume the recompute changed —
    dirtying all bag-pair edges and enqueueing unprocessed bag members.
    """
    dirty_edges: set[tuple[int, int]] = set()
    seeds: set[int] = set()
    for source, target in changed_edges:
        dirty_edges.add((source, target))
        dirty_edges.add((target, source))
        seeds.add(min((source, target), key=lambda v: tree.nodes[v].order))
    if not seeds:
        return 0

    heap: list[tuple[int, int]] = [(tree.nodes[v].order, v) for v in seeds]
    heapq.heapify(heap)
    queued: set[int] = set(seeds)
    processed: set[int] = set()
    while heap:
        _, vertex = heapq.heappop(heap)
        processed.add(vertex)
        node = tree.nodes[vertex]
        touched = any(
            (vertex, b) in dirty_edges or (b, vertex) in dirty_edges
            for b in node.bag
        )
        if not touched:
            continue
        for a in node.bag:
            for b in node.bag:
                if a != b:
                    dirty_edges.add((a, b))
        for b in node.bag:
            if b not in processed and b not in queued:
                heapq.heappush(heap, (tree.nodes[b].order, b))
                queued.add(b)
    return len(processed)
