"""Live-traffic control loop: streaming updates, patch-vs-swap policy.

The layer that turns a static index server into a live system.  Edge-weight
events stream into an :class:`UpdateStream`; a :class:`TrafficController`
coalesces them per edge, asks an :class:`UpdatePolicy` whether to patch the
live index in place, patch a snapshot clone and hot-swap it, or rebuild in
the background — and executes the choice through
:class:`~repro.serving.EngineHost` without ever blocking the query path.
Staleness (seconds from event to servable answer) is the loop's first-class
metric: ``repro_traffic_staleness_seconds``, per-action counters, and
``traffic.*`` events.  :class:`ScenarioDriver` generates seeded rush-hour
waves, rolling closures, and flash incidents for tests and
``benchmarks/bench_traffic.py``.

Quick start::

    controller = TrafficController(host, "prod")
    controller.start(interval_seconds=0.25)       # background control loop
    controller.emit_delay(3, 17, 600.0)           # incident: +10 min
    ...
    controller.emit_delay(3, 17, 0.0)             # incident clears
    controller.stats().staleness_p99_s
"""

from __future__ import annotations

from repro.traffic.controller import (
    STALENESS_BUCKETS_S,
    ControlReport,
    TrafficController,
    TrafficStats,
)
from repro.traffic.estimate import estimate_dirty_vertices
from repro.traffic.policy import (
    ACTION_CLONE_SWAP,
    ACTION_PATCH,
    ACTION_REBUILD,
    ACTIONS,
    AdaptivePolicy,
    CostModel,
    FixedPolicy,
    PolicyDecision,
    PolicyObservation,
    UpdatePolicy,
)
from repro.traffic.scenarios import ScenarioDriver, ScenarioEvent
from repro.traffic.stream import EdgeUpdate, UpdateStream

__all__ = [
    # control loop
    "TrafficController",
    "ControlReport",
    "TrafficStats",
    "STALENESS_BUCKETS_S",
    # stream
    "EdgeUpdate",
    "UpdateStream",
    # policy
    "ACTION_PATCH",
    "ACTION_CLONE_SWAP",
    "ACTION_REBUILD",
    "ACTIONS",
    "UpdatePolicy",
    "AdaptivePolicy",
    "FixedPolicy",
    "PolicyObservation",
    "PolicyDecision",
    "CostModel",
    # estimation
    "estimate_dirty_vertices",
    # scenarios
    "ScenarioDriver",
    "ScenarioEvent",
]
