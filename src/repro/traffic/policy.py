"""Patch-vs-swap policy: *when* to repair in place, clone, or rebuild.

``BENCH_fig10_update.json`` shows the incremental repair's cost approaching
full-rebuild cost by ~100 changed edges, so the choice between the three
maintenance actions is a real online decision:

* ``patch`` — repair the live index in place
  (:meth:`EngineHost.apply_updates`).  Cheapest for small dirty cones, but
  queries racing the repair may transiently see mixed old/new weights, so
  it is only safe at low qps.
* ``clone_swap`` — snapshot, patch the clone, hot-swap
  (:meth:`EngineHost.snapshot` → ``update_edges`` → :meth:`EngineHost.swap`).
  Never exposes a half-repaired index; costs a snapshot round-trip.
* ``rebuild`` — rebuild from the patched graph and swap.  The trivial upper
  bound that wins once most of the tree is dirty anyway.

:class:`AdaptivePolicy` decides from the observed state
(:class:`PolicyObservation`): the estimated dirty fraction gates patch vs
rebuild structurally, live qps vetoes in-place patching, and the measured
per-action cost EWMAs (:class:`CostModel`) break the tie in the middle band
— the controller learns on its own workload which action is actually cheap.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping, Protocol

__all__ = [
    "ACTION_PATCH",
    "ACTION_CLONE_SWAP",
    "ACTION_REBUILD",
    "ACTIONS",
    "PolicyObservation",
    "PolicyDecision",
    "UpdatePolicy",
    "AdaptivePolicy",
    "FixedPolicy",
    "CostModel",
]

#: Repair the live index in place (transient mixed answers; cheapest).
ACTION_PATCH = "patch"
#: Snapshot → patch the clone → zero-downtime swap (never mixed).
ACTION_CLONE_SWAP = "clone_swap"
#: Rebuild from the patched graph → swap (the paper's trivial upper bound).
ACTION_REBUILD = "rebuild"
#: Every action a policy may return, in escalation order.
ACTIONS = (ACTION_PATCH, ACTION_CLONE_SWAP, ACTION_REBUILD)


@dataclass(frozen=True)
class PolicyObservation:
    """What the controller knows at decision time (one control step)."""

    #: Raw events drained this step (before per-edge coalescing).
    raw_updates: int
    #: Distinct edges in the coalesced batch.
    coalesced_edges: int
    #: Structural upper bound on vertices an in-place repair would touch
    #: (:func:`repro.traffic.estimate_dirty_vertices`).
    dirty_estimate: int
    #: Vertices in the served graph (the denominator of the dirty fraction).
    num_vertices: int
    #: Observed queries/second against the deployment since the last step.
    qps: float
    #: Age of the oldest un-applied event, seconds (staleness floor).
    backlog_age_seconds: float
    #: Measured cost EWMA per action, seconds; missing key = never measured.
    expected_cost: Mapping[str, float] = field(
        default_factory=lambda: MappingProxyType({})
    )

    @property
    def dirty_fraction(self) -> float:
        """``dirty_estimate`` over the graph size, clamped to [0, 1]."""
        if self.num_vertices <= 0:
            return 1.0
        return min(self.dirty_estimate / self.num_vertices, 1.0)


@dataclass(frozen=True)
class PolicyDecision:
    """An action plus the human-readable reason it was chosen."""

    action: str
    reason: str


class UpdatePolicy(Protocol):
    """The pluggable decision interface of the controller."""

    def decide(self, observation: PolicyObservation) -> PolicyDecision:
        """Choose one of :data:`ACTIONS` for this batch."""
        ...


class CostModel:
    """Per-action cost EWMAs, learned from the controller's own executions.

    ``observe`` folds one measured execution in; ``expect`` returns the
    current estimate (None before the first observation — policies must
    treat unmeasured actions structurally, not as free).  Thread-safe: the
    gateway may snapshot stats while the control loop records.
    """

    def __init__(self, alpha: float = 0.3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._lock = threading.Lock()
        self._ewma: dict[str, float] = {}
        self._counts: dict[str, int] = {}

    def observe(self, action: str, seconds: float) -> None:
        with self._lock:
            previous = self._ewma.get(action)
            if previous is None:
                self._ewma[action] = float(seconds)
            else:
                self._ewma[action] = (
                    self.alpha * float(seconds) + (1.0 - self.alpha) * previous
                )
            self._counts[action] = self._counts.get(action, 0) + 1

    def expect(self, action: str) -> float | None:
        with self._lock:
            return self._ewma.get(action)

    def snapshot(self) -> Mapping[str, float]:
        """An immutable view of every measured EWMA (for observations)."""
        with self._lock:
            return MappingProxyType(dict(self._ewma))

    def observations(self, action: str) -> int:
        with self._lock:
            return self._counts.get(action, 0)

    def __repr__(self) -> str:
        with self._lock:
            pairs = ", ".join(
                f"{action}={seconds:.3f}s" for action, seconds in self._ewma.items()
            )
        return f"CostModel({pairs or 'unmeasured'})"


class AdaptivePolicy:
    """The default decision rule: structure gates, measurements arbitrate.

    1. ``dirty_fraction >= rebuild_dirty_fraction`` → **rebuild** (the
       repair would walk most of the tree anyway; Fig. 10's crossover).
    2. ``dirty_fraction <= patch_dirty_fraction`` *and* ``qps <=
       patch_max_qps`` → **patch** (small cone, light traffic — nobody is
       watching the transient).
    3. Otherwise → **clone_swap**, unless both clone-swap and rebuild have
       been measured and rebuild's EWMA is cheaper (small scaled graphs
       land there: a fresh build can undercut snapshot + patch + load).

    Deterministic given the observation — the property tests replay it.
    """

    def __init__(
        self,
        *,
        patch_dirty_fraction: float = 0.10,
        rebuild_dirty_fraction: float = 0.50,
        patch_max_qps: float = 50.0,
    ) -> None:
        if not 0.0 <= patch_dirty_fraction <= rebuild_dirty_fraction <= 1.0:
            raise ValueError(
                "thresholds must satisfy 0 <= patch_dirty_fraction <= "
                f"rebuild_dirty_fraction <= 1, got {patch_dirty_fraction} "
                f"and {rebuild_dirty_fraction}"
            )
        self.patch_dirty_fraction = patch_dirty_fraction
        self.rebuild_dirty_fraction = rebuild_dirty_fraction
        self.patch_max_qps = patch_max_qps

    def decide(self, observation: PolicyObservation) -> PolicyDecision:
        fraction = observation.dirty_fraction
        if fraction >= self.rebuild_dirty_fraction:
            return PolicyDecision(
                ACTION_REBUILD,
                f"dirty fraction {fraction:.0%} >= "
                f"{self.rebuild_dirty_fraction:.0%}: incremental repair "
                "would walk most of the tree",
            )
        if fraction <= self.patch_dirty_fraction:
            if observation.qps <= self.patch_max_qps:
                return PolicyDecision(
                    ACTION_PATCH,
                    f"dirty fraction {fraction:.0%} <= "
                    f"{self.patch_dirty_fraction:.0%} at {observation.qps:.0f} "
                    f"qps (<= {self.patch_max_qps:.0f}): in-place repair is "
                    "cheap and lightly observed",
                )
            return PolicyDecision(
                ACTION_CLONE_SWAP,
                f"small dirty cone but {observation.qps:.0f} qps > "
                f"{self.patch_max_qps:.0f}: too much live traffic to patch "
                "under readers",
            )
        clone_cost = observation.expected_cost.get(ACTION_CLONE_SWAP)
        rebuild_cost = observation.expected_cost.get(ACTION_REBUILD)
        if (
            clone_cost is not None
            and rebuild_cost is not None
            and rebuild_cost < clone_cost
        ):
            return PolicyDecision(
                ACTION_REBUILD,
                f"measured rebuild EWMA {rebuild_cost:.3f}s beats clone-swap "
                f"{clone_cost:.3f}s in the middle band",
            )
        return PolicyDecision(
            ACTION_CLONE_SWAP,
            f"dirty fraction {fraction:.0%} in "
            f"({self.patch_dirty_fraction:.0%}, "
            f"{self.rebuild_dirty_fraction:.0%}): patch the clone, swap",
        )

    def __repr__(self) -> str:
        return (
            f"AdaptivePolicy(patch<={self.patch_dirty_fraction:.0%}, "
            f"rebuild>={self.rebuild_dirty_fraction:.0%}, "
            f"patch_max_qps={self.patch_max_qps:g})"
        )


class FixedPolicy:
    """Always the same action — test scaffolding and manual overrides."""

    def __init__(self, action: str) -> None:
        if action not in ACTIONS:
            raise ValueError(f"unknown action {action!r}; expected one of {ACTIONS}")
        self.action = action

    def decide(self, observation: PolicyObservation) -> PolicyDecision:
        return PolicyDecision(self.action, f"fixed policy: always {self.action}")

    def __repr__(self) -> str:
        return f"FixedPolicy({self.action!r})"
