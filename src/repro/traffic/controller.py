"""The live-traffic control loop: stream in, policy decision, index out.

:class:`TrafficController` closes the loop the PR 5–9 primitives left open:
edge-weight events arrive on an :class:`~repro.traffic.UpdateStream`, each
control step coalesces them per edge (latest weight wins), asks the
:class:`~repro.traffic.UpdatePolicy` which maintenance action fits the
observed state, and executes it through the
:class:`~repro.serving.EngineHost` — **never on the query path**:

* ``patch`` → :meth:`EngineHost.apply_updates` (in-place incremental
  repair, serialized against swaps by the deployment's swap lock);
* ``clone_swap`` → :meth:`EngineHost.snapshot` → load the clone → patch the
  clone → :meth:`EngineHost.swap` (queries keep flowing against the old
  engine until the atomic flip);
* ``rebuild`` → copy + patch the graph → :meth:`EngineHost.swap` with a
  build spec (the old engine serves throughout the build).

Staleness — seconds from ``event_at`` to the moment a servable answer
reflects the event — is the loop's first-class health signal: every applied
event lands in the ``repro_traffic_staleness_seconds`` histogram, every
action in ``repro_traffic_actions_total``, and every step emits a
``traffic.action`` event.
"""

from __future__ import annotations

import shutil
import tempfile
import threading
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from types import MappingProxyType
from typing import Any, Deque, Iterable, Mapping, Optional

from repro.exceptions import TrafficControlError
from repro.functions.piecewise import PiecewiseLinearFunction
from repro.obs import (
    EVENT_TRAFFIC_ACTION,
    EVENT_TRAFFIC_INGEST,
    Observability,
    get_observability,
)
from repro.traffic.estimate import estimate_dirty_vertices
from repro.traffic.policy import (
    ACTION_CLONE_SWAP,
    ACTION_PATCH,
    ACTION_REBUILD,
    ACTIONS,
    AdaptivePolicy,
    CostModel,
    PolicyDecision,
    PolicyObservation,
    UpdatePolicy,
)
from repro.traffic.stream import EdgeUpdate, UpdateStream
from repro.utils.timing import Clock

__all__ = [
    "TrafficController",
    "ControlReport",
    "TrafficStats",
    "STALENESS_BUCKETS_S",
]

#: Seconds-scale histogram bounds for event-to-servable staleness (the
#: latency buckets are ms-scale; staleness spans control-loop intervals).
STALENESS_BUCKETS_S = (
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
    120.0,
    300.0,
)


@dataclass(frozen=True)
class ControlReport:
    """What one :meth:`TrafficController.step` did, and what it cost."""

    deployment: str
    #: The executed action — one of :data:`repro.traffic.ACTIONS`.
    action: str
    #: The policy's stated reason (plus any capability downgrade note).
    reason: str
    #: Raw events applied this step (pre-coalescing).
    raw_updates: int
    #: Distinct edges patched after per-edge coalescing.
    coalesced_edges: int
    #: Structural dirty-vertex upper bound the decision was based on.
    dirty_estimate: int
    #: Observed qps at decision time.
    qps: float
    #: Wall seconds the action took (what feeds the cost EWMA).
    seconds: float
    #: Median / max event-to-servable staleness across this step's events.
    staleness_p50_s: float
    staleness_max_s: float
    #: The engine's UpdateReport for ``patch`` / ``clone_swap`` steps.
    update_report: Any = None
    #: The host's SwapReport for ``clone_swap`` / ``rebuild`` steps.
    swap_report: Any = None


@dataclass(frozen=True)
class TrafficStats:
    """Point-in-time summary of a controller's behaviour."""

    deployment: str
    #: Lifetime raw events absorbed into batches.
    updates_ingested: int
    #: Lifetime events superseded by a newer event for the same edge.
    updates_coalesced: int
    #: Control steps that executed an action (empty steps don't count).
    steps: int
    #: Executed actions by name.
    actions: Mapping[str, int]
    #: Distinct edges waiting in the current batch.
    pending_edges: int
    #: Staleness percentiles over the recent sample window, seconds.
    staleness_p50_s: float
    staleness_p99_s: float
    staleness_max_s: float
    #: Measured per-action cost EWMAs, seconds.
    cost_ewma: Mapping[str, float]
    #: Action of the most recent non-empty step (empty string before one).
    last_action: str = ""

    def to_dict(self) -> dict[str, object]:
        """A JSON-serialisable snapshot (the gateway's ingest response)."""
        return {
            "deployment": self.deployment,
            "updates_ingested": self.updates_ingested,
            "updates_coalesced": self.updates_coalesced,
            "steps": self.steps,
            "actions": dict(self.actions),
            "pending_edges": self.pending_edges,
            "staleness_p50_s": self.staleness_p50_s,
            "staleness_p99_s": self.staleness_p99_s,
            "staleness_max_s": self.staleness_max_s,
            "cost_ewma": dict(self.cost_ewma),
            "last_action": self.last_action,
        }


def _percentile(samples: list[float], q: float) -> float:
    """Exact nearest-rank percentile of a non-empty sorted sample list."""
    if not samples:
        return 0.0
    rank = min(len(samples) - 1, max(0, int(round(q * (len(samples) - 1)))))
    return samples[rank]


class TrafficController:
    """Drives one deployment's index maintenance from a live update stream.

    Parameters
    ----------
    host:
        The :class:`~repro.serving.EngineHost` owning the deployment.
    deployment:
        Name of the deployment to maintain.
    policy:
        The :class:`~repro.traffic.UpdatePolicy`; defaults to
        :class:`~repro.traffic.AdaptivePolicy` with its documented
        thresholds.
    stream:
        The ingestion buffer; a fresh :class:`~repro.traffic.UpdateStream`
        is created when omitted.
    rebuild_spec:
        Registry spec used for ``rebuild`` actions.  Defaults to the
        deployment's spec at construction time when that is buildable; for
        ``snapshot:``/``faulty:`` deployments pass one explicitly or the
        controller downgrades rebuild decisions to ``clone_swap``.
    obs / clock:
        Telemetry bundle and time source (inject fakes in tests).
    staleness_window:
        Recent staleness samples kept for exact percentile reporting.
    """

    def __init__(
        self,
        host: Any,
        deployment: str,
        *,
        policy: Optional[UpdatePolicy] = None,
        stream: Optional[UpdateStream] = None,
        rebuild_spec: Optional[str] = None,
        obs: Optional[Observability] = None,
        clock: Optional[Clock] = None,
        cost_model: Optional[CostModel] = None,
        staleness_window: int = 4096,
    ) -> None:
        self._host = host
        self._deployment = deployment
        self._obs = obs if obs is not None else getattr(
            host, "obs", None
        ) or get_observability()
        self._clock: Clock = clock if clock is not None else self._obs.clock
        self._policy: UpdatePolicy = (
            policy if policy is not None else AdaptivePolicy()
        )
        self._stream = (
            stream if stream is not None else UpdateStream(clock=self._clock)
        )
        self._costs = cost_model if cost_model is not None else CostModel()
        info = host.deployment(deployment)  # validates the name eagerly
        if rebuild_spec is not None:
            self._rebuild_spec: Optional[str] = rebuild_spec
        else:
            spec = str(info.spec)
            buildable = not spec.startswith(("snapshot:", "faulty:"))
            self._rebuild_spec = spec if buildable else None

        # Control-loop state, all mutated under the step lock.
        self._step_lock = threading.Lock()
        self._pending: dict[tuple[int, int], EdgeUpdate] = {}
        self._pending_event_times: list[float] = []
        self._baseline: dict[tuple[int, int], PiecewiseLinearFunction] = {}
        self._last_qps_probe: Optional[tuple[float, int]] = None
        self._owned_snapshot_dir: Optional[Path] = None

        # Counters behind the stats lock (stats() may race the loop).
        self._stats_lock = threading.Lock()
        self._ingested = 0
        self._coalesced = 0
        self._steps = 0
        self._actions: dict[str, int] = {action: 0 for action in ACTIONS}
        self._last_action = ""
        self._staleness: Deque[float] = deque(maxlen=staleness_window)
        self._staleness_max = 0.0

        # Background loop state.
        self._loop_thread: Optional[threading.Thread] = None
        self._loop_stop = threading.Event()
        self._closed = False

        if self._obs.enabled:
            registry = self._obs.registry
            self._m_staleness = registry.histogram(
                "repro_traffic_staleness_seconds",
                "Event-ingest to servable-answer staleness, seconds.",
                ("deployment",),
                buckets=STALENESS_BUCKETS_S,
            )
            self._m_actions = registry.counter(
                "repro_traffic_actions_total",
                "Maintenance actions executed by the traffic controller.",
                ("deployment", "action"),
            )
            self._m_updates = registry.counter(
                "repro_traffic_updates_total",
                "Raw edge-weight events absorbed into control batches.",
                ("deployment",),
            )
            self._m_coalesced = registry.counter(
                "repro_traffic_coalesced_total",
                "Events superseded by a newer event for the same edge.",
                ("deployment",),
            )
            self._m_backlog = registry.gauge(
                "repro_traffic_backlog_edges",
                "Distinct edges waiting in the controller's pending batch.",
                ("deployment",),
            )
        else:
            self._m_staleness = None
            self._m_actions = None
            self._m_updates = None
            self._m_coalesced = None
            self._m_backlog = None

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    @property
    def stream(self) -> UpdateStream:
        """The ingestion buffer producers push into."""
        return self._stream

    @property
    def deployment(self) -> str:
        return self._deployment

    def ingest(self, update: EdgeUpdate) -> None:
        """Push one prepared event (thread-safe; applied on the next step)."""
        self._stream.push(update)

    def ingest_many(self, updates: Iterable[EdgeUpdate]) -> int:
        """Push a batch of prepared events; returns how many."""
        return self._stream.extend(updates)

    def emit_delay(
        self,
        source: int,
        target: int,
        delay_seconds: float,
        *,
        event_at: Optional[float] = None,
    ) -> EdgeUpdate:
        """Push "edge gained ``delay_seconds`` of travel time" as an event.

        The delay is relative to the edge's **baseline** weight — captured
        the first time this controller touches the edge — so repeated emits
        do not compound and ``delay_seconds=0.0`` restores the baseline
        exactly (how incidents clear).  Shifting preserves FIFO, unlike
        scaling.  Requires graph access on the live engine (in-process
        deployments; replica pools must ship explicit weight functions).
        """
        graph = self._live_graph()
        if graph is None:
            raise TrafficControlError(
                f"deployment {self._deployment!r} exposes no graph; "
                "build the new weight function explicitly and use ingest()"
            )
        key = (int(source), int(target))
        with self._step_lock:
            baseline = self._baseline.get(key)
            if baseline is None:
                baseline = graph.weight(key[0], key[1])  # raises EdgeNotFoundError
                self._baseline[key] = baseline
        weight = baseline.shift(delay_seconds) if delay_seconds else baseline
        return self._stream.emit(key[0], key[1], weight, event_at=event_at)

    @property
    def pending_edges(self) -> int:
        """Distinct edges waiting (absorbed batch; excludes the stream)."""
        with self._step_lock:
            return len(self._pending)

    # ------------------------------------------------------------------
    # The control step
    # ------------------------------------------------------------------
    def step(self) -> Optional[ControlReport]:
        """Drain, decide, execute.  Returns None when there was nothing.

        Serialized against itself (background loop and manual calls may
        interleave); never called on the query path.  On action failure the
        batch is retained for the next step and the error propagates.
        """
        with self._step_lock:
            if self._closed:
                raise TrafficControlError("this TrafficController has been closed")
            self._absorb_locked()
            if not self._pending:
                return None
            observation = self._observe_locked()
            decision = self._policy.decide(observation)
            decision = self._downgrade_locked(decision)
            started = self._clock.monotonic()
            update_report, swap_report = self._execute_locked(decision.action)
            seconds = self._clock.monotonic() - started
            self._costs.observe(decision.action, seconds)

            now = self._clock.monotonic()
            staleness = sorted(now - at for at in self._pending_event_times)
            raw = len(self._pending_event_times)
            coalesced = len(self._pending)
            self._pending.clear()
            self._pending_event_times = []
            report = ControlReport(
                deployment=self._deployment,
                action=decision.action,
                reason=decision.reason,
                raw_updates=raw,
                coalesced_edges=coalesced,
                dirty_estimate=observation.dirty_estimate,
                qps=observation.qps,
                seconds=seconds,
                staleness_p50_s=_percentile(staleness, 0.50),
                staleness_max_s=staleness[-1] if staleness else 0.0,
                update_report=update_report,
                swap_report=swap_report,
            )
        self._record_step(report, staleness)
        return report

    def _absorb_locked(self) -> None:
        """Fold drained stream events into the per-edge pending batch."""
        drained = self._stream.drain()
        if not drained:
            return
        superseded = 0
        for update in drained:
            previous = self._pending.get(update.edge)
            if previous is not None and previous.event_at > update.event_at:
                # Out-of-order delivery: the buffered event is newer; the
                # drained one is the superseded one.
                superseded += 1
                self._pending_event_times.append(update.event_at)
                continue
            if previous is not None:
                superseded += 1
            self._pending[update.edge] = update
            self._pending_event_times.append(update.event_at)
        with self._stats_lock:
            self._ingested += len(drained)
            self._coalesced += superseded
        if self._m_updates is not None:
            self._m_updates.inc(float(len(drained)), deployment=self._deployment)
        if superseded and self._m_coalesced is not None:
            self._m_coalesced.inc(float(superseded), deployment=self._deployment)
        if self._m_backlog is not None:
            self._m_backlog.set(float(len(self._pending)), deployment=self._deployment)
        if self._obs.enabled:
            self._obs.events.emit(
                EVENT_TRAFFIC_INGEST,
                self._deployment,
                updates=len(drained),
                pending_edges=len(self._pending),
            )

    def _observe_locked(self) -> PolicyObservation:
        engine = self._host.deployment(self._deployment).engine
        index = getattr(engine, "index", engine)
        tree = getattr(index, "tree", None)
        graph = self._live_graph()
        num_vertices = int(graph.num_vertices) if graph is not None else 0
        if tree is not None:
            dirty = estimate_dirty_vertices(tree, list(self._pending))
        else:
            # No tree to walk (e.g. a replica pool): assume the worst so
            # the policy never chooses an in-place patch it cannot verify.
            dirty = num_vertices if num_vertices else 1
        now = self._clock.monotonic()
        oldest = min(self._pending_event_times, default=now)
        return PolicyObservation(
            raw_updates=len(self._pending_event_times),
            coalesced_edges=len(self._pending),
            dirty_estimate=dirty,
            num_vertices=num_vertices,
            qps=self._observe_qps(now),
            backlog_age_seconds=max(0.0, now - oldest),
            expected_cost=self._costs.snapshot(),
        )

    def _observe_qps(self, now: float) -> float:
        """Answered-queries delta over wall time since the previous probe."""
        answered = int(self._host.stats(self._deployment).queries_answered)
        probe = self._last_qps_probe
        self._last_qps_probe = (now, answered)
        if probe is None:
            return 0.0
        since, previous = probe
        elapsed = now - since
        if elapsed <= 0.0:
            return 0.0
        return max(0, answered - previous) / elapsed

    def _downgrade_locked(self, decision: PolicyDecision) -> PolicyDecision:
        """Swap out actions the deployment cannot actually execute."""
        from repro.api import engine_supports

        if decision.action == ACTION_PATCH:
            engine = self._host.deployment(self._deployment).engine
            if not engine_supports(engine, "update"):
                return PolicyDecision(
                    ACTION_CLONE_SWAP,
                    decision.reason
                    + " [downgraded: engine lacks the update capability]",
                )
        if decision.action == ACTION_REBUILD:
            if self._rebuild_spec is None or self._live_graph() is None:
                return PolicyDecision(
                    ACTION_CLONE_SWAP,
                    decision.reason
                    + " [downgraded: no rebuild spec/graph for this deployment]",
                )
        return decision

    def _execute_locked(self, action: str) -> tuple[Any, Any]:
        changes = {
            edge: update.weight for edge, update in self._pending.items()
        }
        if action == ACTION_PATCH:
            return self._host.apply_updates(self._deployment, changes), None
        if action == ACTION_CLONE_SWAP:
            return self._execute_clone_swap(changes)
        if action == ACTION_REBUILD:
            return None, self._execute_rebuild(changes)
        raise TrafficControlError(f"policy chose unknown action {action!r}")

    def _execute_clone_swap(
        self, changes: Mapping[tuple[int, int], PiecewiseLinearFunction]
    ) -> tuple[Any, Any]:
        from repro.api import create_engine

        tmp = Path(tempfile.mkdtemp(prefix="repro-traffic-"))
        snapshot = self._host.snapshot(self._deployment, tmp / "clone")
        clone = create_engine(f"snapshot:{snapshot}")
        update_report = clone.update_edges(dict(changes))
        # Record the buildable spec alongside the ready clone: otherwise the
        # deployment's spec degrades to the engine's bare name and a later
        # rebuild silently loses build options (e.g. ``?max_points=none``).
        swap_report = self._host.swap(
            self._deployment, clone, spec=self._rebuild_spec
        )
        # The previous clone's snapshot directory is only disposable now
        # that a newer generation serves; the latest one stays on disk as
        # the deployment's rehydration source (pre-patch, but a valid
        # index — supervision trades staleness for availability there).
        previous, self._owned_snapshot_dir = self._owned_snapshot_dir, tmp
        if previous is not None:
            shutil.rmtree(previous, ignore_errors=True)
        return update_report, swap_report

    def _execute_rebuild(
        self, changes: Mapping[tuple[int, int], PiecewiseLinearFunction]
    ) -> Any:
        graph = self._live_graph()
        if graph is None or self._rebuild_spec is None:  # downgrade guards this
            raise TrafficControlError(
                f"deployment {self._deployment!r} cannot rebuild: no graph/spec"
            )
        patched = graph.copy()
        for (source, target), weight in changes.items():
            patched.set_weight(source, target, weight)
        return self._host.swap(self._deployment, self._rebuild_spec, patched)

    def _live_graph(self) -> Any:
        engine = self._host.deployment(self._deployment).engine
        return getattr(engine, "graph", None)

    def _record_step(self, report: ControlReport, staleness: list[float]) -> None:
        with self._stats_lock:
            self._steps += 1
            self._actions[report.action] = self._actions.get(report.action, 0) + 1
            self._last_action = report.action
            self._staleness.extend(staleness)
            if staleness:
                self._staleness_max = max(self._staleness_max, staleness[-1])
        if self._m_actions is not None:
            self._m_actions.inc(
                1.0, deployment=self._deployment, action=report.action
            )
        if self._m_staleness is not None:
            child = self._m_staleness.labels(deployment=self._deployment)
            child.observe_many(staleness)
        if self._m_backlog is not None:
            self._m_backlog.set(0.0, deployment=self._deployment)
        if self._obs.enabled:
            self._obs.events.emit(
                EVENT_TRAFFIC_ACTION,
                self._deployment,
                action=report.action,
                reason=report.reason,
                raw_updates=report.raw_updates,
                coalesced_edges=report.coalesced_edges,
                dirty_estimate=report.dirty_estimate,
                seconds=report.seconds,
                staleness_p50=report.staleness_p50_s,
            )

    # ------------------------------------------------------------------
    # Background loop
    # ------------------------------------------------------------------
    def start(self, interval_seconds: float = 0.25) -> None:
        """Run :meth:`step` on a daemon thread every ``interval_seconds``."""
        if interval_seconds <= 0.0:
            raise ValueError("interval_seconds must be positive")
        with self._step_lock:
            if self._closed:
                raise TrafficControlError("this TrafficController has been closed")
        if self._loop_thread is not None and self._loop_thread.is_alive():
            return
        self._loop_stop.clear()

        def _loop() -> None:
            while not self._loop_stop.wait(interval_seconds):
                try:
                    self.step()
                except TrafficControlError:
                    return  # closed under us
                except Exception:
                    # The batch is retained; the next tick retries.  A
                    # persistently failing action surfaces through the
                    # host's supervision and the caller's manual step().
                    continue

        self._loop_thread = threading.Thread(
            target=_loop, name=f"traffic-{self._deployment}", daemon=True
        )
        self._loop_thread.start()

    def stop(self) -> None:
        """Stop the background loop (pending events stay drainable)."""
        self._loop_stop.set()
        thread = self._loop_thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._loop_thread = None

    def close(self) -> None:
        """Stop the loop, close the stream, drop owned snapshot storage."""
        self.stop()
        self._stream.close()
        with self._step_lock:
            self._closed = True
            owned, self._owned_snapshot_dir = self._owned_snapshot_dir, None
        if owned is not None:
            shutil.rmtree(owned, ignore_errors=True)

    def __enter__(self) -> "TrafficController":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> TrafficStats:
        with self._step_lock:
            pending = len(self._pending) or self._stream.pending
        with self._stats_lock:
            samples = sorted(self._staleness)
            return TrafficStats(
                deployment=self._deployment,
                updates_ingested=self._ingested,
                updates_coalesced=self._coalesced,
                steps=self._steps,
                actions=MappingProxyType(dict(self._actions)),
                pending_edges=pending,
                staleness_p50_s=_percentile(samples, 0.50),
                staleness_p99_s=_percentile(samples, 0.99),
                staleness_max_s=self._staleness_max,
                cost_ewma=self._costs.snapshot(),
                last_action=self._last_action,
            )

    def __repr__(self) -> str:
        return (
            f"TrafficController(deployment={self._deployment!r}, "
            f"policy={self._policy!r}, pending={self.pending_edges})"
        )
