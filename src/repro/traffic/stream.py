"""Streaming edge-weight updates: the ingestion edge of the control loop.

Producers (an incident feed, a scenario driver, the gateway's ``/updates``
route) hand timestamped :class:`EdgeUpdate` events to an :class:`UpdateStream`;
the :class:`~repro.traffic.TrafficController` drains the stream on each control
step and decides how to fold the batch into the serving index.  The stream is
the only hand-off point between producer threads and the control loop, so it
is the one piece that must be thread-safe — everything downstream runs under
the controller's step lock.

Ingestion styles
----------------
* **Callback**: producers call :meth:`UpdateStream.emit` (or pass
  :meth:`UpdateStream.as_callback` into code that wants a plain callable);
  the stream stamps ``event_at`` from its clock when the producer did not.
* **Iterator**: :meth:`UpdateStream.extend` consumes any iterable of
  prepared :class:`EdgeUpdate` objects (e.g. a scenario replay).

Staleness is measured from ``event_at`` — the moment the real-world change
happened — to the moment a servable answer reflects it, so producers that
know the true event time should stamp it themselves.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Iterable, Optional

from repro.exceptions import TrafficControlError
from repro.functions.piecewise import PiecewiseLinearFunction
from repro.utils.timing import SYSTEM_CLOCK, Clock

__all__ = ["EdgeUpdate", "UpdateStream"]


@dataclass(frozen=True)
class EdgeUpdate:
    """One timestamped edge-weight change event."""

    #: Directed edge the new weight applies to.
    source: int
    target: int
    #: The edge's new travel-cost function (replaces, not perturbs).
    weight: PiecewiseLinearFunction
    #: Monotonic-clock time the change happened in the world.  Staleness is
    #: measured from here, so late ingestion shows up as staleness — which
    #: is the point.
    event_at: float

    @property
    def edge(self) -> tuple[int, int]:
        """The ``(source, target)`` coalescing key."""
        return (self.source, self.target)


class UpdateStream:
    """Thread-safe buffer between update producers and the controller.

    Unbounded by default; pass ``max_pending`` to bound it, in which case
    the *oldest* events are dropped first (the controller coalesces per
    edge anyway, so a newer event for the same edge supersedes the dropped
    one; drops are counted in :attr:`dropped` for visibility).
    """

    def __init__(
        self,
        *,
        clock: Optional[Clock] = None,
        max_pending: Optional[int] = None,
    ) -> None:
        self._clock: Clock = clock if clock is not None else SYSTEM_CLOCK
        self._lock = threading.Lock()
        self._pending: Deque[EdgeUpdate] = deque(maxlen=max_pending)
        self._closed = False
        self._total = 0
        self._dropped = 0

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def push(self, update: EdgeUpdate) -> None:
        """Enqueue one prepared event."""
        with self._lock:
            self._check_open()
            if (
                self._pending.maxlen is not None
                and len(self._pending) == self._pending.maxlen
            ):
                self._dropped += 1
            self._pending.append(update)
            self._total += 1

    def emit(
        self,
        source: int,
        target: int,
        weight: PiecewiseLinearFunction,
        *,
        event_at: Optional[float] = None,
    ) -> EdgeUpdate:
        """Build and enqueue one event, stamping ``event_at`` if not given."""
        at = self._clock.monotonic() if event_at is None else float(event_at)
        update = EdgeUpdate(source=source, target=target, weight=weight, event_at=at)
        self.push(update)
        return update

    def extend(self, updates: Iterable[EdgeUpdate]) -> int:
        """Consume an iterable of prepared events; returns how many."""
        count = 0
        for update in updates:
            self.push(update)
            count += 1
        return count

    def as_callback(
        self,
    ) -> Callable[[int, int, PiecewiseLinearFunction], EdgeUpdate]:
        """A plain callable producer handle (for code that takes a sink fn)."""

        def _sink(
            source: int, target: int, weight: PiecewiseLinearFunction
        ) -> EdgeUpdate:
            return self.emit(source, target, weight)

        return _sink

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def drain(self) -> list[EdgeUpdate]:
        """Atomically take every pending event (oldest first)."""
        with self._lock:
            drained = list(self._pending)
            self._pending.clear()
            return drained

    @property
    def pending(self) -> int:
        """Events currently buffered (not yet drained)."""
        with self._lock:
            return len(self._pending)

    @property
    def total_pushed(self) -> int:
        """Lifetime events accepted by :meth:`push`."""
        with self._lock:
            return self._total

    @property
    def dropped(self) -> int:
        """Events evicted by the ``max_pending`` bound (0 when unbounded)."""
        with self._lock:
            return self._dropped

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Refuse further pushes; pending events stay drainable."""
        with self._lock:
            self._closed = True

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise TrafficControlError(
                "cannot push: this UpdateStream has been closed"
            )

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"UpdateStream(pending={len(self._pending)}, "
                f"total={self._total}, closed={self._closed})"
            )
