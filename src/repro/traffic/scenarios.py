"""Seeded traffic scenarios: the workload side of the control loop.

Real road networks degrade in patterns — a crash closes one edge for
minutes, rush hour slows whole neighbourhoods in waves, maintenance crews
roll a closure along a corridor.  :class:`ScenarioDriver` generates those
patterns deterministically (seeded) as :class:`ScenarioEvent` timelines, and
replays them as :class:`~repro.traffic.EdgeUpdate` streams for tests,
examples, and ``benchmarks/bench_traffic.py``.

Perturbations are **shifts** of the edge's captured baseline function
(``baseline.shift(delay)``): a constant added travel time preserves slopes
and therefore the FIFO property, where scaling can break it.  A ``delay`` of
``0.0`` restores the baseline exactly — that is how incidents clear — so any
scenario that ends with clearing events leaves the network bit-identical to
where it started.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Iterator, Optional, Sequence

from repro.exceptions import TrafficControlError
from repro.functions.piecewise import PiecewiseLinearFunction
from repro.traffic.stream import EdgeUpdate
from repro.utils.timing import SYSTEM_CLOCK

__all__ = ["ScenarioEvent", "ScenarioDriver"]


@dataclass(frozen=True)
class ScenarioEvent:
    """One scheduled perturbation: edge, offset, added delay."""

    #: Seconds after scenario start the event happens.
    at: float
    source: int
    target: int
    #: Added travel time in seconds; ``0.0`` restores the baseline weight.
    delay: float


class ScenarioDriver:
    """Deterministic scenario generator over one graph's edge set.

    Captures every edge's baseline weight at construction, so repeated
    scenario runs against a mutated graph still perturb (and restore)
    relative to the original network.
    """

    def __init__(self, graph: Any, *, seed: int = 0) -> None:
        self._baseline: dict[tuple[int, int], PiecewiseLinearFunction] = {
            (source, target): weight for source, target, weight in graph.edges()
        }
        if not self._baseline:
            raise TrafficControlError("cannot drive scenarios over an empty graph")
        self._edges: list[tuple[int, int]] = sorted(self._baseline)
        self._adjacency: dict[int, list[int]] = {}
        for source, target in self._edges:
            self._adjacency.setdefault(source, []).append(target)
        self._rng = random.Random(seed)
        self.seed = seed

    @property
    def edges(self) -> Sequence[tuple[int, int]]:
        """Every directed edge the driver may perturb (sorted, stable)."""
        return tuple(self._edges)

    def baseline(self, source: int, target: int) -> PiecewiseLinearFunction:
        """The captured original weight of one edge."""
        return self._baseline[(source, target)]

    def weight_for(self, event: ScenarioEvent) -> PiecewiseLinearFunction:
        """The absolute weight function an event resolves to."""
        base = self._baseline[(event.source, event.target)]
        return base.shift(event.delay) if event.delay else base

    # ------------------------------------------------------------------
    # Scenario generators
    # ------------------------------------------------------------------
    def flash_incident(
        self,
        *,
        at: float = 0.0,
        edges: int = 3,
        delay: float = 600.0,
        clear_after: Optional[float] = None,
    ) -> list[ScenarioEvent]:
        """A sudden localized incident: a few edges jump, optionally clear.

        Picks one random edge and grows the incident site along adjacency
        (a crash blocks a junction, not scattered random streets).
        """
        site = self._adjacent_sample(max(1, edges))
        events = [
            ScenarioEvent(at=at, source=s, target=t, delay=delay) for s, t in site
        ]
        if clear_after is not None:
            events.extend(
                ScenarioEvent(at=at + clear_after, source=s, target=t, delay=0.0)
                for s, t in site
            )
        return events

    def rush_hour(
        self,
        *,
        start: float = 0.0,
        waves: int = 3,
        edges_per_wave: int = 5,
        peak_delay: float = 300.0,
        wave_spacing: float = 1.0,
    ) -> list[ScenarioEvent]:
        """Network-wide congestion building in waves, then ebbing away.

        Delay ramps up to ``peak_delay`` over the waves and back down to a
        final clearing wave at the baseline — the classic commute curve.
        """
        if waves < 1:
            raise ValueError("waves must be >= 1")
        events: list[ScenarioEvent] = []
        touched: list[tuple[int, int]] = []
        for wave in range(waves):
            ramp = (wave + 1) / waves
            chosen = self._rng.sample(
                self._edges, min(edges_per_wave, len(self._edges))
            )
            touched.extend(chosen)
            at = start + wave * wave_spacing
            events.extend(
                ScenarioEvent(at=at, source=s, target=t, delay=peak_delay * ramp)
                for s, t in chosen
            )
        clearing_at = start + waves * wave_spacing
        seen: set[tuple[int, int]] = set()
        for s, t in touched:
            if (s, t) in seen:
                continue
            seen.add((s, t))
            events.append(ScenarioEvent(at=clearing_at, source=s, target=t, delay=0.0))
        return events

    def rolling_closure(
        self,
        *,
        start: float = 0.0,
        length: int = 5,
        delay: float = 1800.0,
        spacing: float = 1.0,
    ) -> list[ScenarioEvent]:
        """A closure rolling along a corridor: each edge closes, the
        previous one reopens — exactly one segment is blocked at a time.
        """
        corridor = self._walk(max(1, length))
        events: list[ScenarioEvent] = []
        for i, (s, t) in enumerate(corridor):
            at = start + i * spacing
            events.append(ScenarioEvent(at=at, source=s, target=t, delay=delay))
            if i > 0:
                prev_s, prev_t = corridor[i - 1]
                events.append(
                    ScenarioEvent(at=at, source=prev_s, target=prev_t, delay=0.0)
                )
        last_s, last_t = corridor[-1]
        events.append(
            ScenarioEvent(
                at=start + len(corridor) * spacing,
                source=last_s,
                target=last_t,
                delay=0.0,
            )
        )
        return events

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def updates(
        self, events: Sequence[ScenarioEvent], *, origin: Optional[float] = None
    ) -> Iterator[EdgeUpdate]:
        """Resolve a timeline into prepared events, stamped from ``origin``.

        ``origin`` anchors the timeline on the monotonic clock (defaults to
        "now"); pass an explicit value when replaying against a fake clock.
        Yields in time order; feed straight into
        :meth:`UpdateStream.extend` for instant replay, or pace the
        iteration against a clock for real-time playback.
        """
        if origin is None:
            origin = SYSTEM_CLOCK.monotonic()
        for event in sorted(events, key=lambda e: e.at):
            yield EdgeUpdate(
                source=event.source,
                target=event.target,
                weight=self.weight_for(event),
                event_at=origin + event.at,
            )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _adjacent_sample(self, count: int) -> list[tuple[int, int]]:
        """A connected-ish edge cluster grown from one random edge."""
        first = self._rng.choice(self._edges)
        site = [first]
        frontier = [first[0], first[1]]
        seen = {first}
        while len(site) < count and frontier:
            vertex = frontier.pop(0)
            for neighbor in self._adjacency.get(vertex, ()):
                edge = (vertex, neighbor)
                if edge in seen:
                    continue
                seen.add(edge)
                site.append(edge)
                frontier.append(neighbor)
                if len(site) == count:
                    return site
        while len(site) < count and len(seen) < len(self._edges):
            extra = self._rng.choice(self._edges)
            if extra not in seen:
                seen.add(extra)
                site.append(extra)
        return site

    def _walk(self, length: int) -> list[tuple[int, int]]:
        """A corridor: consecutive edges where each starts at the last end."""
        source, target = self._rng.choice(self._edges)
        corridor = [(source, target)]
        visited = {source, target}
        current = target
        while len(corridor) < length:
            options = [
                n for n in self._adjacency.get(current, ()) if n not in visited
            ]
            if not options:
                options = list(self._adjacency.get(current, ()))
                if not options:
                    break
            nxt = self._rng.choice(options)
            corridor.append((current, nxt))
            visited.add(nxt)
            current = nxt
        return corridor

    def __repr__(self) -> str:
        return (
            f"ScenarioDriver(edges={len(self._edges)}, seed={self.seed})"
        )
