"""Ablation — does the paper's utility definition (Definition 7) matter?

DESIGN.md calls out the utility function (height gap × treewidth × LCA
coverage probability) as the design choice that steers the whole selection
problem.  This ablation re-runs the greedy selection with two strawman
utilities (coverage-only and uniform) under the same budget and measures the
resulting query time; the paper's definition should be at least as good.
"""

from __future__ import annotations

from repro.experiments import run_utility_ablation

from harness import NUM_PAIRS, register_report

DATASET = "CAL"


def test_report_utility_ablation(benchmark):
    """Run the utility-definition ablation and register its table."""
    rows = benchmark.pedantic(
        lambda: run_utility_ablation(
            dataset=DATASET,
            budget_fraction=0.3,
            num_pairs=NUM_PAIRS,
            num_intervals=4,
        ),
        rounds=1,
        iterations=1,
    )
    register_report(
        "ablation_utility",
        rows,
        title="Ablation: shortcut-selection utility definition (same budget N)",
    )
    assert len(rows) == 3
    by_label = {row["utility"]: row for row in rows}
    paper_row = next(v for k, v in by_label.items() if k.startswith("paper"))
    uniform_row = by_label["uniform"]
    # The paper's utility should not be slower than the uniform strawman by
    # more than measurement noise (it usually is strictly faster).
    assert paper_row["cost_query_ms"] <= uniform_row["cost_query_ms"] * 1.5
