"""Table 3 — TD-G-tree vs TD-H2H vs TD-basic on the CAL dataset (c = 3).

Benchmarked operations: one travel-cost query and one cost-function query per
method.  The printed report reproduces the three-column table (query cost,
construction time, memory) of the paper.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_table3

from harness import NUM_PAIRS, PROFILE_PAIRS, built_index, register_report, workload_for

METHODS = ("TD-G-tree", "TD-H2H", "TD-basic")
DATASET = "CAL"
C = 3


@pytest.mark.parametrize("method", METHODS)
def test_cost_query(benchmark, method):
    """Benchmark: scalar travel-cost query latency per method on CAL."""
    build = built_index(method, DATASET, C)
    workload = list(workload_for(DATASET, C))
    state = {"i": 0}

    def run_one():
        query = workload[state["i"] % len(workload)]
        state["i"] += 1
        return build.index.query(query.source, query.target, query.departure)

    result = benchmark(run_one)
    benchmark.extra_info["method"] = method
    benchmark.extra_info["memory_mb"] = round(build.memory_mb, 3)
    benchmark.extra_info["construction_s"] = round(build.build_seconds, 3)
    assert result.cost >= 0


@pytest.mark.parametrize("method", METHODS)
def test_cost_function_query(benchmark, method):
    """Benchmark: shortest-travel-cost-function query latency per method on CAL."""
    build = built_index(method, DATASET, C)
    pairs = workload_for(DATASET, C).pairs()[:PROFILE_PAIRS]
    state = {"i": 0}

    def run_one():
        source, target = pairs[state["i"] % len(pairs)]
        state["i"] += 1
        return build.index.profile(source, target)

    profile = benchmark(run_one)
    benchmark.extra_info["method"] = method
    assert profile is not None


def test_report_table3(benchmark):
    """Generate and register the Table 3 report."""
    rows = benchmark.pedantic(
        lambda: run_table3(
            num_pairs=NUM_PAIRS, num_intervals=4, profile_pairs=PROFILE_PAIRS
        ),
        rounds=1,
        iterations=1,
    )
    register_report(
        "table3_cal",
        rows,
        title="Table 3: performance on CAL (query cost / construction / memory)",
    )
    by_method = {row["method"]: row for row in rows}
    # The paper's qualitative ordering must hold at reduced scale.
    assert by_method["TD-basic"]["memory_mb"] < by_method["TD-H2H"]["memory_mb"]
    assert (
        by_method["TD-H2H"]["profile_query_ms"]
        < by_method["TD-basic"]["profile_query_ms"]
    )
