"""Fig. 9 — index construction time and memory vs ``c``.

Six panels in the paper: construction time and memory on SF, COL and FLA for
TD-G-tree, TD-appro and TD-dp, sweeping c.  The benchmarked operation is one
full index build per (dataset, method) at the middle c value (builds are
expensive, so each is run exactly once); the registered report contains the
whole sweep, reusing the builds cached by the Fig. 8 benchmarks where
possible.
"""

from __future__ import annotations

import pytest

from repro.datasets import get_spec, load_dataset
from repro.experiments import run_fig9
from repro.experiments.metrics import build_method

from harness import C_VALUES, FIG9_DATASETS, register_report

METHODS = ("TD-G-tree", "TD-appro", "TD-dp")
MID_C = C_VALUES[len(C_VALUES) // 2]


@pytest.mark.parametrize("dataset", FIG9_DATASETS)
@pytest.mark.parametrize("method", METHODS)
def test_index_construction(benchmark, dataset, method):
    """Benchmark: one full index build per (dataset, method) at the middle c."""
    graph = load_dataset(dataset, num_points=MID_C)
    kwargs = {}
    if method in ("TD-appro", "TD-dp"):
        kwargs["budget_fraction"] = get_spec(dataset).default_budget_fraction

    index = benchmark.pedantic(
        lambda: build_method(method, graph, **kwargs), rounds=1, iterations=1
    )
    memory = index.memory_breakdown().total_megabytes
    benchmark.extra_info.update(
        {"dataset": dataset, "method": method, "c": MID_C, "memory_mb": round(memory, 3)}
    )
    assert memory > 0


def test_report_fig9(benchmark):
    """Generate and register the Fig. 9 series (construction time and memory)."""
    rows = benchmark.pedantic(
        lambda: run_fig9(datasets=FIG9_DATASETS, c_values=C_VALUES, methods=METHODS),
        rounds=1,
        iterations=1,
    )
    register_report(
        "fig9_construction",
        rows,
        title="Fig. 9: index construction time (s) and memory (MB) vs c",
    )
    # Qualitative shape: memory grows with c for every method, and TD-dp's
    # construction is at least as expensive as TD-appro's (same candidates,
    # costlier selection).
    for dataset in FIG9_DATASETS:
        for method in METHODS:
            series = [
                r for r in rows if r["dataset"] == dataset and r["method"] == method
            ]
            series.sort(key=lambda r: r["c"])
            assert series[0]["memory_mb"] <= series[-1]["memory_mb"] * 1.05
