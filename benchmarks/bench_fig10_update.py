"""Fig. 10 — incremental index update cost vs number of changed edges.

The paper perturbs 10 … 100 000 edges of SF and reports the time to bring the
TD-appro index back in sync.  The scaled reproduction perturbs a proportional
number of edges of the scaled SF network.  Benchmarked operation: one
``update_edges`` call per update size (each on a freshly built index, because
updates mutate the index in place).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TDTreeIndex
from repro.datasets import get_spec, load_dataset
from repro.experiments import run_fig10
from repro.graph.weights import WeightGenerator

from harness import FULL_SWEEP, register_report

DATASET = "SF"
C = 3
UPDATE_COUNTS = (2, 10, 50, 200, 500) if FULL_SWEEP else (2, 20, 100)


def _fresh_index_and_changes(count: int, seed: int):
    graph = load_dataset(DATASET, num_points=C)
    index = TDTreeIndex.build(
        graph,
        strategy="approx",
        budget_fraction=get_spec(DATASET).default_budget_fraction,
        max_points=16,
    )
    rng = np.random.default_rng(seed)
    perturber = WeightGenerator(C, seed=seed)
    edges = list(graph.edges())
    chosen = rng.choice(len(edges), size=min(count, len(edges)), replace=False)
    changes = {}
    for edge_index in chosen:
        u, v, weight = edges[int(edge_index)]
        changes[(u, v)] = perturber.perturbed(weight)
    return index, changes


@pytest.mark.parametrize("count", UPDATE_COUNTS)
def test_index_update(benchmark, count):
    """Benchmark: repair the TD-appro index after ``count`` edge-weight changes."""
    index, changes = _fresh_index_and_changes(count, seed=97 + count)

    report = benchmark.pedantic(
        lambda: index.update_edges(changes), rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        {
            "num_updated_edges": len(changes),
            "dirty_vertices": report.num_dirty_vertices,
            "refreshed_shortcut_nodes": report.num_refreshed_shortcut_nodes,
        }
    )
    assert report.num_changed_edges == len(changes)


def test_report_fig10(benchmark):
    """Generate and register the Fig. 10 series (update cost vs #edges)."""
    rows = benchmark.pedantic(
        lambda: run_fig10(dataset=DATASET, update_counts=UPDATE_COUNTS, num_points=C),
        rounds=1,
        iterations=1,
    )
    register_report(
        "fig10_update",
        rows,
        title="Fig. 10: incremental update cost (s) vs number of changed edges (SF)",
    )
    # The update cost must never exceed a small multiple of a full rebuild and
    # must touch more labels as more edges change.
    assert rows[-1]["dirty_vertices"] >= rows[0]["dirty_vertices"]
    for row in rows:
        assert row["update_seconds"] <= 3.0 * row["full_rebuild_seconds"]
