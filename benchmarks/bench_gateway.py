"""HTTP gateway benchmark: open-loop traffic at 2x closed-loop capacity.

The "millions of users" simulation from the ROADMAP north star, shrunk to a
loopback socket: a Poisson arrival process with a heavy-tailed client mix
(zipf over API keys — a few hot clients dominate, as real traffic does) and
a heavy-tailed OD mix drives the bundled HTTP/1.1 server at **twice** the
capacity a closed-loop run just measured.  The edge guardrails are armed —
a per-client token-bucket limiter and a bounded in-flight gate — so the
overload has to come out somewhere *typed*:

* every offered request settles in exactly one recorded outcome — answered,
  rate-limited (429), shed (503), or deadline-expired (504) — with **zero**
  never-settled requests and zero dropped connections;
* every 429 and every shed 503 carries ``Retry-After`` guidance;
* every answered cost is bit-identical to the scalar oracle
  (``index.query``), heavy-tailed repetition and JSON round-trips included.

The capacity, offered rate, outcome counts, and open-loop latency
percentiles (measured from *arrival*, queueing delay included) land in
``results/BENCH_gateway.json``; the qps/p99 headline appends to
``results/BENCH_history.jsonl``.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np

from repro.gateway import (
    GatewayApp,
    GatewayClient,
    GatewayConfig,
    serve_in_background,
)
from repro.obs import Observability
from repro.serving import EngineHost

from harness import built_index, register_report, workload_for

DATASET = "CAL"
C = 3

#: Closed-loop capacity probe: this many keep-alive connections, each
#: hammering sequentially (matches the bounded in-flight budget below).
CAPACITY_CONNECTIONS = 8
CAPACITY_REQUESTS = 600
#: Open-loop load: the offered window aims for ~0.8 s at 2x capacity,
#: capped so a fast machine doesn't turn the bench into a soak test.
OVERLOAD_FACTOR = 2.0
MAX_OFFERED = 1_600
#: Simulated user population and its zipf skew (client mix, OD mix).
NUM_CLIENTS = 64
CLIENT_ZIPF = 1.5
OD_ZIPF = 1.2
#: Keep-alive connections per simulated user (a browser's small pool).
CONNECTIONS_PER_CLIENT = 4
#: Per-client limiter: generous enough that only the zipf-hot clients trip
#: it, so both guardrails (429 and shed) are exercised by the same run.
RATE_LIMIT_QPS = 200.0
RATE_LIMIT_BURST = 100
#: In-flight budget sized to the concurrency the capacity was measured at:
#: offered load beyond capacity therefore has to shed, by Little's law.
MAX_IN_FLIGHT = CAPACITY_CONNECTIONS
#: Per-request deadline propagated via the ``timeout-ms`` header.
REQUEST_DEADLINE_MS = 2_000.0
#: Hard settle bound; tripping it is the never-settled failure mode.
SETTLE_TIMEOUT_S = 30.0
#: A run where a guardrail stayed cold is re-measured before it may fail.
MEASUREMENT_ATTEMPTS = 3

#: Wide-open edge for the capacity probe — capacity means *without* guardrails.
LOOSE_EDGE = GatewayConfig(
    max_in_flight=100_000,
    rate_limit_qps=1e9,
    rate_limit_burst=1_000_000,
)
GUARDED_EDGE = GatewayConfig(
    max_in_flight=MAX_IN_FLIGHT,
    rate_limit_qps=RATE_LIMIT_QPS,
    rate_limit_burst=RATE_LIMIT_BURST,
)


def _zipf_probabilities(n: int, skew: float) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks**-skew
    return weights / weights.sum()


def _payloads_and_oracle(index):
    """The Fig. 8 workload as JSON payloads plus scalar-oracle costs."""
    queries = list(workload_for(DATASET, C))
    payloads = [
        {"source": q.source, "target": q.target, "departure": q.departure}
        for q in queries
    ]
    oracle = [
        index.query(q.source, q.target, q.departure).cost for q in queries
    ]
    return payloads, oracle


async def _closed_loop_qps(handle, payloads) -> float:
    """Capacity: CAPACITY_CONNECTIONS keep-alive clients, closed loop."""
    per_worker = CAPACITY_REQUESTS // CAPACITY_CONNECTIONS

    async def worker(wid: int, rounds: int) -> None:
        async with GatewayClient(handle.host, handle.port) as client:
            for i in range(rounds):
                payload = payloads[(wid * rounds + i) % len(payloads)]
                response = await asyncio.wait_for(
                    client.request("POST", "/v1/query", payload=payload),
                    timeout=SETTLE_TIMEOUT_S,
                )
                assert response.status == 200, response.body

    await asyncio.gather(  # untimed warm-up: connections, caches, JIT-warm paths
        *(worker(w, per_worker // 4) for w in range(CAPACITY_CONNECTIONS))
    )
    started = time.perf_counter()
    await asyncio.gather(
        *(worker(w, per_worker) for w in range(CAPACITY_CONNECTIONS))
    )
    wall = time.perf_counter() - started
    return CAPACITY_CONNECTIONS * per_worker / wall


async def _open_loop(handle, payloads, oracle, offered_qps, total, seed):
    """Poisson arrivals routed to per-client keep-alive connections.

    Each simulated user owns a small pool of connections (as a browser
    would); arrivals are generated open-loop — by the clock, never by
    completions — and queue at the user's pool while it is busy.  Latency
    is measured from *arrival*, so queueing delay under overload is
    charged to the tail.
    """
    rng = np.random.default_rng(seed)
    client_ids = rng.choice(
        NUM_CLIENTS, size=total, p=_zipf_probabilities(NUM_CLIENTS, CLIENT_ZIPF)
    )
    od_indices = rng.choice(
        len(payloads), size=total, p=_zipf_probabilities(len(payloads), OD_ZIPF)
    )
    offsets = np.cumsum(rng.exponential(1.0 / offered_qps, size=total))

    queues: dict[int, asyncio.Queue] = {
        cid: asyncio.Queue() for cid in set(client_ids.tolist())
    }
    results: list[tuple] = []
    loop = asyncio.get_running_loop()

    async def user_connection(cid: int) -> None:
        queue = queues[cid]
        async with GatewayClient(handle.host, handle.port) as client:
            while True:
                item = await queue.get()
                if item is None:
                    return
                od, arrival = item

                async def _request():
                    return await client.request(
                        "POST",
                        "/v1/query",
                        payload=payloads[od],
                        headers={
                            "x-api-key": f"user-{cid}",
                            "timeout-ms": f"{REQUEST_DEADLINE_MS:g}",
                        },
                    )

                try:
                    response = await asyncio.wait_for(
                        _request(), timeout=SETTLE_TIMEOUT_S
                    )
                except asyncio.TimeoutError:
                    results.append(("never_settled", od, None, None, None))
                    return
                except (OSError, asyncio.IncompleteReadError) as exc:
                    results.append(
                        ("dropped", od, type(exc).__name__, None, None)
                    )
                    return
                latency_ms = (loop.time() - arrival) * 1000.0
                body = response.json()
                results.append(
                    (
                        response.status,
                        od,
                        body.get("error"),
                        body.get("cost"),
                        latency_ms,
                    )
                )

    users = [
        asyncio.create_task(user_connection(cid))
        for cid in queues
        for _ in range(CONNECTIONS_PER_CLIENT)
    ]
    start = loop.time()
    for i in range(total):
        delay = start + offsets[i] - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        queues[int(client_ids[i])].put_nowait((int(od_indices[i]), loop.time()))
    offered_seconds = loop.time() - start
    for queue in queues.values():
        for _ in range(CONNECTIONS_PER_CLIENT):
            queue.put_nowait(None)
    await asyncio.gather(*users)
    return results, total / offered_seconds


def _classify(results, oracle):
    """Exhaustive outcome counts + the contract checks on each outcome."""
    outcomes = {
        "answered": 0,
        "rate_limited": 0,
        "shed": 0,
        "deadline_expired": 0,
        "never_settled": 0,
        "dropped": 0,
    }
    latencies: list[float] = []
    for status, od, detail, cost, latency_ms in results:
        if status == "never_settled":
            outcomes["never_settled"] += 1
        elif status == "dropped":
            outcomes["dropped"] += 1
        elif status == 200:
            assert cost == oracle[od], (
                f"answer for OD {od} differs from the scalar oracle: "
                f"{cost!r} != {oracle[od]!r}"
            )
            outcomes["answered"] += 1
            latencies.append(latency_ms)
        elif status == 429:
            assert detail["type"] == "RateLimitedError", detail
            assert detail["retryable"] is True
            assert detail.get("retry_after_ms", 0) > 0, detail
            outcomes["rate_limited"] += 1
        elif status == 503:
            assert detail["type"] == "GatewayOverloadedError", detail
            assert detail["retryable"] is True
            assert detail.get("retry_after_ms", 0) > 0, detail
            outcomes["shed"] += 1
        elif status == 504:
            assert detail["type"] == "DeadlineExceededError", detail
            assert detail["retryable"] is True
            outcomes["deadline_expired"] += 1
        else:
            raise AssertionError(f"untyped open-loop outcome: {status} {detail}")
    return outcomes, latencies


def test_gateway_open_loop_overload():
    """Acceptance: 2x-capacity open-loop HTTP load, every outcome typed."""
    index = built_index("TD-H2H", DATASET, C).index
    payloads, oracle = _payloads_and_oracle(index)

    host = EngineHost(
        max_batch_size=256, max_wait_ms=2.0, cache_size=0, obs=Observability()
    )
    host.deploy("prod", index)
    try:
        with serve_in_background(GatewayApp(host, config=LOOSE_EDGE)) as probe:
            capacity_qps = asyncio.run(_closed_loop_qps(probe, payloads))

        offered_target = OVERLOAD_FACTOR * capacity_qps
        total = min(int(0.8 * offered_target), MAX_OFFERED)
        for attempt in range(MEASUREMENT_ATTEMPTS):
            with serve_in_background(
                GatewayApp(host, config=GUARDED_EDGE)
            ) as edge:
                results, offered_qps = asyncio.run(
                    _open_loop(
                        edge, payloads, oracle, offered_target, total,
                        seed=1234 + attempt,
                    )
                )
            outcomes, latencies = _classify(results, oracle)
            # Both guardrails warm is the interesting regime; a cold one is
            # re-measured (same noise policy as the serving benches) before
            # the run may count as a failure.
            if outcomes["rate_limited"] > 0 and outcomes["shed"] > 0:
                break
    finally:
        host.close()

    assert len(results) == total, "every offered request must be recorded"
    assert outcomes["never_settled"] == 0, (
        f"{outcomes['never_settled']} requests never settled"
    )
    assert outcomes["dropped"] == 0, "no connection may drop mid-request"
    assert outcomes["answered"] > 0, "the overloaded edge must still answer"
    assert outcomes["rate_limited"] > 0, (
        "the zipf-hot client must trip the per-client limiter"
    )
    assert outcomes["shed"] > 0, (
        "2x-capacity load must fill the bounded in-flight gate"
    )
    assert sum(outcomes.values()) == total, "outcomes must be exhaustive"

    percentiles = np.percentile(np.asarray(latencies), [50, 95, 99])
    rows = [
        {
            "dataset": DATASET,
            "c": C,
            "clients": NUM_CLIENTS,
            "capacity_qps": capacity_qps,
            "offered_qps": offered_qps,
            "offered_x_capacity": offered_qps / capacity_qps,
            "offered": total,
            "answered": outcomes["answered"],
            "rate_limited": outcomes["rate_limited"],
            "shed": outcomes["shed"],
            "deadline_expired": outcomes["deadline_expired"],
            "never_settled": 0,
            "shed_rate": outcomes["shed"] / total,
            "rate_limited_rate": outcomes["rate_limited"] / total,
            "p50_latency_ms": float(percentiles[0]),
            "p95_latency_ms": float(percentiles[1]),
            "p99_latency_ms": float(percentiles[2]),
            "attempts": attempt + 1,
        }
    ]
    register_report(
        "gateway",
        rows,
        title=(
            f"HTTP gateway open-loop overload on {DATASET} (c={C}, "
            f"{NUM_CLIENTS} zipf clients, Poisson arrivals at "
            f"{OVERLOAD_FACTOR:g}x closed-loop capacity)"
        ),
    )
