"""Table 2 — dataset statistics (vertices, edges, treeheight, treewidth, N).

The benchmarked operation is the TFP tree decomposition itself (the step that
produces the treewidth/treeheight columns); the printed report contains the
full Table 2 with the paper's original sizes next to the scaled stand-ins.
"""

from __future__ import annotations

import pytest

from repro.core import decompose
from repro.datasets import dataset_names, load_dataset
from repro.experiments import run_table2

from harness import FULL_SWEEP, register_report

#: The largest datasets are only decomposed in full-sweep mode to keep the
#: default benchmark run short.
DATASETS = dataset_names() if FULL_SWEEP else ("CAL", "SF", "COL")


@pytest.mark.parametrize("dataset", DATASETS)
def test_tree_decomposition_build(benchmark, dataset):
    """Benchmark: TFP tree decomposition (Algorithm 2) per dataset."""
    graph = load_dataset(dataset, num_points=3)

    def build():
        return decompose(graph, max_points=16)

    tree = benchmark.pedantic(build, rounds=1, iterations=1)
    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["vertices"] = graph.num_vertices
    benchmark.extra_info["edges"] = graph.num_edges
    benchmark.extra_info["treewidth"] = tree.treewidth
    benchmark.extra_info["treeheight"] = tree.treeheight
    assert tree.num_nodes == graph.num_vertices


def test_report_table2(benchmark):
    """Generate and register the Table 2 report (builds are cached)."""
    rows = benchmark.pedantic(
        lambda: run_table2(datasets=DATASETS), rounds=1, iterations=1
    )
    register_report(
        "table2_datasets",
        rows,
        title="Table 2: dataset statistics (paper originals vs scaled stand-ins)",
    )
    assert len(rows) == len(DATASETS)
    for row in rows:
        assert row["treewidth"] >= 1
        assert row["scaled_budget_N"] > 0
