"""Fig. 11 — the effect of the shortcut budget ``N`` on FLA.

The paper sweeps N from 10M to 50M interpolation points and plots query cost
against memory cost.  At reduced scale the budget is expressed as a fraction
of the total candidate-shortcut weight.  Benchmarked operation: travel-cost
queries under the smallest and the largest budget.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_fig11

from harness import FULL_SWEEP, NUM_PAIRS, built_index, register_report, workload_for

DATASET = "FLA" if FULL_SWEEP else "SF"
C = 3
FRACTIONS = (0.1, 0.2, 0.3, 0.4, 0.5) if FULL_SWEEP else (0.1, 0.3, 0.5)


@pytest.mark.parametrize("fraction", (FRACTIONS[0], FRACTIONS[-1]))
def test_cost_query_under_budget(benchmark, fraction):
    """Benchmark: query latency of TD-appro under a small vs a large budget."""
    build = built_index("TD-appro", DATASET, C, budget_fraction=fraction)
    workload = list(workload_for(DATASET, C))
    state = {"i": 0}

    def run_one():
        query = workload[state["i"] % len(workload)]
        state["i"] += 1
        return build.index.query(query.source, query.target, query.departure)

    result = benchmark(run_one)
    benchmark.extra_info.update(
        {
            "dataset": DATASET,
            "budget_fraction": fraction,
            "budget_N": build.index.selection.budget,
            "memory_mb": round(build.memory_mb, 3),
        }
    )
    assert result.cost >= 0


def test_report_fig11(benchmark):
    """Generate and register the Fig. 11 series (query cost and memory vs N)."""
    rows = benchmark.pedantic(
        lambda: run_fig11(
            dataset=DATASET,
            budget_fractions=FRACTIONS,
            num_pairs=NUM_PAIRS,
            num_intervals=4,
            profile_pairs=5,
        ),
        rounds=1,
        iterations=1,
    )
    register_report(
        "fig11_budget",
        rows,
        title=f"Fig. 11: query cost and memory vs budget N (TD-appro on {DATASET})",
    )
    # Memory must grow monotonically with the budget; the profile-query time of
    # the largest budget must not exceed the smallest budget's.
    memories = [row["memory_mb"] for row in rows]
    assert memories == sorted(memories)
    assert rows[-1]["profile_query_ms"] <= rows[0]["profile_query_ms"] * 1.2
