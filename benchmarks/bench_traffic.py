"""Live-traffic control loop benchmark: staleness under a closed query loop.

Three seeded scenarios replay against one ``td-h2h`` deployment on the CAL
sample while closed-loop query hammers keep the serving path busy:

* **flash_incident** — one edge jumps at 3 a.m. (hammers idle): a small
  dirty cone on a quiet network is the in-place **patch** case;
* **rolling_closure** — a maintenance corridor under live traffic: middling
  dirty cones land in the policy's **clone_swap** band;
* **rush_hour** — network-wide waves that finally clear: dirty fractions
  past the crossover trigger background **rebuild** and swap.

The run must exercise all three policy actions, settle every submitted
query (zero never-settled), and end every scenario with answers matching a
fresh engine built from a shadow graph that tracked the same updates — the
strongest oracle available.  The engine is deployed *exact*
(``max_points=none``): with lossy function simplification on, incremental
repair and fresh build legitimately diverge inside the approximation
envelope, which would mask real bugs.  Exact, the only residue is float
summation order (the repair reassociates the same min-plus sums), observed
at ≤2 ulp; the oracle gate is rel ≤ 1e-12 and the bit-exact rate is
reported per scenario.  Per-scenario staleness p50/p99/max (event ingest →
servable answer), action mix, and closed-loop qps land in
``results/BENCH_traffic.json``; headline numbers append to
``results/BENCH_history.jsonl``.
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict

import numpy as np

from repro.api import create_engine
from repro.datasets.catalog import load_dataset
from repro.serving import EngineHost
from repro.traffic import AdaptivePolicy, ScenarioDriver, TrafficController

from harness import register_report

DATASET = "CAL"
C = 3
SEED = 42
#: Exact functions: no lossy simplification between repair and oracle.
SPEC = "td-h2h?max_points=none"
#: Everything past float-summation-order noise is a real divergence.
ORACLE_REL_TOL = 1e-12
#: Closed-loop hammers during the under-traffic scenarios.
HAMMER_THREADS = 3
#: Oracle workload size per scenario (bit-identity checked per query).
ORACLE_QUERIES = 40
#: Dirty-fraction thresholds sized to the CAL sample: a single-edge cone is
#: ~15% of the graph (patchable), a corridor chunk ~22-24% (clone band),
#: and a rush-hour wave 47-64% (past the rebuild crossover).
POLICY = dict(patch_dirty_fraction=0.18, rebuild_dirty_fraction=0.45)


def _workload(graph, count, seed):
    rng = np.random.default_rng(seed)
    vertices = sorted(graph.vertices())
    return [
        (
            int(rng.choice(vertices)),
            int(rng.choice(vertices)),
            float(rng.uniform(0.0, 86_400.0)),
        )
        for _ in range(count)
    ]


class _Hammer:
    """Closed-loop query pressure; every submission settles and is counted."""

    def __init__(self, host, queries):
        self._host = host
        self._queries = queries
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self.submitted = 0
        self.answered = 0
        self.failed = 0
        self._threads: list[threading.Thread] = []

    def _run(self, offset: int) -> None:
        i = offset
        while not self._stop.is_set():
            source, target, departure = self._queries[i % len(self._queries)]
            i += 1
            with self._lock:
                self.submitted += 1
            try:
                self._host.query("prod", source, target, departure)
            except Exception:
                with self._lock:
                    self.failed += 1
            else:
                with self._lock:
                    self.answered += 1

    def start(self) -> None:
        self._threads = [
            threading.Thread(target=self._run, args=(i * 17,), daemon=True)
            for i in range(HAMMER_THREADS)
        ]
        for thread in self._threads:
            thread.start()

    def stop(self) -> None:
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=30.0)


def _chunks(events):
    """Group a scenario timeline into per-timestamp ingest chunks."""
    grouped = defaultdict(list)
    for event in events:
        grouped[event.at].append(event)
    return [grouped[at] for at in sorted(grouped)]


def _run_scenario(host, driver, shadow, name, events, *, hammer_queries=None):
    """Replay one scenario through a fresh controller; return its report row."""
    hammer = _Hammer(host, hammer_queries) if hammer_queries else None
    actions: dict[str, int] = defaultdict(int)
    started = time.perf_counter()
    with TrafficController(
        host, "prod", policy=AdaptivePolicy(**POLICY)
    ) as controller:
        if hammer:
            hammer.start()
        for chunk in _chunks(events):
            for update in driver.updates(chunk):
                controller.ingest(update)
                shadow.set_weight(update.source, update.target, update.weight)
            report = controller.step()
            assert report is not None, "a non-empty chunk must execute"
            actions[report.action] += 1
        if hammer:
            hammer.stop()
        stats = controller.stats()
    elapsed = time.perf_counter() - started

    # The oracle: a fresh engine over the shadow graph must agree with
    # whatever the control loop left serving, down to summation-order noise.
    oracle = create_engine(SPEC, shadow.copy())
    mismatches = 0
    bitexact = 0
    max_rel = 0.0
    for source, target, departure in _workload(shadow, ORACLE_QUERIES, 7):
        served = host.query("prod", source, target, departure)
        expected = oracle.query(source, target, departure).cost
        if served == expected:
            bitexact += 1
            continue
        rel = abs(served - expected) / max(abs(expected), 1e-12)
        max_rel = max(max_rel, rel)
        if rel > ORACLE_REL_TOL:
            mismatches += 1
    assert mismatches == 0, f"{name}: {mismatches} answers diverged from oracle"
    if hammer:
        assert hammer.failed == 0, f"{name}: {hammer.failed} queries failed"
        assert hammer.submitted == hammer.answered, "every query must settle"

    return {
        "scenario": name,
        "events": len(events),
        "steps": stats.steps,
        "patch": actions["patch"],
        "clone_swap": actions["clone_swap"],
        "rebuild": actions["rebuild"],
        "updates_ingested": stats.updates_ingested,
        "updates_coalesced": stats.updates_coalesced,
        "staleness_p50_s": stats.staleness_p50_s,
        "staleness_p99_s": stats.staleness_p99_s,
        "staleness_max_s": stats.staleness_max_s,
        "queries_answered": hammer.answered if hammer else 0,
        "queries_failed": hammer.failed if hammer else 0,
        "never_settled": 0,
        "qps": (hammer.answered / elapsed) if hammer else 0.0,
        "oracle_queries": ORACLE_QUERIES,
        "oracle_bitexact": bitexact,
        "oracle_max_rel_err": max_rel,
        "oracle_mismatches": mismatches,
    }


def test_traffic_control_loop():
    graph = load_dataset(DATASET, num_points=C)
    shadow = graph.copy()
    queries = _workload(graph, 64, 3)
    rows = []
    with EngineHost(max_batch_size=64, max_wait_ms=1.0) as host:
        host.deploy("prod", SPEC, graph.copy())
        driver = ScenarioDriver(graph, seed=SEED)
        rows.append(
            _run_scenario(
                host, driver, shadow, "flash_incident",
                driver.flash_incident(edges=1, delay=900.0),
            )
        )
        rows.append(
            _run_scenario(
                host, driver, shadow, "rolling_closure",
                driver.rolling_closure(length=4, delay=1800.0),
                hammer_queries=queries,
            )
        )
        rows.append(
            _run_scenario(
                host, driver, shadow, "rush_hour",
                driver.rush_hour(waves=3, edges_per_wave=8, peak_delay=600.0),
                hammer_queries=queries,
            )
        )

    # The loop must have exercised every maintenance action at least once.
    for action in ("patch", "clone_swap", "rebuild"):
        assert sum(row[action] for row in rows) >= 1, f"{action} never executed"
    register_report(
        "traffic",
        rows,
        title=(
            f"Live-traffic control loop on {DATASET} (c={C}, seed {SEED}): "
            "staleness and action mix per scenario under closed-loop queries"
        ),
    )
