"""Pytest hooks for the benchmark harness (reports printed at the end)."""

from __future__ import annotations

import pytest

import harness


def pytest_addoption(parser):
    parser.addoption(
        "--host",
        action="store_true",
        default=False,
        help="run the EngineHost swap-under-load serving scenario "
        "(bench_serving.py; writes results/BENCH_serving.json)",
    )
    parser.addoption(
        "--chaos",
        action="store_true",
        default=False,
        help="run the resilience-under-overload serving scenario "
        "(bench_serving.py; writes results/BENCH_serving_resilience.json)",
    )
    parser.addoption(
        "--obs",
        action="store_true",
        default=False,
        help="run the observability-overhead serving scenario "
        "(bench_serving.py; writes results/BENCH_serving_obs.json)",
    )
    parser.addoption(
        "--replicas",
        action="store_true",
        default=False,
        help="run the multi-process replica scaling scenario "
        "(bench_serving.py; replica counts from REPRO_BENCH_REPLICAS, "
        "default '1,4'; writes results/BENCH_serving_replicas.json)",
    )


@pytest.fixture(scope="session")
def bench_scale() -> dict:
    """Expose the active scale knobs to benchmark modules."""
    return {
        "full_sweep": harness.FULL_SWEEP,
        "num_pairs": harness.NUM_PAIRS,
        "num_intervals": harness.NUM_INTERVALS,
        "profile_pairs": harness.PROFILE_PAIRS,
        "fig8_datasets": harness.FIG8_DATASETS,
        "fig9_datasets": harness.FIG9_DATASETS,
        "c_values": harness.C_VALUES,
    }


def pytest_terminal_summary(terminalreporter, exitstatus, config):  # pragma: no cover
    if not harness.REPORTS:
        return
    terminalreporter.section("paper tables and figures (reproduced)")
    for name in sorted(harness.REPORTS):
        terminalreporter.write_line("")
        terminalreporter.write_line(harness.REPORTS[name])
