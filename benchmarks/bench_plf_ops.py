"""Micro-benchmarks of the PLF kernel layer: scalar operators vs batch kernels.

Every index algorithm bottoms out in ``compound``/``minimum``/``evaluate``
calls on small piecewise-linear functions (2-64 interpolation points).  This
module tracks the per-operation cost of both the scalar operators and the
vectorized batch kernels (:mod:`repro.functions.batch`) across PRs, so
regressions in the hot kernel layer are visible immediately.

Each benchmark processes ``PAIRS_PER_CALL`` function pairs — as one Python
loop over the scalar operators or as a single batched kernel call — and the
registered report summarises the measured speedups.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.functions import (
    PLFBatch,
    PiecewiseLinearFunction,
    compound,
    compound_many,
    evaluate_many,
    minimum,
    minimum_many,
)

from harness import register_report

#: Interpolation point counts covered by the sweep (the index caps functions
#: at a few dozen points, so this brackets everything the hot paths see).
SIZES = (2, 4, 8, 16, 32, 64)

#: Function pairs processed per measured call.
PAIRS_PER_CALL = 64

_HORIZON = 86_400.0


def _random_fifo(rng: np.random.Generator, size: int) -> PiecewiseLinearFunction:
    """One random FIFO travel-cost function with ``size`` breakpoints."""
    times = np.sort(rng.uniform(0.0, _HORIZON, size))
    times += np.arange(size)  # enforce strictly increasing, >= 1s spacing
    costs = rng.uniform(60.0, 4_000.0, size)
    if size > 1:
        # FIFO repair: arrival function must be non-decreasing (slope >= -1).
        floors = np.diff(times)
        for i in range(1, size):
            costs[i] = max(costs[i], costs[i - 1] - floors[i - 1] + 1e-3)
    return PiecewiseLinearFunction(times, costs)


def _pair_sets(size: int, seed: int = 11):
    rng = np.random.default_rng(seed + size)
    firsts = [_random_fifo(rng, size) for _ in range(PAIRS_PER_CALL)]
    seconds = [_random_fifo(rng, size) for _ in range(PAIRS_PER_CALL)]
    return firsts, seconds


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("mode", ["scalar", "batch"])
def test_compound_ops(benchmark, mode, size):
    """Benchmark: 64 compound operations, looped vs one compound_many call."""
    firsts, seconds = _pair_sets(size)
    if mode == "scalar":
        run = lambda: [compound(f, g) for f, g in zip(firsts, seconds)]
    else:
        fb, gb = PLFBatch.from_functions(firsts), PLFBatch.from_functions(seconds)
        run = lambda: compound_many(fb, gb)
    benchmark(run)
    benchmark.extra_info.update({"op": "compound", "mode": mode, "size": size})


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("mode", ["scalar", "batch"])
def test_minimum_ops(benchmark, mode, size):
    """Benchmark: 64 minimum operations, looped vs one minimum_many call."""
    firsts, seconds = _pair_sets(size)
    if mode == "scalar":
        run = lambda: [minimum(f, g) for f, g in zip(firsts, seconds)]
    else:
        fb, gb = PLFBatch.from_functions(firsts), PLFBatch.from_functions(seconds)
        run = lambda: minimum_many(fb, gb)
    benchmark(run)
    benchmark.extra_info.update({"op": "minimum", "mode": mode, "size": size})


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("mode", ["scalar", "batch"])
def test_evaluate_ops(benchmark, mode, size):
    """Benchmark: 64 scalar evaluations, looped vs one evaluate_many call."""
    firsts, _ = _pair_sets(size)
    rng = np.random.default_rng(size)
    ts = rng.uniform(0.0, _HORIZON, PAIRS_PER_CALL)
    if mode == "scalar":
        run = lambda: [f.evaluate(float(t)) for f, t in zip(firsts, ts)]
    else:
        fb = PLFBatch.from_functions(firsts)
        fb.evaluate(ts)  # build the cached evaluation tables once
        run = lambda: evaluate_many(fb, ts)
    benchmark(run)
    benchmark.extra_info.update({"op": "evaluate", "mode": mode, "size": size})


def _best_of(callable_, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


def test_report_plf_ops():
    """Register the scalar-vs-batch speedup table for the terminal summary."""
    rows = []
    for size in SIZES:
        firsts, seconds = _pair_sets(size)
        fb, gb = PLFBatch.from_functions(firsts), PLFBatch.from_functions(seconds)
        rng = np.random.default_rng(size)
        ts = rng.uniform(0.0, _HORIZON, PAIRS_PER_CALL)
        fb.evaluate(ts)  # warm the cached evaluation tables
        measurements = {
            "compound": (
                _best_of(lambda: [compound(f, g) for f, g in zip(firsts, seconds)]),
                _best_of(lambda: compound_many(fb, gb)),
            ),
            "minimum": (
                _best_of(lambda: [minimum(f, g) for f, g in zip(firsts, seconds)]),
                _best_of(lambda: minimum_many(fb, gb)),
            ),
            "evaluate": (
                _best_of(lambda: [f.evaluate(float(t)) for f, t in zip(firsts, ts)]),
                _best_of(lambda: evaluate_many(fb, ts)),
            ),
        }
        for op, (scalar_s, batch_s) in measurements.items():
            rows.append(
                {
                    "op": op,
                    "size": size,
                    "pairs_per_call": PAIRS_PER_CALL,
                    "scalar_ms": scalar_s * 1000.0,
                    "batch_ms": batch_s * 1000.0,
                    "speedup": scalar_s / batch_s if batch_s > 0 else float("inf"),
                }
            )
    register_report(
        "plf_ops_scalar_vs_batch",
        rows,
        title="PLF kernels: scalar loop vs batched call (64 ops per call)",
    )
    # The batch kernels must never lose to the scalar loop by more than noise
    # on the sizes the index actually stores.
    batchable = [r for r in rows if r["op"] == "evaluate"]
    assert all(r["speedup"] > 1.0 for r in batchable)
