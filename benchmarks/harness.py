"""Shared infrastructure for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper:

* ``pytest-benchmark`` timings cover the operations the figure plots
  (queries, index construction, updates), and
* the corresponding experiment runner is executed once per module and its
  rows are printed in the terminal summary (and written to
  ``benchmarks/results/``), so running ``pytest benchmarks/ --benchmark-only``
  reproduces the paper's tables and series in one go.

Scale knobs (environment variables):

``REPRO_BENCH_FULL=1``
    Run the full c-sweep (2..6) and all four Fig. 8/9 datasets instead of the
    reduced defaults.
``REPRO_BENCH_PAIRS``
    Number of OD pairs per workload (default 30).
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

from repro import __version__
from repro.datasets import generate_queries, get_spec, load_dataset
from repro.experiments import format_table
from repro.experiments.runner import _built  # shared build cache

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Collected report blocks, printed in the terminal summary.
REPORTS: dict[str, str] = {}

FULL_SWEEP = os.environ.get("REPRO_BENCH_FULL", "0") == "1"
NUM_PAIRS = int(os.environ.get("REPRO_BENCH_PAIRS", "30"))
NUM_INTERVALS = 4
#: Departure timestamps per OD pair for the batch-query benchmarks (the
#: paper's workload uses 10 timestamps per pair).
BATCH_INTERVALS = 10
PROFILE_PAIRS = 6

#: Datasets and c values used by the sweep figures.
FIG8_DATASETS = ("CAL", "SF", "COL", "FLA") if FULL_SWEEP else ("CAL", "SF")
FIG9_DATASETS = ("SF", "COL", "FLA") if FULL_SWEEP else ("SF",)
C_VALUES = (2, 3, 4, 5, 6) if FULL_SWEEP else (2, 3, 5)


def register_report(name: str, rows: list[dict], *, title: str) -> None:
    """Store a formatted table so it is printed at the end of the run.

    Next to the human-readable ``results/<name>.txt`` a machine-readable
    ``results/BENCH_<name>.json`` is written with the raw rows, so the perf
    trajectory (speedups, throughput, latencies) is diffable across PRs and
    can be collected as a CI artifact.
    """
    text = format_table(rows, title=title)
    REPORTS[name] = text
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    payload = {
        "name": name,
        "title": title,
        "repro_version": __version__,
        "python": platform.python_version(),
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "rows": rows,
    }
    (RESULTS_DIR / f"BENCH_{name}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True, default=float) + "\n",
        encoding="utf-8",
    )


def built_index(method: str, dataset: str, c: int, *, budget_fraction: float | None = None):
    """Build (or fetch from the shared cache) one index configuration."""
    if budget_fraction is None and method in ("TD-dp", "TD-appro"):
        budget_fraction = get_spec(dataset).default_budget_fraction
    return _built(method, dataset, c, budget_fraction=budget_fraction)


def workload_for(
    dataset: str,
    c: int,
    *,
    num_pairs: int | None = None,
    num_intervals: int | None = None,
):
    """Deterministic query workload over the scaled dataset."""
    graph = load_dataset(dataset, num_points=c)
    return generate_queries(
        graph,
        num_pairs=num_pairs or NUM_PAIRS,
        num_intervals=num_intervals or NUM_INTERVALS,
        seed=get_spec(dataset).seed + c,
        dataset=dataset,
    )
